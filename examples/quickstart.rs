//! Quickstart: open a database, run a few transactions at each isolation
//! level, and show the errors an application must be prepared to handle.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use serializable_si::{AbortKind, Database, Durability, Error, IsolationLevel, Options};

fn main() -> Result<(), Error> {
    // A database providing Serializable Snapshot Isolation by default.
    // (In-memory here; the durable variant is at the end of this tour.)
    let db = Database::open(Options::default());
    let accounts = db.create_table("accounts")?;

    // --- ordinary reads and writes -----------------------------------------
    let mut setup = db.begin();
    setup.put(&accounts, b"alice", b"100")?;
    setup.put(&accounts, b"bob", b"100")?;
    setup.commit()?;

    let mut reader = db.begin_with(IsolationLevel::SnapshotIsolation);
    let alice = reader.get(&accounts, b"alice")?.unwrap();
    println!("alice's balance: {}", String::from_utf8_lossy(&alice));
    reader.commit()?;

    // --- a read-modify-write loop with retry --------------------------------
    // Concurrency-control aborts (deadlock, update conflict, unsafe) are
    // normal events: retry the transaction.
    let mut attempts = 0;
    loop {
        attempts += 1;
        let mut txn = db.begin();
        let result = (|| -> Result<(), Error> {
            let balance: i64 =
                String::from_utf8_lossy(&txn.get_for_update(&accounts, b"alice")?.unwrap())
                    .parse()
                    .unwrap();
            txn.put(&accounts, b"alice", (balance - 30).to_string().as_bytes())?;
            Ok(())
        })();
        match result.and_then(|_| txn.commit()) {
            Ok(()) => break,
            Err(e) if e.is_retryable() => continue,
            Err(e) => return Err(e),
        }
    }
    println!("withdrawal committed after {attempts} attempt(s)");

    // --- the write-skew anomaly, prevented ----------------------------------
    // Two transactions each check the combined balance and then withdraw
    // from different accounts. Under Serializable SI one of them aborts with
    // the "unsafe" error instead of silently violating the invariant.
    let mut t1 = db.begin();
    let mut t2 = db.begin();
    let sum1: i64 = read_sum(&mut t1, &accounts)?;
    let sum2: i64 = read_sum(&mut t2, &accounts)?;
    println!("t1 sees total {sum1}, t2 sees total {sum2}");
    let r1 = t1
        .put(&accounts, b"alice", b"-30")
        .and_then(|_| t1.commit());
    let r2 = t2.put(&accounts, b"bob", b"-30").and_then(|_| t2.commit());
    for (name, result) in [("t1", r1), ("t2", r2)] {
        match result {
            Ok(()) => println!("{name}: committed"),
            Err(Error::Aborted {
                kind: AbortKind::Unsafe,
                ..
            }) => {
                println!("{name}: aborted (unsafe — would not be serializable)")
            }
            Err(e) => println!("{name}: {e}"),
        }
    }

    // --- scans --------------------------------------------------------------
    let mut scan = db.begin_read_only();
    let rows = scan.scan(
        &accounts,
        std::ops::Bound::Unbounded,
        std::ops::Bound::Unbounded,
    )?;
    println!("final state:");
    for (key, value) in rows {
        println!(
            "  {:8} = {}",
            String::from_utf8_lossy(&key),
            String::from_utf8_lossy(&value)
        );
    }
    scan.commit()?;

    // --- opting into durability ---------------------------------------------
    // With `Durability::GroupCommit` every commit is in the write-ahead log
    // and fsynced (concurrent commits share flushes) before `commit`
    // returns, and reopening the same directory recovers everything. See
    // the `durability` example for checkpoints and crash recovery.
    let dir = std::env::temp_dir().join(format!("ssi-quickstart-{}", std::process::id()));
    let durable_options = Options::default().with_durability(Durability::GroupCommit, &dir);
    {
        let durable = Database::try_open(durable_options.clone())?;
        let table = durable.create_table("settings")?;
        let mut txn = durable.begin();
        txn.put(&table, b"greeting", b"hello again")?;
        txn.commit()?; // durable from here on
    }
    let durable = Database::try_open(durable_options)?;
    let table = durable.table("settings")?;
    let mut reader = durable.begin_read_only();
    let greeting = reader.get(&table, b"greeting")?.unwrap();
    println!(
        "recovered after reopen: {}",
        String::from_utf8_lossy(&greeting)
    );
    reader.commit()?;
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

fn read_sum(
    txn: &mut serializable_si::Transaction,
    table: &serializable_si::TableRef,
) -> Result<i64, Error> {
    let mut total = 0;
    for key in [b"alice".as_slice(), b"bob".as_slice()] {
        if let Some(v) = txn.get(table, key)? {
            total += String::from_utf8_lossy(&v).parse::<i64>().unwrap_or(0);
        }
    }
    Ok(total)
}
