//! Deterministic regression net for the pinned GC horizon.
//!
//! The headline test reproduces the `oldest_active_begin` TOCTOU that made
//! the pre-PR purge horizon unsafe: the registry sweep visits its 64 shards
//! one at a time, so a transaction acquiring its snapshot in an
//! already-swept shard is missed while the sweep returns `MAX` (or a later
//! shard's minimum). The old purge fell back to the *post-sweep* clock in
//! that case, so a commit landing between the snapshot acquisition and the
//! fallback read pushed the horizon past the missed snapshot — and the
//! purge reclaimed the exact version that snapshot still had to read.
//!
//! The choreography is made deterministic with the manager's test-only
//! sweep-pause hook: the sweep is frozen right after it passes the
//! reader's shard, the reader then acquires its snapshot, a writer commits
//! a newer version, and only then is the sweep released. Run against the
//! old horizon computation the reader's version is gone; run against the
//! clamped [`GcHorizon`] it survives.
//!
//! [`GcHorizon`]: serializable_si::core::manager::GcHorizon

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};

use serializable_si::core::manager::REGISTRY_SHARDS;
use serializable_si::{Database, IsolationLevel, Options};

/// What one run of the race choreography observed.
struct RaceOutcome {
    /// The reader's snapshot timestamp (acquired mid-sweep).
    snapshot_ts: u64,
    /// The horizon the purge ran at.
    purge_horizon: u64,
    /// What the reader saw for the hot key *after* the purge, under the
    /// same snapshot.
    read_after_purge: Option<Vec<u8>>,
}

/// Drives the sweep/begin TOCTOU deterministically. With `clamped` the
/// purge uses the new safe horizon (`Database::purge`); without it the
/// purge replicates the pre-PR computation (raw sweep, post-sweep clock
/// fallback) via the `purge_at` escape hatch.
fn race_sweep_against_snapshot_acquisition(clamped: bool) -> RaceOutcome {
    // Plain SI everywhere: SI transactions never suspend, so
    // suspended-cleanup never sweeps and the only registry sweep in the
    // whole run is the one the purge performs — the one we choreograph.
    let db = Database::open(Options::default().with_isolation(IsolationLevel::SnapshotIsolation));
    let table = db.create_table("t").unwrap();
    let mut setup = db.begin();
    setup.put(&table, b"k", b"v1").unwrap();
    setup.commit().unwrap();

    // Register the reader but do NOT acquire its snapshot yet (snapshot
    // assignment is deferred to the first operation).
    let mut reader = db.begin();
    let reader_shard = reader.id().0 as usize & (REGISTRY_SHARDS - 1);

    // Freeze the sweep right after it visits the reader's shard.
    let reached = Arc::new(Barrier::new(2));
    let release = Arc::new(Barrier::new(2));
    let fired = Arc::new(AtomicBool::new(false));
    {
        let (reached, release, fired) = (reached.clone(), release.clone(), fired.clone());
        db.transaction_manager()
            .set_sweep_pause_hook(Some(Arc::new(move |shard| {
                if shard == reader_shard && !fired.swap(true, Ordering::SeqCst) {
                    reached.wait();
                    release.wait();
                }
            })));
    }

    let outcome = std::thread::scope(|s| {
        let purger = {
            let db = db.clone();
            s.spawn(move || {
                if clamped {
                    db.purge().horizon
                } else {
                    // The pre-PR horizon: raw shard sweep, post-sweep clock
                    // fallback when nothing (appears to be) active.
                    let mgr = db.transaction_manager();
                    let horizon = match mgr.oldest_active_begin() {
                        u64::MAX => mgr.current_ts(),
                        ts => ts,
                    };
                    db.purge_at(horizon);
                    horizon
                }
            })
        };

        // The sweep has passed the reader's shard and is frozen.
        reached.wait();

        // Reader acquires its snapshot now — in a shard the sweep will not
        // look at again — and proves v1 is visible to it.
        let first = reader.get(&table, b"k").unwrap();
        assert_eq!(first.as_deref(), Some(b"v1".as_slice()));
        let snapshot_ts = reader.snapshot_ts().unwrap();

        // A writer commits a newer version, pushing the clock past the
        // reader's snapshot before the sweep resumes.
        let mut writer = db.begin();
        writer.put(&table, b"k", b"v2").unwrap();
        writer.commit().unwrap();

        release.wait();
        let purge_horizon = purger.join().unwrap();

        RaceOutcome {
            snapshot_ts,
            purge_horizon,
            read_after_purge: reader.get(&table, b"k").unwrap().map(|v| v.to_vec()),
        }
    });
    db.transaction_manager().set_sweep_pause_hook(None);
    outcome
}

/// The raw computation loses the race: the sweep misses the reader, the
/// clock fallback lands past its snapshot, and the purge reclaims the
/// version the reader still needs. This is the pre-PR behaviour — the test
/// documents that the unclamped horizon genuinely fails (if it ever starts
/// "passing", the choreography no longer exercises the race).
#[test]
fn unclamped_horizon_loses_the_sweep_toctou_race() {
    let outcome = race_sweep_against_snapshot_acquisition(false);
    assert!(
        outcome.purge_horizon > outcome.snapshot_ts,
        "the racy horizon ({}) must land past the missed snapshot ({})",
        outcome.purge_horizon,
        outcome.snapshot_ts
    );
    assert_eq!(
        outcome.read_after_purge, None,
        "the purge at the racy horizon reclaims the version the reader's \
         snapshot still needs (v2 is invisible to it, v1 is gone)"
    );
}

/// The clamped [`GcHorizon`] wins the same race: the pre-sweep clock caps
/// the horizon below every snapshot the sweep might have missed, so the
/// reader's version survives.
///
/// [`GcHorizon`]: serializable_si::core::manager::GcHorizon
#[test]
fn clamped_gc_horizon_survives_the_sweep_toctou_race() {
    let outcome = race_sweep_against_snapshot_acquisition(true);
    assert!(
        outcome.purge_horizon <= outcome.snapshot_ts,
        "the clamped horizon ({}) must stay at or below the raced snapshot ({})",
        outcome.purge_horizon,
        outcome.snapshot_ts
    );
    assert_eq!(
        outcome.read_after_purge.as_deref(),
        Some(b"v1".as_slice()),
        "the version visible to the raced snapshot must survive the purge"
    );
}

/// Public-API pin flow a long out-of-band scan would use: while the pin is
/// held nothing at or above it is reclaimed, and dropping the pin releases
/// the horizon.
#[test]
fn long_scan_pin_protects_versions_until_dropped() {
    let db = Database::open_default();
    let table = db.create_table("t").unwrap();
    let mut txn = db.begin();
    txn.put(&table, b"k", b"base").unwrap();
    txn.commit().unwrap();

    let pin = db.pin_purge_horizon();
    for i in 0..20u64 {
        let mut txn = db.begin();
        txn.put(&table, b"k", &i.to_be_bytes()).unwrap();
        txn.commit().unwrap();
    }
    let stats = db.purge();
    assert!(stats.horizon <= pin.ts());
    assert_eq!(
        table.version_count(),
        21,
        "a held pin keeps the whole chain reachable"
    );
    assert_eq!(db.transaction_manager().oldest_gc_pin(), Some(pin.ts()));

    drop(pin);
    assert_eq!(db.transaction_manager().oldest_gc_pin(), None);
    let stats = db.purge();
    assert_eq!(stats.versions, 20);
    assert_eq!(table.version_count(), 1);
}
