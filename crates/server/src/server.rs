//! The TCP server: acceptor, per-connection workers, session registry,
//! idle-session reaper, admission control, graceful drain.
//!
//! See the crate docs for the architecture overview and the
//! connection-lifecycle contract (why no session can leak a transaction).

use std::collections::HashMap;
use std::io::{BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::ops::Bound;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use ssi_common::Error;
use ssi_core::{Database, Transaction};
use ssi_obs::ServerMetrics;

use crate::proto::{
    read_frame, write_frame, ErrorCode, FrameError, Request, Response, AUTOCOMMIT,
    DEFAULT_MAX_FRAME_BYTES,
};

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerOptions {
    /// Address to bind; use port 0 to let the OS pick (the bound address is
    /// available from [`Server::local_addr`]).
    pub addr: SocketAddr,
    /// Maximum live sessions; connections beyond this are refused at accept
    /// time with a typed busy error.
    pub max_connections: usize,
    /// Frame-size cap applied to every inbound length prefix *before*
    /// allocation (see the crate docs, § Framing).
    pub max_frame_bytes: u32,
    /// Sessions idle longer than this have their open transactions rolled
    /// back and their connection closed by the reaper — a silently dead
    /// client must not pin the GC horizon or hold row/SIREAD locks forever.
    /// `None` disables reaping (not recommended outside tests).
    pub idle_timeout: Option<Duration>,
    /// Reaper wake cadence. Idle sessions are harvested at most this long
    /// after their timeout expires.
    pub reap_interval: Duration,
    /// Admission control: maximum requests allowed to be executing a commit
    /// (interactive or autocommit) at once. When the commit/flush pipeline
    /// backs up — commits stall on fsync and pile up here — further
    /// commit-carrying requests are shed with [`ErrorCode::Busy`] instead
    /// of queueing without bound.
    pub max_inflight_commits: usize,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            addr: "127.0.0.1:0".parse().expect("valid literal addr"),
            max_connections: 1024,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            idle_timeout: Some(Duration::from_secs(60)),
            reap_interval: Duration::from_millis(100),
            max_inflight_commits: 256,
        }
    }
}

impl ServerOptions {
    /// Binds to the given address (e.g. `"127.0.0.1:0"`).
    pub fn with_addr(mut self, addr: SocketAddr) -> Self {
        self.addr = addr;
        self
    }

    /// Sets the idle-session timeout (see [`ServerOptions::idle_timeout`]).
    pub fn with_idle_timeout(mut self, timeout: Duration) -> Self {
        self.idle_timeout = Some(timeout);
        self
    }

    /// Sets the admission-control commit cap (see
    /// [`ServerOptions::max_inflight_commits`]).
    pub fn with_max_inflight_commits(mut self, cap: usize) -> Self {
        self.max_inflight_commits = cap;
        self
    }
}

/// Internal counters, mirrored into [`ServerMetrics`] on demand.
#[derive(Default)]
struct ServerStats {
    connections_accepted: AtomicU64,
    connections_rejected: AtomicU64,
    requests: AtomicU64,
    busy_rejections: AtomicU64,
    malformed_frames: AtomicU64,
    sessions_reaped: AtomicU64,
    disconnect_rollbacks: AtomicU64,
}

/// One client connection's server-side state. The transaction map is the
/// single owner of every open interactive transaction of the connection:
/// whoever drains it — the worker on request, the reaper on idle timeout,
/// the drain on shutdown, or the final session drop — rolls the survivors
/// back, so a transaction can never outlive its session.
struct Session {
    id: u64,
    /// Open interactive transactions by handle. Also the arbiter between
    /// the worker and the reaper: both operate under this lock, so a reap
    /// can never tear a transaction out from under a request.
    txns: Mutex<HashMap<u64, Transaction>>,
    /// Set by the reaper/drain after harvesting: the worker answers every
    /// later transactional request with a typed closed error.
    revoked: AtomicBool,
    /// Milliseconds since server start of the last request activity.
    last_active_ms: AtomicU64,
    /// A worker is between frame-decode and response-write. The reaper
    /// skips in-flight sessions regardless of timestamps.
    in_flight: AtomicBool,
    /// Clone of the connection's stream, kept so the reaper and the drain
    /// can unblock a worker parked in `read_frame`.
    stream: TcpStream,
}

impl Session {
    /// Rolls back and drops every open transaction, returning how many
    /// there were. Callers hold or take the `txns` lock via this method.
    fn harvest(&self) -> usize {
        let mut txns = self.txns.lock();
        let n = txns.len();
        // Dropping a Transaction rolls it back: versions unlinked, row and
        // SIREAD locks released, registry entry retired — the GC horizon
        // and begin-watermark advance past it.
        txns.clear();
        n
    }
}

const STATE_RUNNING: u8 = 0;
const STATE_DRAINING: u8 = 1;

struct Shared {
    db: Database,
    opts: ServerOptions,
    epoch: Instant,
    state: std::sync::atomic::AtomicU8,
    sessions: Mutex<HashMap<u64, Arc<Session>>>,
    next_session: AtomicU64,
    stats: ServerStats,
    inflight_commits: AtomicUsize,
    /// Worker threads park their join handles here; `shutdown` joins them.
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// Wakes the reaper early on shutdown.
    reaper_gate: Mutex<bool>,
    reaper_cv: Condvar,
}

impl Shared {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    fn draining(&self) -> bool {
        self.state.load(Ordering::Acquire) != STATE_RUNNING
    }

    /// Point-in-time service-layer counters.
    fn server_metrics(&self) -> ServerMetrics {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        ServerMetrics {
            enabled: true,
            connections_accepted: load(&self.stats.connections_accepted),
            connections_rejected: load(&self.stats.connections_rejected),
            connections_active: self.sessions.lock().len() as u64,
            requests: load(&self.stats.requests),
            busy_rejections: load(&self.stats.busy_rejections),
            malformed_frames: load(&self.stats.malformed_frames),
            sessions_reaped: load(&self.stats.sessions_reaped),
            disconnect_rollbacks: load(&self.stats.disconnect_rollbacks),
        }
    }
}

/// A running TCP server over a [`Database`].
///
/// Dropping the server drains it (see [`Server::shutdown`]). The server
/// holds a `Database` handle for its whole lifetime, and `shutdown` joins
/// every worker before returning — so all server threads are guaranteed
/// gone *before* the engine's `MaintenanceHub` can be torn down by the last
/// database handle dropping.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    reaper: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts serving `db` with the given options.
    pub fn start(db: Database, opts: ServerOptions) -> std::io::Result<Server> {
        let listener = TcpListener::bind(opts.addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            db,
            opts,
            epoch: Instant::now(),
            state: std::sync::atomic::AtomicU8::new(STATE_RUNNING),
            sessions: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(1),
            stats: ServerStats::default(),
            inflight_commits: AtomicUsize::new(0),
            workers: Mutex::new(Vec::new()),
            reaper_gate: Mutex::new(false),
            reaper_cv: Condvar::new(),
        });
        let acceptor = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("ssi-server-acceptor".into())
                .spawn(move || accept_loop(shared, listener))
                .expect("spawn acceptor")
        };
        let reaper = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("ssi-server-reaper".into())
                .spawn(move || reap_loop(shared))
                .expect("spawn reaper")
        };
        Ok(Server {
            shared,
            local_addr,
            acceptor: Some(acceptor),
            reaper: Some(reaper),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The database this server fronts.
    pub fn database(&self) -> &Database {
        &self.shared.db
    }

    /// Service-layer counters (also merged into the `Metrics` response).
    pub fn metrics(&self) -> ServerMetrics {
        self.shared.server_metrics()
    }

    /// Number of live sessions.
    pub fn session_count(&self) -> usize {
        self.shared.sessions.lock().len()
    }

    /// Gracefully drains and stops the server. Idempotent.
    ///
    /// Ordering:
    /// 1. Stop admitting: the state flips to draining, the acceptor is
    ///    woken and exits, late connections are refused.
    /// 2. Idle sessions (no request mid-execution) are harvested — their
    ///    open transactions roll back, their connections close.
    /// 3. Sessions executing a request are left to *finish* it: an
    ///    in-flight commit completes and its acknowledgement is written
    ///    before the worker observes the drain and exits. No acknowledged
    ///    commit is ever abandoned.
    /// 4. Every worker is joined, then the reaper. When this returns, no
    ///    server thread exists, no session survives, and no transaction
    ///    opened over the wire is still registered — the engine can be
    ///    closed or dropped (joining its own maintenance threads) safely.
    pub fn shutdown(&mut self) {
        self.shared.state.store(STATE_DRAINING, Ordering::Release);
        // Wake the acceptor out of `accept()` with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Harvest idle sessions; in-flight ones finish their request first
        // (the worker re-checks the drain state after every response).
        let sessions: Vec<Arc<Session>> = self.shared.sessions.lock().values().cloned().collect();
        for session in sessions {
            if !session.in_flight.load(Ordering::Acquire) {
                session.revoked.store(true, Ordering::Release);
                let rolled_back = session.harvest();
                if rolled_back > 0 {
                    self.shared
                        .stats
                        .disconnect_rollbacks
                        .fetch_add(rolled_back as u64, Ordering::Relaxed);
                }
                let _ = session.stream.shutdown(std::net::Shutdown::Both);
            }
        }
        // Join the workers. In-flight workers finish exactly one request;
        // idle workers wake from the stream shutdown above.
        loop {
            let workers: Vec<JoinHandle<()>> = std::mem::take(&mut *self.shared.workers.lock());
            if workers.is_empty() {
                break;
            }
            for w in workers {
                let _ = w.join();
            }
        }
        // Stop the reaper.
        {
            let mut stop = self.shared.reaper_gate.lock();
            *stop = true;
            self.shared.reaper_cv.notify_all();
        }
        if let Some(reaper) = self.reaper.take() {
            let _ = reaper.join();
        }
        debug_assert!(
            self.shared.sessions.lock().is_empty(),
            "drain left live sessions behind"
        );
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(shared: Arc<Shared>, listener: TcpListener) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => {
                if shared.draining() {
                    return;
                }
                continue;
            }
        };
        if shared.draining() {
            // Refuse politely: one closed-error frame, then drop.
            refuse(stream, ErrorCode::Closed, "server is draining");
            return;
        }
        // Opportunistically reap finished workers so the handle vector
        // doesn't grow without bound under connection churn.
        {
            let mut workers = shared.workers.lock();
            let mut live = Vec::with_capacity(workers.len());
            for w in workers.drain(..) {
                if w.is_finished() {
                    let _ = w.join();
                } else {
                    live.push(w);
                }
            }
            *workers = live;
        }
        if shared.sessions.lock().len() >= shared.opts.max_connections {
            shared
                .stats
                .connections_rejected
                .fetch_add(1, Ordering::Relaxed);
            refuse(stream, ErrorCode::Busy, "connection limit reached");
            continue;
        }
        shared
            .stats
            .connections_accepted
            .fetch_add(1, Ordering::Relaxed);
        // Responses are small framed messages flushed one at a time; with
        // Nagle on, a pipelined batch of replies serializes on delayed
        // ACKs (~40ms each) instead of streaming back.
        stream.set_nodelay(true).ok();
        let id = shared.next_session.fetch_add(1, Ordering::Relaxed);
        let session = Arc::new(Session {
            id,
            txns: Mutex::new(HashMap::new()),
            revoked: AtomicBool::new(false),
            last_active_ms: AtomicU64::new(shared.now_ms()),
            in_flight: AtomicBool::new(false),
            stream: match stream.try_clone() {
                Ok(clone) => clone,
                Err(_) => {
                    // Without a reaper-accessible handle the session can't
                    // be force-closed; refuse rather than leak.
                    refuse(stream, ErrorCode::Internal, "stream clone failed");
                    continue;
                }
            },
        });
        shared.sessions.lock().insert(id, session.clone());
        let worker = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name(format!("ssi-server-conn-{id}"))
                .spawn(move || serve_connection(shared, session, stream))
        };
        match worker {
            Ok(handle) => shared.workers.lock().push(handle),
            Err(_) => {
                // Spawn failure: undo the registration; dropping the
                // session closes the connection.
                shared.sessions.lock().remove(&id);
            }
        }
    }
}

/// Best-effort single error frame on a connection we will not serve.
fn refuse(stream: TcpStream, code: ErrorCode, msg: &str) {
    let mut w = BufWriter::new(&stream);
    let _ = write_frame(&mut w, &Response::Err(code, msg.to_string()).encode());
    let _ = w.flush();
}

fn reap_loop(shared: Arc<Shared>) {
    loop {
        {
            let mut stop = shared.reaper_gate.lock();
            if *stop {
                return;
            }
            shared
                .reaper_cv
                .wait_for(&mut stop, shared.opts.reap_interval);
            if *stop {
                return;
            }
        }
        let Some(timeout) = shared.opts.idle_timeout else {
            continue;
        };
        let timeout_ms = timeout.as_millis() as u64;
        let now = shared.now_ms();
        let sessions: Vec<Arc<Session>> = shared.sessions.lock().values().cloned().collect();
        for session in sessions {
            if session.in_flight.load(Ordering::Acquire) {
                continue;
            }
            let idle = now.saturating_sub(session.last_active_ms.load(Ordering::Relaxed));
            if idle < timeout_ms {
                continue;
            }
            if session.revoked.swap(true, Ordering::AcqRel) {
                continue; // already harvested by a previous pass or drain
            }
            // Harvest under the txns lock: a worker that just went
            // in-flight is either still waiting for this lock (it will see
            // `revoked` and answer with a typed error) or held it before us
            // (then `in_flight` was set and we skipped above).
            let rolled_back = session.harvest();
            shared.stats.sessions_reaped.fetch_add(1, Ordering::Relaxed);
            if rolled_back > 0 {
                shared
                    .stats
                    .disconnect_rollbacks
                    .fetch_add(rolled_back as u64, Ordering::Relaxed);
            }
            // Unblock the worker parked in read_frame; it observes the
            // closed stream and retires the session.
            let _ = session.stream.shutdown(std::net::Shutdown::Both);
        }
    }
}

fn serve_connection(shared: Arc<Shared>, session: Arc<Session>, stream: TcpStream) {
    let mut reader = std::io::BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => {
            retire_session(&shared, &session);
            return;
        }
    });
    let mut writer = BufWriter::new(stream);
    loop {
        let payload = match read_frame(&mut reader, shared.opts.max_frame_bytes) {
            Ok(Some(payload)) => payload,
            // Clean disconnect at a frame boundary — or the reaper/drain
            // shut the stream down under us.
            Ok(None) => break,
            Err(FrameError::TooLarge { len, max }) => {
                shared
                    .stats
                    .malformed_frames
                    .fetch_add(1, Ordering::Relaxed);
                let resp = Response::Err(
                    ErrorCode::FrameTooLarge,
                    format!("frame of {len} bytes exceeds the {max}-byte cap"),
                );
                let _ = write_frame(&mut writer, &resp.encode());
                let _ = writer.flush();
                // The prefix promised bytes we refuse to read: the stream
                // is unsynchronizable. Close it.
                break;
            }
            Err(FrameError::Io(_)) => break,
        };
        session.in_flight.store(true, Ordering::Release);
        session
            .last_active_ms
            .store(shared.now_ms(), Ordering::Relaxed);
        shared.stats.requests.fetch_add(1, Ordering::Relaxed);
        let response = match Request::decode(&payload) {
            Ok(request) => handle_request(&shared, &session, request),
            Err(e) => {
                shared
                    .stats
                    .malformed_frames
                    .fetch_add(1, Ordering::Relaxed);
                // Framing is intact (the frame arrived whole); only the
                // payload was garbage. The connection stays usable.
                Response::Err(ErrorCode::BadRequest, e.to_string())
            }
        };
        let write_result = write_frame(&mut writer, &response.encode()).and_then(|()| {
            // One response per request frame: flush eagerly so a
            // non-pipelining client never stalls on a buffered reply.
            writer.flush()
        });
        session
            .last_active_ms
            .store(shared.now_ms(), Ordering::Relaxed);
        session.in_flight.store(false, Ordering::Release);
        if write_result.is_err() {
            break;
        }
        if shared.draining() {
            // The request in flight at drain time — possibly a commit whose
            // acknowledgement was just flushed — is complete; stop here.
            break;
        }
    }
    retire_session(&shared, &session);
}

/// Removes the session from the registry and rolls back whatever open
/// transactions it still owns. This is the disconnect bug-net: every worker
/// exit path funnels through here, so a vanished client can never leave an
/// active transaction pinning the begin-watermark/GC horizon or holding row
/// and SIREAD locks.
fn retire_session(shared: &Shared, session: &Session) {
    shared.sessions.lock().remove(&session.id);
    let rolled_back = session.harvest();
    if rolled_back > 0 {
        shared
            .stats
            .disconnect_rollbacks
            .fetch_add(rolled_back as u64, Ordering::Relaxed);
    }
}

/// RAII admission slot for commit-carrying requests.
struct CommitSlot<'a>(&'a Shared);

impl<'a> CommitSlot<'a> {
    /// Claims a slot, or sheds with `None` when the commit pipeline is
    /// saturated (`max_inflight_commits` requests already committing —
    /// which is what a backed-up flush queue looks like from here, since
    /// group-commit holds committers until their fsync lands).
    fn try_claim(shared: &'a Shared) -> Option<CommitSlot<'a>> {
        let cap = shared.opts.max_inflight_commits;
        let mut current = shared.inflight_commits.load(Ordering::Relaxed);
        loop {
            if current >= cap {
                shared.stats.busy_rejections.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            match shared.inflight_commits.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(CommitSlot(shared)),
                Err(observed) => current = observed,
            }
        }
    }
}

impl Drop for CommitSlot<'_> {
    fn drop(&mut self) {
        self.0.inflight_commits.fetch_sub(1, Ordering::AcqRel);
    }
}

fn error_response(e: &Error) -> Response {
    let code = match e {
        Error::Aborted { .. } => ErrorCode::Aborted,
        Error::TransactionClosed => ErrorCode::TxnClosed,
        Error::NoSuchTable(_) => ErrorCode::NoSuchTable,
        Error::TableExists(_) => ErrorCode::TableExists,
        Error::LockTimeout => ErrorCode::LockTimeout,
        Error::Internal(_) => ErrorCode::Internal,
        Error::Durability(_) => ErrorCode::Durability,
        Error::Degraded(_) => ErrorCode::Degraded,
        Error::Closed => ErrorCode::Closed,
    };
    Response::Err(code, e.to_string())
}

fn busy() -> Response {
    Response::Err(
        ErrorCode::Busy,
        "commit pipeline saturated; retry after backoff".to_string(),
    )
}

fn revoked() -> Response {
    Response::Err(
        ErrorCode::Closed,
        "session was revoked (idle timeout or server drain)".to_string(),
    )
}

fn handle_request(shared: &Shared, session: &Session, request: Request) -> Response {
    let db = &shared.db;
    match request {
        Request::Begin {
            isolation,
            read_only,
        } => {
            if shared.draining() {
                return Response::Err(ErrorCode::Closed, "server is draining".to_string());
            }
            let mut txns = session.txns.lock();
            if session.revoked.load(Ordering::Acquire) {
                return revoked();
            }
            let txn = if read_only {
                // Read-only declarations route through the engine's
                // dedicated entry point (it may downgrade SSI to SI per
                // configuration); check closedness first by hand.
                if db.health() == ssi_core::DbHealth::Closed {
                    return error_response(&Error::Closed);
                }
                db.begin_read_only()
            } else {
                let result = match isolation {
                    Some(level) => db.try_begin_with(level),
                    None => db.try_begin(),
                };
                match result {
                    Ok(txn) => txn,
                    Err(e) => return error_response(&e),
                }
            };
            // Handles are per-session and never reused; the transaction id
            // itself stays engine-internal.
            let handle = txn.id().0;
            txns.insert(handle, txn);
            Response::Handle(handle)
        }
        Request::Get { handle, table, key } => with_txn(shared, session, handle, false, |txn| {
            let table = db.table(&table)?;
            txn.get(&table, &key)
                .map(|v| Response::Value(v.map(|bytes| bytes.as_ref().to_vec())))
        }),
        Request::Put {
            handle,
            table,
            key,
            value,
        } => with_txn(shared, session, handle, true, |txn| {
            let table = db.table(&table)?;
            txn.put(&table, &key, &value).map(|()| Response::Ok)
        }),
        Request::Delete { handle, table, key } => with_txn(shared, session, handle, true, |txn| {
            let table = db.table(&table)?;
            txn.delete(&table, &key).map(|()| Response::Ok)
        }),
        Request::Scan {
            handle,
            table,
            lower,
            upper,
            limit,
        } => with_txn(shared, session, handle, false, |txn| {
            let table = db.table(&table)?;
            fn as_ref(b: &Bound<Vec<u8>>) -> Bound<&[u8]> {
                match b {
                    Bound::Unbounded => Bound::Unbounded,
                    Bound::Included(k) => Bound::Included(k.as_slice()),
                    Bound::Excluded(k) => Bound::Excluded(k.as_slice()),
                }
            }
            let mut rows = txn.scan(&table, as_ref(&lower), as_ref(&upper))?;
            if limit != 0 && rows.len() > limit as usize {
                rows.truncate(limit as usize);
            }
            Ok(Response::Rows(
                rows.into_iter()
                    .map(|(k, v)| (k, v.as_ref().to_vec()))
                    .collect(),
            ))
        }),
        Request::Commit { handle } => {
            let Some(_slot) = CommitSlot::try_claim(shared) else {
                return busy();
            };
            let txn = {
                let mut txns = session.txns.lock();
                if session.revoked.load(Ordering::Acquire) {
                    return revoked();
                }
                match txns.remove(&handle) {
                    Some(txn) => txn,
                    None => {
                        return Response::Err(
                            ErrorCode::TxnClosed,
                            format!("unknown transaction handle {handle}"),
                        )
                    }
                }
            };
            match txn.commit() {
                Ok(()) => Response::Ok,
                Err(e) => error_response(&e),
            }
        }
        Request::Rollback { handle } => {
            let mut txns = session.txns.lock();
            match txns.remove(&handle) {
                Some(txn) => {
                    txn.rollback();
                    Response::Ok
                }
                None => Response::Err(
                    ErrorCode::TxnClosed,
                    format!("unknown transaction handle {handle}"),
                ),
            }
        }
        Request::CreateTable { name } => match db.create_table(&name) {
            Ok(_) => Response::Ok,
            Err(e) => error_response(&e),
        },
        Request::CreateIndex {
            name,
            table,
            unique,
            spec,
        } => {
            let Some(spec) = ssi_core::IndexKeySpec::decode(&spec) else {
                return Response::Err(
                    ErrorCode::BadRequest,
                    "undecodable index key spec".to_string(),
                );
            };
            let table = match db.table(&table) {
                Ok(table) => table,
                Err(e) => return error_response(&e),
            };
            match db.create_index(&name, &table, unique, spec) {
                Ok(_) => Response::Ok,
                Err(e) => error_response(&e),
            }
        }
        Request::IndexScan {
            handle,
            index,
            lower,
            upper,
            limit,
        } => with_txn(shared, session, handle, false, |txn| {
            let index = db.index(&index)?;
            fn as_ref(b: &Bound<Vec<u8>>) -> Bound<&[u8]> {
                match b {
                    Bound::Unbounded => Bound::Unbounded,
                    Bound::Included(k) => Bound::Included(k.as_slice()),
                    Bound::Excluded(k) => Bound::Excluded(k.as_slice()),
                }
            }
            let mut rows = txn.index_scan(&index, as_ref(&lower), as_ref(&upper))?;
            if limit != 0 && rows.len() > limit as usize {
                rows.truncate(limit as usize);
            }
            Ok(Response::Rows(
                rows.into_iter()
                    .map(|(k, v)| (k, v.as_ref().to_vec()))
                    .collect(),
            ))
        }),
        Request::Metrics => {
            let mut snapshot = db.metrics();
            snapshot.server = shared.server_metrics();
            Response::Text(snapshot.render_text())
        }
        Request::Ping => Response::Ok,
    }
}

/// Runs `body` against the handle's transaction (or a one-shot autocommit
/// transaction for [`AUTOCOMMIT`]). Interactive handles whose transaction
/// aborted inside `body` are removed from the session map — the engine has
/// already rolled them back, so keeping the husk would only turn later
/// requests into confusing `TxnClosed` errors after a commit "worked".
fn with_txn(
    shared: &Shared,
    session: &Session,
    handle: u64,
    writes: bool,
    body: impl FnOnce(&mut Transaction) -> Result<Response, Error>,
) -> Response {
    if handle == AUTOCOMMIT {
        // One-shot: begin, run, commit — shed at the door when the commit
        // pipeline is saturated and the operation will need a commit slot.
        let _slot = if writes {
            match CommitSlot::try_claim(shared) {
                Some(slot) => Some(slot),
                None => return busy(),
            }
        } else {
            None
        };
        let mut txn = match shared.db.try_begin() {
            Ok(txn) => txn,
            Err(e) => return error_response(&e),
        };
        let response = match body(&mut txn) {
            Ok(response) => response,
            Err(e) => return error_response(&e),
        };
        match txn.commit() {
            Ok(()) => response,
            Err(e) => error_response(&e),
        }
    } else {
        let mut txns = session.txns.lock();
        if session.revoked.load(Ordering::Acquire) {
            return revoked();
        }
        let Some(txn) = txns.get_mut(&handle) else {
            return Response::Err(
                ErrorCode::TxnClosed,
                format!("unknown transaction handle {handle}"),
            );
        };
        match body(txn) {
            Ok(response) => response,
            Err(e) => {
                if !txn.is_active() {
                    txns.remove(&handle);
                }
                error_response(&e)
            }
        }
    }
}
