//! The benchmark driver: runs a workload at a fixed multiprogramming level
//! (MPL) for a fixed duration and aggregates throughput and abort statistics.
//!
//! This plays the role of `db_perf` in the Berkeley DB evaluation and of the
//! custom MySQL clients in the InnoDB evaluation (Sec. 6.1.1, 6.2): each of
//! the `mpl` worker threads executes transactions back-to-back with no think
//! time, counts commits per transaction type, and classifies every abort as a
//! deadlock, a first-committer-wins conflict, an SSI "unsafe" abort or an
//! application-requested rollback.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use ssi_common::rng::WorkloadRng;
use ssi_common::stats::{RunStats, WorkerStats};
use ssi_common::{AbortKind, Error};
use ssi_core::Database;

/// A benchmark workload that the driver can execute.
///
/// Implementations own their table handles and parameters; `execute_one`
/// picks a transaction type according to the workload's mix, runs it in a
/// fresh transaction and returns `(type index, outcome)`. On an `Err`
/// outcome the transaction has already been rolled back by the engine.
pub trait Workload: Sync {
    /// Human-readable workload name.
    fn name(&self) -> &str;

    /// Number of transaction types in the mix.
    fn transaction_types(&self) -> usize;

    /// Name of a transaction type (for reports).
    fn transaction_type_name(&self, ty: usize) -> &'static str;

    /// Executes one randomly chosen transaction.
    fn execute_one(&self, db: &Database, rng: &mut WorkloadRng) -> (usize, Result<(), Error>);

    /// Optional consistency check run after a measurement (e.g. SmallBank's
    /// non-negative-balance invariant). Returns a human-readable description
    /// of any violation found.
    fn check_consistency(&self, _db: &Database) -> Option<String> {
        None
    }
}

/// Driver configuration for one measured run.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Number of worker threads issuing transactions back-to-back.
    pub mpl: usize,
    /// Warm-up period excluded from the measurement.
    pub warmup: Duration,
    /// Measured period.
    pub duration: Duration,
    /// Base RNG seed; worker `i` uses `seed + i`.
    pub seed: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            mpl: 1,
            warmup: Duration::from_millis(100),
            duration: Duration::from_secs(1),
            seed: 42,
        }
    }
}

impl RunConfig {
    /// Convenience constructor for a given MPL with default timings.
    pub fn with_mpl(mpl: usize) -> Self {
        RunConfig {
            mpl,
            ..RunConfig::default()
        }
    }
}

/// Runs `workload` against `db` with the given configuration and returns the
/// aggregated statistics of the measured period.
pub fn run_workload(db: &Database, workload: &dyn Workload, cfg: &RunConfig) -> RunStats {
    let measuring = AtomicBool::new(false);
    let stop = AtomicBool::new(false);
    let types = workload.transaction_types();

    let mut worker_stats: Vec<WorkerStats> = Vec::with_capacity(cfg.mpl);
    let measured_elapsed = std::sync::Mutex::new(Duration::ZERO);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(cfg.mpl);
        for worker in 0..cfg.mpl {
            let measuring = &measuring;
            let stop = &stop;
            let db = db.clone();
            let seed = cfg.seed + worker as u64;
            handles.push(scope.spawn(move || {
                let mut rng = WorkloadRng::new(seed);
                let mut stats = WorkerStats::with_types(types);
                while !stop.load(Ordering::Relaxed) {
                    let start = Instant::now();
                    let (ty, outcome) = workload.execute_one(&db, &mut rng);
                    if !measuring.load(Ordering::Relaxed) {
                        continue;
                    }
                    match outcome {
                        Ok(()) => stats.record_commit(ty, start.elapsed()),
                        Err(err) => {
                            let kind = err.abort_kind().unwrap_or(AbortKind::UserRequested);
                            stats.record_abort(kind);
                        }
                    }
                }
                stats
            }));
        }

        // Warm-up, then measure.
        std::thread::sleep(cfg.warmup);
        measuring.store(true, Ordering::Relaxed);
        let started = Instant::now();
        std::thread::sleep(cfg.duration);
        *measured_elapsed.lock().unwrap() = started.elapsed();
        stop.store(true, Ordering::Relaxed);

        for handle in handles {
            worker_stats.push(handle.join().expect("worker panicked"));
        }
    });

    let elapsed = *measured_elapsed.lock().unwrap();
    RunStats::aggregate(&worker_stats, elapsed, cfg.mpl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssi_core::Options;

    /// A trivial workload: increment one of `n` counters.
    struct Counters {
        table: ssi_core::TableRef,
        n: u64,
    }

    impl Counters {
        fn setup(db: &Database, n: u64) -> Self {
            let table = db.create_table("counters").unwrap();
            let mut txn = db.begin();
            for i in 0..n {
                txn.put(&table, &i.to_be_bytes(), &0u64.to_be_bytes())
                    .unwrap();
            }
            txn.commit().unwrap();
            Counters { table, n }
        }

        fn total(&self, db: &Database) -> u64 {
            let mut txn = db.begin();
            let rows = txn
                .scan(
                    &self.table,
                    std::ops::Bound::Unbounded,
                    std::ops::Bound::Unbounded,
                )
                .unwrap();
            let sum = rows
                .iter()
                .map(|(_, v)| u64::from_be_bytes(v[..].try_into().unwrap()))
                .sum();
            txn.commit().unwrap();
            sum
        }
    }

    impl Workload for Counters {
        fn name(&self) -> &str {
            "counters"
        }
        fn transaction_types(&self) -> usize {
            1
        }
        fn transaction_type_name(&self, _ty: usize) -> &'static str {
            "increment"
        }
        fn execute_one(&self, db: &Database, rng: &mut WorkloadRng) -> (usize, Result<(), Error>) {
            let key = rng.uniform(0, self.n - 1).to_be_bytes();
            let mut txn = db.begin();
            let result = (|| {
                let current = txn
                    .get_for_update(&self.table, &key)?
                    .map(|v| u64::from_be_bytes(v[..].try_into().unwrap()))
                    .unwrap_or(0);
                txn.put(&self.table, &key, &(current + 1).to_be_bytes())?;
                Ok(())
            })();
            match result {
                Ok(()) => (0, txn.commit()),
                Err(e) => (0, Err(e)),
            }
        }
    }

    #[test]
    fn driver_counts_commits_and_preserves_totals() {
        let db = Database::open(Options::default());
        let workload = Counters::setup(&db, 16);
        let cfg = RunConfig {
            mpl: 4,
            warmup: Duration::from_millis(20),
            duration: Duration::from_millis(200),
            seed: 7,
        };
        let stats = run_workload(&db, &workload, &cfg);
        assert!(stats.commits > 0, "should commit something");
        assert!(stats.throughput() > 0.0);
        assert_eq!(stats.mpl, 4);
        // The sum of all counters must equal the number of *successful*
        // increments — but the driver only counts commits inside the
        // measurement window, so the invariant we can check is weaker: the
        // total is at least the measured commits.
        assert!(workload.total(&db) >= stats.commits);
    }

    #[test]
    fn single_threaded_run_has_no_aborts() {
        let db = Database::open(Options::default());
        let workload = Counters::setup(&db, 4);
        let cfg = RunConfig {
            mpl: 1,
            warmup: Duration::from_millis(10),
            duration: Duration::from_millis(100),
            seed: 1,
        };
        let stats = run_workload(&db, &workload, &cfg);
        assert!(stats.commits > 0);
        assert_eq!(stats.cc_aborts(), 0);
        assert_eq!(stats.abort_ratio(), 0.0);
    }
}
