//! Crash-recovery correctness net for the durability subsystem.
//!
//! The core guarantees under test (see the `ssi-wal` crate docs):
//!
//! * **round trip** — commit, drop, reopen: every acknowledged commit is
//!   back, including deletes, across multiple tables and checkpoints;
//! * **prefix consistency** — truncating the log at *any* byte (torn tail,
//!   half-written record) recovers exactly the state after some prefix of
//!   the committed transactions, never a torn or interleaved state;
//! * **idempotence** — recovering the same directory twice produces the
//!   same state;
//! * **invariant preservation** — for randomized transfer histories cut at
//!   arbitrary log prefixes, the SmallBank-style total-balance invariant
//!   holds in the recovered state;
//! * **index rebuild** — secondary indexes are not logged row-by-row; they
//!   are reconstructed from the replayed chains (and checkpoint snapshots)
//!   on recovery, and must agree exactly with the visible rows at every
//!   possible crash cut.

use std::collections::BTreeMap;
use std::ops::Bound;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use serializable_si::common::encoding::{KeyBuilder, ValueReader, ValueWriter};
use serializable_si::{Database, Durability, FieldKind, IndexKeyPart, IndexKeySpec, Options};

static NEXT_DIR: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let n = NEXT_DIR.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "ssi-durability-test-{}-{tag}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open(dir: &Path, mode: Durability) -> Database {
    Database::open(Options::default().with_durability(mode, dir))
}

/// Logical state dump: every table's visible rows at the current clock.
fn dump(db: &Database) -> BTreeMap<String, BTreeMap<Vec<u8>, Vec<u8>>> {
    let mut out = BTreeMap::new();
    for name in db.table_names() {
        let table = db.table(&name).unwrap();
        let mut txn = db.begin_read_only();
        let rows = txn
            .scan(&table, Bound::Unbounded, Bound::Unbounded)
            .unwrap()
            .into_iter()
            .map(|(k, v)| (k, v.to_vec()))
            .collect();
        txn.commit().unwrap();
        out.insert(name, rows);
    }
    out
}

fn wal_segments(dir: &Path) -> Vec<PathBuf> {
    let mut segments: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| {
            let path = e.unwrap().path();
            (path.extension().is_some_and(|x| x == "wal")).then_some(path)
        })
        .collect();
    segments.sort();
    segments
}

#[test]
fn group_commit_survives_reopen() {
    let dir = temp_dir("roundtrip");
    {
        let db = open(&dir, Durability::GroupCommit);
        let accounts = db.create_table("accounts").unwrap();
        let audit = db.create_table("audit").unwrap();
        let mut t = db.begin();
        t.put(&accounts, b"alice", b"100").unwrap();
        t.put(&accounts, b"bob", b"250").unwrap();
        t.put(&audit, b"e1", b"open").unwrap();
        t.commit().unwrap();
        let mut t = db.begin();
        t.put(&accounts, b"alice", b"70").unwrap();
        t.delete(&accounts, b"bob").unwrap();
        t.commit().unwrap();
    }
    let db = open(&dir, Durability::GroupCommit);
    let rec = db.recovery_info().unwrap().clone();
    assert_eq!(rec.txns_replayed, 2);
    assert!(!rec.torn_tail);
    let state = dump(&db);
    assert_eq!(
        state["accounts"],
        BTreeMap::from([(b"alice".to_vec(), b"70".to_vec())]),
        "update and delete must both replay"
    );
    assert_eq!(state["audit"].len(), 1);

    // The reopened database keeps working and survives another reopen.
    let accounts = db.table("accounts").unwrap();
    let mut t = db.begin();
    t.put(&accounts, b"carol", b"5").unwrap();
    t.commit().unwrap();
    drop(db);
    let db = open(&dir, Durability::GroupCommit);
    assert_eq!(dump(&db)["accounts"].len(), 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn buffered_mode_flushes_on_clean_close() {
    let dir = temp_dir("buffered");
    {
        let db = open(&dir, Durability::Buffered);
        let t = db.create_table("t").unwrap();
        for i in 0..50u64 {
            let mut txn = db.begin();
            txn.put(&t, &i.to_be_bytes(), b"v").unwrap();
            txn.commit().unwrap();
        }
        // Buffered commits must not fsync per commit.
        let fsyncs = db
            .durability_stats()
            .unwrap()
            .fsyncs
            .load(Ordering::Relaxed);
        assert_eq!(fsyncs, 0, "buffered mode must not fsync on commit");
    }
    let db = open(&dir, Durability::Buffered);
    assert_eq!(dump(&db)["t"].len(), 50);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_truncates_log_and_recovers_snapshot_plus_tail() {
    let dir = temp_dir("checkpoint");
    {
        let db = open(&dir, Durability::GroupCommit);
        let t = db.create_table("t").unwrap();
        for i in 0..40u64 {
            let mut txn = db.begin();
            txn.put(&t, &i.to_be_bytes(), &i.to_le_bytes()).unwrap();
            txn.commit().unwrap();
        }
        // Delete a few so the snapshot must reflect tombstones by omission.
        let mut txn = db.begin();
        txn.delete(&t, &3u64.to_be_bytes()).unwrap();
        txn.commit().unwrap();

        let stats = db.checkpoint().unwrap();
        assert_eq!(stats.rows, 39);
        assert_eq!(stats.segments_pruned, 1);

        // Post-checkpoint commits land in the new segment.
        for i in 100..105u64 {
            let mut txn = db.begin();
            txn.put(&t, &i.to_be_bytes(), b"tail").unwrap();
            txn.commit().unwrap();
        }
        assert_eq!(wal_segments(&dir).len(), 1, "old segment must be pruned");
    }
    let db = open(&dir, Durability::GroupCommit);
    let rec = db.recovery_info().unwrap().clone();
    assert!(rec.snapshot_ts > 0, "recovery must start from the snapshot");
    assert_eq!(
        rec.txns_replayed, 5,
        "only the post-checkpoint tail replays"
    );
    assert_eq!(dump(&db)["t"].len(), 44);

    // A second checkpoint over recovered state round-trips too.
    db.checkpoint().unwrap();
    drop(db);
    let db = open(&dir, Durability::GroupCommit);
    assert_eq!(dump(&db)["t"].len(), 44);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn auto_checkpoint_triggers_on_log_growth() {
    let dir = temp_dir("autockpt");
    let mut options = Options::default().with_durability(Durability::Buffered, &dir);
    options.durability.checkpoint_every_bytes = Some(4096);
    {
        let db = Database::open(options.clone());
        let t = db.create_table("t").unwrap();
        for i in 0..200u64 {
            let mut txn = db.begin();
            txn.put(&t, &i.to_be_bytes(), &[7u8; 64]).unwrap();
            txn.commit().unwrap();
        }
        let snapshots = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .path()
                    .extension()
                    .is_some_and(|x| x == "ckpt")
            })
            .count();
        assert!(
            snapshots >= 1,
            "log growth must have triggered a checkpoint"
        );
    }
    let db = Database::open(options);
    assert_eq!(dump(&db)["t"].len(), 200);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_group_commits_all_survive_reopen() {
    // 8 writer threads; every commit acknowledged before the crash point
    // must be present after recovery (group commit must lose nothing).
    let dir = temp_dir("concurrent");
    let committed: Vec<(u64, u64)> = {
        let db = open(&dir, Durability::GroupCommit);
        let t = db.create_table("t").unwrap();
        let mut acks = Vec::new();
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for worker in 0..8u64 {
                let db = db.clone();
                let t = t.clone();
                handles.push(s.spawn(move || {
                    let mut acked = Vec::new();
                    for i in 0..25u64 {
                        let key = worker * 1000 + i;
                        let mut txn = db.begin();
                        if txn.put(&t, &key.to_be_bytes(), &i.to_le_bytes()).is_ok()
                            && txn.commit().is_ok()
                        {
                            acked.push((key, i));
                        }
                    }
                    acked
                }));
            }
            for h in handles {
                acks.extend(h.join().unwrap());
            }
        });
        let stats = db.durability_stats().unwrap();
        assert_eq!(
            stats.records.load(Ordering::Relaxed),
            acks.len() as u64,
            "one log record per acknowledged commit"
        );
        acks
    };
    assert_eq!(committed.len(), 200, "disjoint keys: no commit may abort");
    let db = open(&dir, Durability::GroupCommit);
    let state = &dump(&db)["t"];
    assert_eq!(state.len(), committed.len());
    for (key, i) in committed {
        assert_eq!(
            state.get(&key.to_be_bytes()[..].to_vec()).map(|v| &v[..]),
            Some(&i.to_le_bytes()[..]),
            "acknowledged commit of key {key} lost"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn double_open_of_a_durable_directory_is_refused() {
    // Two writers appending to the same segment would interleave frames
    // into CRC garbage; the directory lock must make the second open fail
    // while the first handle lives, and succeed after it is dropped.
    let dir = temp_dir("double-open");
    let db = open(&dir, Durability::GroupCommit);
    let second =
        Database::try_open(Options::default().with_durability(Durability::GroupCommit, &dir));
    assert!(
        matches!(second, Err(serializable_si::Error::Durability(_))),
        "second open must be refused: {second:?}"
    );
    drop(db);
    Database::try_open(Options::default().with_durability(Durability::GroupCommit, &dir))
        .expect("reopen after drop must succeed");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn commits_after_torn_tail_reopen_survive_next_recovery() {
    // Regression (review finding): a crash leaves a torn tail; the reopened
    // database acknowledges new fsynced commits into a later segment. Those
    // commits must survive the *next* recovery — the old torn segment must
    // not render everything after it unreadable.
    let dir = temp_dir("torn-reopen");
    {
        let db = open(&dir, Durability::GroupCommit);
        let t = db.create_table("t").unwrap();
        for i in 0..5u64 {
            let mut txn = db.begin();
            txn.put(&t, &i.to_be_bytes(), b"old").unwrap();
            txn.commit().unwrap();
        }
    }
    // Tear the tail: chop half of the last record's frame.
    let segments = wal_segments(&dir);
    let full = std::fs::read(&segments[0]).unwrap();
    std::fs::write(&segments[0], &full[..full.len() - 7]).unwrap();

    {
        let db = open(&dir, Durability::GroupCommit);
        assert!(db.recovery_info().unwrap().torn_tail);
        assert_eq!(db.recovery_info().unwrap().txns_replayed, 4);
        let t = db.table("t").unwrap();
        let mut txn = db.begin();
        txn.put(&t, b"new-key", b"acked").unwrap();
        txn.commit().unwrap(); // fsynced: acknowledged durable
    }

    let db = open(&dir, Durability::GroupCommit);
    let state = &dump(&db)["t"];
    assert_eq!(
        state.get(&b"new-key"[..]).map(|v| &v[..]),
        Some(&b"acked"[..]),
        "acknowledged post-reopen commit lost"
    );
    assert_eq!(state.len(), 5, "4 old prefix rows + the new key");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Copies a durable directory's files into a fresh directory, so one run's
/// log can be crash-cut several ways without re-running the workload.
fn copy_dir(src: &Path, tag: &str) -> PathBuf {
    let dst = temp_dir(tag);
    std::fs::create_dir_all(&dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let path = entry.unwrap().path();
        if path.is_file() {
            std::fs::copy(&path, dst.join(path.file_name().unwrap())).unwrap();
        }
    }
    dst
}

/// Copies a durable directory *while the database is still writing to it* —
/// a live crash image. Append-only segments are copied in ascending
/// sequence order, so every closed segment is whole and only the current
/// append target yields a prefix, exactly the shape a real crash leaves.
fn live_crash_copy(src: &Path, tag: &str) -> PathBuf {
    let dst = temp_dir(tag);
    std::fs::create_dir_all(&dst).unwrap();
    let mut files: Vec<PathBuf> = std::fs::read_dir(src)
        .unwrap()
        .filter_map(|e| {
            let path = e.unwrap().path();
            path.is_file().then_some(path)
        })
        .collect();
    files.sort();
    for path in files {
        // A file pruned between the listing and the copy is skipped (this
        // test runs without checkpoints, so it cannot actually happen; the
        // tolerance keeps the helper honest for reuse).
        let _ = std::fs::copy(&path, dst.join(path.file_name().unwrap()));
    }
    dst
}

/// Sums the recovered account balances; `None` when the table is absent or
/// empty (recovery landed before the setup transaction).
fn account_sum(db: &Database) -> Option<(u64, i64)> {
    let state = dump(db).remove("accounts")?;
    if state.is_empty() {
        return None;
    }
    let sum = state
        .values()
        .map(|v| {
            String::from_utf8(v.clone())
                .unwrap()
                .parse::<i64>()
                .unwrap()
        })
        .sum();
    Some((state.len() as u64, sum))
}

#[test]
fn checkpoint_racing_purge_recovers_transfer_invariant_at_any_cut() {
    // The reclamation/checkpoint scheduling test: transfer writers, a
    // checkpoint looper and a version-GC hammer all run concurrently (plus
    // the automatic commit-cadence purge), so fuzzy table snapshots stream
    // *while* purges fire. The horizon pin must keep every version a
    // snapshot still needs; a purge past the cut would write a snapshot
    // with rows missing, and recovery from it — at any crash cut of the
    // tail segment — would break the constant-sum invariant or lose
    // accounts entirely.
    const ACCOUNTS: u64 = 8;
    const INITIAL: i64 = 1000;
    let dir = temp_dir("ckpt-vs-purge");
    {
        let options = Options::default()
            .with_durability(Durability::GroupCommit, &dir)
            .with_auto_purge(4);
        let db = Database::open(options);
        let t = db.create_table("accounts").unwrap();
        let mut setup = db.begin();
        for a in 0..ACCOUNTS {
            setup
                .put(&t, &a.to_be_bytes(), INITIAL.to_string().as_bytes())
                .unwrap();
        }
        setup.commit().unwrap();

        let stop = AtomicU64::new(0);
        std::thread::scope(|s| {
            {
                let db = db.clone();
                let stop = &stop;
                s.spawn(move || {
                    while stop.load(Ordering::Relaxed) == 0 {
                        db.checkpoint().expect("checkpoint failed mid-race");
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                });
            }
            {
                let db = db.clone();
                let stop = &stop;
                s.spawn(move || {
                    while stop.load(Ordering::Relaxed) == 0 {
                        db.purge();
                        std::thread::yield_now();
                    }
                });
            }
            let mut writers = Vec::new();
            for w in 0..4u64 {
                let db = db.clone();
                let t = t.clone();
                writers.push(s.spawn(move || {
                    for i in 0..60u64 {
                        let h = (w * 1_000_003 + i).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                        let from = h % ACCOUNTS;
                        let to = (from + 1 + (h >> 8) % (ACCOUNTS - 1)) % ACCOUNTS;
                        let amount = ((h >> 16) % 50) as i64;
                        let mut txn = db.begin();
                        let transfer = (|| -> serializable_si::Result<()> {
                            let get = |txn: &mut serializable_si::Transaction,
                                       a: u64|
                             -> serializable_si::Result<i64> {
                                Ok(String::from_utf8(
                                    txn.get(&t, &a.to_be_bytes())?.unwrap().to_vec(),
                                )
                                .unwrap()
                                .parse()
                                .unwrap())
                            };
                            let from_balance = get(&mut txn, from)?;
                            let to_balance = get(&mut txn, to)?;
                            txn.put(
                                &t,
                                &from.to_be_bytes(),
                                (from_balance - amount).to_string().as_bytes(),
                            )?;
                            txn.put(
                                &t,
                                &to.to_be_bytes(),
                                (to_balance + amount).to_string().as_bytes(),
                            )?;
                            txn.commit()
                        })();
                        match transfer {
                            Ok(()) => {}
                            Err(e) if e.is_retryable() => {} // aborted: sum unchanged
                            Err(e) => panic!("unexpected error: {e}"),
                        }
                    }
                }));
            }
            for w in writers {
                w.join().unwrap();
            }
            stop.store(1, Ordering::Relaxed);
        });

        // The race must actually have happened: purges ran (cadence +
        // hammer) while checkpoints cut and pruned the log.
        let stats = db.transaction_manager().stats();
        assert!(stats.purge_runs.load(Ordering::Relaxed) > 0);
        assert!(
            db.transaction_manager().oldest_gc_pin().is_none(),
            "every checkpoint must release its horizon pin"
        );
    }

    // Crash-cut the tail segment at several fractions — each on a copy of
    // the directory, so one workload run covers all cuts — and recover.
    for cut_permille in [0u64, 250, 500, 750, 1000] {
        let case = copy_dir(&dir, &format!("ckpt-vs-purge-cut{cut_permille}"));
        let segments = wal_segments(&case);
        if let Some(last) = segments.last() {
            let full = std::fs::read(last).unwrap();
            let cut = (full.len() as u64 * cut_permille / 1000) as usize;
            std::fs::write(last, &full[..cut]).unwrap();
        }
        let db = open(&case, Durability::GroupCommit);
        let (accounts, sum) = account_sum(&db)
            .expect("a checkpoint snapshot always covers at least the setup transaction");
        assert_eq!(
            accounts, ACCOUNTS,
            "recovery lost accounts (cut {cut_permille}‰)"
        );
        assert_eq!(
            sum,
            ACCOUNTS as i64 * INITIAL,
            "checkpoint-vs-purge race broke the transfer invariant (cut {cut_permille}‰)"
        );
        drop(db);
        let _ = std::fs::remove_dir_all(&case);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn background_maintenance_with_checkpoints_survives_any_cut() {
    // The PR-4 checkpoint-vs-purge race, now with the maintenance hub's
    // threads in the mix: the dedicated flusher (so checkpoint rotation
    // hands segments off instead of fsyncing under the append lock) and
    // the incremental background GC thread, plus a checkpoint looper and
    // transfer writers. Crash-cut at several fractions of the tail
    // segment: the SmallBank sum must hold at every cut.
    const ACCOUNTS: u64 = 8;
    const INITIAL: i64 = 1000;
    let dir = temp_dir("bg-ckpt-cut");
    {
        let options = Options::default()
            .with_durability(Durability::GroupCommit, &dir)
            .with_background_flusher(std::time::Duration::from_millis(2))
            .with_background_gc(std::time::Duration::from_millis(1));
        let db = Database::open(options);
        assert!(db.has_background_flusher() && db.has_background_gc());
        let t = db.create_table("accounts").unwrap();
        let mut setup = db.begin();
        for a in 0..ACCOUNTS {
            setup
                .put(&t, &a.to_be_bytes(), INITIAL.to_string().as_bytes())
                .unwrap();
        }
        setup.commit().unwrap();

        let stop = AtomicU64::new(0);
        std::thread::scope(|s| {
            {
                let db = db.clone();
                let stop = &stop;
                s.spawn(move || {
                    while stop.load(Ordering::Relaxed) == 0 {
                        db.checkpoint().expect("checkpoint failed mid-race");
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    }
                });
            }
            let mut writers = Vec::new();
            for w in 0..4u64 {
                let db = db.clone();
                let t = t.clone();
                writers.push(s.spawn(move || {
                    for i in 0..40u64 {
                        let h = (w * 1_000_003 + i).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                        let from = h % ACCOUNTS;
                        let to = (from + 1 + (h >> 8) % (ACCOUNTS - 1)) % ACCOUNTS;
                        let amount = ((h >> 16) % 50) as i64;
                        let mut txn = db.begin();
                        let transfer = (|| -> serializable_si::Result<()> {
                            let get = |txn: &mut serializable_si::Transaction,
                                       a: u64|
                             -> serializable_si::Result<i64> {
                                Ok(String::from_utf8(
                                    txn.get(&t, &a.to_be_bytes())?.unwrap().to_vec(),
                                )
                                .unwrap()
                                .parse()
                                .unwrap())
                            };
                            let from_balance = get(&mut txn, from)?;
                            let to_balance = get(&mut txn, to)?;
                            txn.put(
                                &t,
                                &from.to_be_bytes(),
                                (from_balance - amount).to_string().as_bytes(),
                            )?;
                            txn.put(
                                &t,
                                &to.to_be_bytes(),
                                (to_balance + amount).to_string().as_bytes(),
                            )?;
                            txn.commit()
                        })();
                        match transfer {
                            Ok(()) => {}
                            Err(e) if e.is_retryable() => {}
                            Err(e) => panic!("unexpected error: {e}"),
                        }
                    }
                }));
            }
            for w in writers {
                w.join().unwrap();
            }
            stop.store(1, Ordering::Relaxed);
        });
        // The background GC thread must actually have run while the
        // checkpoints and transfers raced it.
        let stats = db.transaction_manager().stats();
        assert!(
            stats.background_purge_runs.load(Ordering::Relaxed) > 0,
            "background GC never ran during the race window"
        );
    }

    for cut_permille in [0u64, 250, 500, 750, 1000] {
        let case = copy_dir(&dir, &format!("bg-ckpt-cut{cut_permille}"));
        let segments = wal_segments(&case);
        if let Some(last) = segments.last() {
            let full = std::fs::read(last).unwrap();
            let cut = (full.len() as u64 * cut_permille / 1000) as usize;
            std::fs::write(last, &full[..cut]).unwrap();
        }
        let db = open(&case, Durability::GroupCommit);
        let (accounts, sum) = account_sum(&db)
            .expect("a checkpoint snapshot always covers at least the setup transaction");
        assert_eq!(
            accounts, ACCOUNTS,
            "recovery lost accounts (cut {cut_permille}‰)"
        );
        assert_eq!(
            sum,
            ACCOUNTS as i64 * INITIAL,
            "background maintenance broke the transfer invariant (cut {cut_permille}‰)"
        );
        drop(db);
        let _ = std::fs::remove_dir_all(&case);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Applies transaction `i` of the deterministic history to `model`.
fn model_apply(model: &mut BTreeMap<Vec<u8>, Vec<u8>>, i: u64) {
    // Mixed puts/overwrites/deletes over a small key space, derived from a
    // cheap hash so the history is deterministic per index.
    let h = |x: u64| {
        let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z ^ (z >> 31)
    };
    for op in 0..1 + h(i) % 3 {
        let key = (h(i * 7 + op) % 12).to_be_bytes().to_vec();
        if h(i * 13 + op) % 5 == 0 {
            model.remove(&key);
        } else {
            model.insert(key, format!("v{}-{}", i, op).into_bytes());
        }
    }
}

/// Runs the same history against a real durable database; returns the
/// model state after every commit (index 0 = empty).
fn run_history(dir: &Path, txns: u64) -> Vec<BTreeMap<Vec<u8>, Vec<u8>>> {
    let db = open(dir, Durability::GroupCommit);
    let t = db.create_table("t").unwrap();
    let mut model = BTreeMap::new();
    let mut states = vec![model.clone()];
    for i in 0..txns {
        let before = model.clone();
        model_apply(&mut model, i);
        let mut txn = db.begin();
        // Apply the model diff as the transaction's writes.
        for (key, value) in &model {
            if before.get(key) != Some(value) {
                txn.put(&t, key, value).unwrap();
            }
        }
        for key in before.keys() {
            if !model.contains_key(key) {
                txn.delete(&t, key).unwrap();
            }
        }
        txn.commit().unwrap();
        states.push(model.clone());
    }
    states
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Cut the log at an arbitrary byte: recovery must yield exactly the
    /// state after some prefix of the committed transactions, and
    /// recovering twice must agree.
    fn torn_log_tail_recovers_a_consistent_prefix((txns, cut_permille) in (3u64..16, 0u64..=1000)) {
        let dir = temp_dir("torn");
        let states = run_history(&dir, txns);

        // Simulate a crash with a torn tail: truncate the single segment.
        let segments = wal_segments(&dir);
        prop_assert_eq!(segments.len(), 1);
        let full = std::fs::read(&segments[0]).unwrap();
        let cut = (full.len() as u64 * cut_permille / 1000) as usize;
        std::fs::write(&segments[0], &full[..cut]).unwrap();

        let db = open(&dir, Durability::GroupCommit);
        let replayed = db.recovery_info().unwrap().txns_replayed as usize;
        prop_assert!(replayed < states.len());
        let recovered = dump(&db).remove("t").unwrap_or_default();
        prop_assert_eq!(
            &recovered, &states[replayed],
            "recovered state is not the prefix state after {} txns", replayed
        );
        // Monotone coverage: cutting at the very end loses nothing.
        if cut == full.len() {
            prop_assert_eq!(replayed + 1, states.len());
        }
        drop(db);

        // Idempotence: a second recovery of the same directory agrees.
        let db2 = open(&dir, Durability::GroupCommit);
        prop_assert_eq!(db2.recovery_info().unwrap().txns_replayed as usize, replayed);
        prop_assert_eq!(&dump(&db2).remove("t").unwrap_or_default(), &states[replayed]);
        drop(db2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// SmallBank-style invariant: randomized transfer histories keep the
    /// total balance constant; a crash cut at any log prefix must recover
    /// a state that still satisfies the invariant (all-or-nothing per
    /// transaction).
    fn smallbank_invariant_survives_crash_cut((transfers, cut_permille, seed) in (1u64..24, 0u64..=1000, 0u64..1000)) {
        const ACCOUNTS: u64 = 8;
        const INITIAL: i64 = 100;
        let dir = temp_dir("smallbank");
        {
            let db = open(&dir, Durability::GroupCommit);
            let t = db.create_table("accounts").unwrap();
            let mut setup = db.begin();
            for a in 0..ACCOUNTS {
                setup.put(&t, &a.to_be_bytes(), INITIAL.to_string().as_bytes()).unwrap();
            }
            setup.commit().unwrap();
            let h = |x: u64| {
                let mut z = x.wrapping_add(seed).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                z = (z ^ (z >> 29)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z ^ (z >> 32)
            };
            for i in 0..transfers {
                let from = h(i * 2) % ACCOUNTS;
                let to = (from + 1 + h(i * 2 + 1) % (ACCOUNTS - 1)) % ACCOUNTS;
                let amount = (h(i * 3) % 40) as i64;
                let mut txn = db.begin();
                let get = |txn: &mut serializable_si::Transaction, a: u64| -> i64 {
                    String::from_utf8(txn.get(&t, &a.to_be_bytes()).unwrap().unwrap().to_vec())
                        .unwrap().parse().unwrap()
                };
                let from_balance = get(&mut txn, from);
                let to_balance = get(&mut txn, to);
                txn.put(&t, &from.to_be_bytes(), (from_balance - amount).to_string().as_bytes()).unwrap();
                txn.put(&t, &to.to_be_bytes(), (to_balance + amount).to_string().as_bytes()).unwrap();
                txn.commit().unwrap();
            }
        }

        let segments = wal_segments(&dir);
        prop_assert_eq!(segments.len(), 1);
        let full = std::fs::read(&segments[0]).unwrap();
        let cut = (full.len() as u64 * cut_permille / 1000) as usize;
        std::fs::write(&segments[0], &full[..cut]).unwrap();

        let db = open(&dir, Durability::GroupCommit);
        let state = dump(&db).remove("accounts").unwrap_or_default();
        // The setup transaction is atomic: either nothing or all accounts
        // exist, and then every later prefix preserves the total.
        if state.is_empty() {
            prop_assert_eq!(db.recovery_info().unwrap().txns_replayed, 0);
        } else {
            prop_assert_eq!(state.len() as u64, ACCOUNTS);
            let total: i64 = state.values()
                .map(|v| String::from_utf8(v.clone()).unwrap().parse::<i64>().unwrap())
                .sum();
            prop_assert_eq!(total, ACCOUNTS as i64 * INITIAL,
                "crash cut broke the transfer invariant");
        }
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Transfers with checkpoints and automatic version GC interleaved
    /// deterministically, crash-cut at an arbitrary byte of the tail
    /// segment: recovery must land on a per-transaction prefix (the
    /// constant-sum invariant holds), must never replay onto a
    /// purged-too-early chain (the snapshot would be missing rows and the
    /// sum would drift), and a second recovery must agree with the first.
    fn checkpointed_and_purged_history_survives_crash_cut(
        (transfers, ckpt_every, cut_permille, seed) in (4u64..20, 2u64..6, 0u64..=1000, 0u64..500)
    ) {
        const ACCOUNTS: u64 = 8;
        const INITIAL: i64 = 100;
        let dir = temp_dir("ckpt-purge-cut");
        {
            let options = Options::default()
                .with_durability(Durability::GroupCommit, &dir)
                .with_auto_purge(3);
            let db = Database::open(options);
            let t = db.create_table("accounts").unwrap();
            let mut setup = db.begin();
            for a in 0..ACCOUNTS {
                setup.put(&t, &a.to_be_bytes(), INITIAL.to_string().as_bytes()).unwrap();
            }
            setup.commit().unwrap();
            let h = |x: u64| {
                let mut z = x.wrapping_add(seed).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                z = (z ^ (z >> 29)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z ^ (z >> 32)
            };
            for i in 0..transfers {
                if i % ckpt_every == 0 {
                    db.checkpoint().unwrap();
                }
                let from = h(i * 2) % ACCOUNTS;
                let to = (from + 1 + h(i * 2 + 1) % (ACCOUNTS - 1)) % ACCOUNTS;
                let amount = (h(i * 3) % 40) as i64;
                let mut txn = db.begin();
                let get = |txn: &mut serializable_si::Transaction, a: u64| -> i64 {
                    String::from_utf8(txn.get(&t, &a.to_be_bytes()).unwrap().unwrap().to_vec())
                        .unwrap().parse().unwrap()
                };
                let from_balance = get(&mut txn, from);
                let to_balance = get(&mut txn, to);
                txn.put(&t, &from.to_be_bytes(), (from_balance - amount).to_string().as_bytes()).unwrap();
                txn.put(&t, &to.to_be_bytes(), (to_balance + amount).to_string().as_bytes()).unwrap();
                txn.commit().unwrap();
            }
            prop_assert!(
                db.transaction_manager().stats().purge_runs.load(Ordering::Relaxed) > 0,
                "the commit cadence must have purged during the history"
            );
        }

        // Crash: cut the tail segment at an arbitrary byte. Pre-cut
        // segments and the newest snapshot stay intact, as after a real
        // crash (they were fsynced by the checkpoints).
        let segments = wal_segments(&dir);
        if let Some(last) = segments.last() {
            let full = std::fs::read(last).unwrap();
            let cut = (full.len() as u64 * cut_permille / 1000) as usize;
            std::fs::write(last, &full[..cut]).unwrap();
        }

        let db = open(&dir, Durability::GroupCommit);
        let first = account_sum(&db);
        let replayed = db.recovery_info().unwrap().txns_replayed;
        let (accounts, sum) = first.expect("the first checkpoint covers the setup transaction");
        prop_assert_eq!(accounts, ACCOUNTS);
        prop_assert_eq!(sum, ACCOUNTS as i64 * INITIAL,
            "crash cut with checkpoints + purge broke the transfer invariant");
        drop(db);

        // Idempotence: recovering the already-truncated directory again
        // agrees exactly.
        let db = open(&dir, Durability::GroupCommit);
        prop_assert_eq!(db.recovery_info().unwrap().txns_replayed, replayed);
        prop_assert_eq!(account_sum(&db), Some((ACCOUNTS, ACCOUNTS as i64 * INITIAL)));
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Reads the single string field out of a row written by [`person`].
fn person_name(value: &[u8]) -> String {
    ValueReader::new(value).str()
}

fn person(name: &str) -> Vec<u8> {
    ValueWriter::new().str(name).build()
}

/// Asserts that the secondary index and the table agree exactly: an
/// unbounded index scan surfaces every visible row once (keyed by the name
/// extracted from its *current* value), and a point lookup of each row's
/// name finds the row. Returns the scan for cross-recovery comparison.
fn check_index_matches_table(db: &Database) -> Vec<(Vec<u8>, Vec<u8>)> {
    let table = db.table("people").unwrap();
    let index = db.index("people_by_name").unwrap();
    let mut txn = db.begin_read_only();
    let rows: BTreeMap<Vec<u8>, Vec<u8>> = txn
        .scan(&table, Bound::Unbounded, Bound::Unbounded)
        .unwrap()
        .into_iter()
        .map(|(k, v)| (k, v.to_vec()))
        .collect();
    let through_index: Vec<(Vec<u8>, Vec<u8>)> = txn
        .index_scan(&index, Bound::Unbounded, Bound::Unbounded)
        .unwrap()
        .into_iter()
        .map(|(k, v)| (k, v.to_vec()))
        .collect();
    assert_eq!(
        through_index.len(),
        rows.len(),
        "index scan and table scan disagree on cardinality"
    );
    let mut via_index: Vec<(Vec<u8>, Vec<u8>)> = through_index.clone();
    via_index.sort();
    let mut via_table: Vec<(Vec<u8>, Vec<u8>)> =
        rows.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
    via_table.sort();
    assert_eq!(
        via_index, via_table,
        "index surfaces different rows than the table"
    );
    for (pk, value) in &rows {
        let name = person_name(value);
        let hits = txn
            .index_lookup(&index, &KeyBuilder::new().str(&name).build())
            .unwrap();
        assert!(
            hits.iter().any(|(k, _)| k == pk),
            "row {pk:?} not reachable through its name {name:?}"
        );
    }
    txn.commit().unwrap();
    through_index
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Secondary indexes are rebuilt on recovery — from the replayed log
    /// records and, when checkpoints ran, from the snapshot backfill plus
    /// the re-logged create-index records — never logged entry-by-entry.
    /// A deterministic history of inserts, renames (entry moves) and
    /// deletes is crash-cut at an arbitrary byte of the tail segment: the
    /// recovered index must agree *exactly* with the recovered chains, and
    /// a second recovery must agree with the first.
    fn recovery_rebuilds_secondary_index_at_any_cut(
        (txns, ckpt_every, cut_permille, seed) in (3u64..14, 0u64..5, 0u64..=1000, 0u64..500)
    ) {
        let dir = temp_dir("index-rebuild");
        {
            let db = open(&dir, Durability::GroupCommit);
            let table = db.create_table("people").unwrap();
            let _ = db
                .create_index(
                    "people_by_name",
                    &table,
                    false,
                    IndexKeySpec {
                        layout: vec![FieldKind::Str],
                        parts: vec![IndexKeyPart::ValueField(0)],
                    },
                )
                .unwrap();
            let h = |x: u64| {
                let mut z = x.wrapping_add(seed).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                z = (z ^ (z >> 29)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z ^ (z >> 32)
            };
            for i in 0..txns {
                if ckpt_every > 0 && i % ckpt_every == 0 {
                    db.checkpoint().unwrap();
                }
                let mut txn = db.begin();
                for op in 0..1 + h(i) % 3 {
                    let pk = (h(i * 7 + op) % 10).to_be_bytes();
                    if h(i * 13 + op) % 4 == 0 {
                        txn.delete(&table, &pk).unwrap();
                    } else {
                        // Renames move the row's index entry; the stale one
                        // must never resurface after recovery.
                        let name = format!("name-{}", h(i * 17 + op) % 5);
                        txn.put(&table, &pk, &person(&name)).unwrap();
                    }
                }
                txn.commit().unwrap();
            }
        }

        // Crash: cut the tail segment at an arbitrary byte.
        let segments = wal_segments(&dir);
        if let Some(last) = segments.last() {
            let full = std::fs::read(last).unwrap();
            let cut = (full.len() as u64 * cut_permille / 1000) as usize;
            std::fs::write(last, &full[..cut]).unwrap();
        }

        let db = open(&dir, Durability::GroupCommit);
        let replayed = db.recovery_info().unwrap().txns_replayed;
        if db.index("people_by_name").is_err() {
            // The cut landed before the create-index record: no transaction
            // of the history can have replayed either.
            prop_assert_eq!(replayed, 0, "rows replayed without their index");
        } else {
            let first = check_index_matches_table(&db);
            drop(db);

            // Idempotence: a second recovery rebuilds the same index.
            let db = open(&dir, Durability::GroupCommit);
            prop_assert_eq!(db.recovery_info().unwrap().txns_replayed, replayed);
            let second = check_index_matches_table(&db);
            prop_assert_eq!(first, second, "re-recovery rebuilt a different index");

            // And the rebuilt index keeps working: a fresh claim through
            // the recovered maintenance path is immediately visible.
            let table = db.table("people").unwrap();
            let index = db.index("people_by_name").unwrap();
            let mut txn = db.begin();
            txn.put(&table, b"fresh", &person("post-recovery")).unwrap();
            txn.commit().unwrap();
            let mut check = db.begin_read_only();
            let hits = check
                .index_lookup(&index, &KeyBuilder::new().str("post-recovery").build())
                .unwrap();
            prop_assert_eq!(hits.len(), 1, "post-recovery write not indexed");
            check.commit().unwrap();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Crash net for the maintenance hub: transfer writers run with the
    /// dedicated flusher and the background GC thread mid-flight while a
    /// *live* copy of the durable directory is taken (the crash image),
    /// which is then cut at an arbitrary byte. The recovered state must be
    /// a whole-transaction prefix (the SmallBank sum holds), must contain
    /// every commit the flusher had acknowledged before the copy began
    /// (per-writer monotone counters, written in the same transaction as
    /// the transfer, prove none was lost), and a second recovery agrees.
    fn live_crash_cut_under_background_maintenance_loses_no_acked_commit(
        (copy_delay_ms, cut_permille, seed) in (0u64..25, 0u64..=1000, 0u64..500)
    ) {
        const ACCOUNTS: u64 = 8;
        const INITIAL: i64 = 100;
        const WRITERS: u64 = 3;
        let dir = temp_dir("live-cut");
        let acked: Vec<AtomicU64> = (0..WRITERS).map(|_| AtomicU64::new(0)).collect();
        let acked_at_copy: Vec<u64>;
        {
            let options = Options::default()
                .with_durability(Durability::GroupCommit, &dir)
                .with_background_flusher(std::time::Duration::from_millis(1))
                .with_background_gc(std::time::Duration::from_millis(1));
            let db = Database::open(options);
            let t = db.create_table("accounts").unwrap();
            let counters = db.create_table("counters").unwrap();
            let mut setup = db.begin();
            for a in 0..ACCOUNTS {
                setup.put(&t, &a.to_be_bytes(), INITIAL.to_string().as_bytes()).unwrap();
            }
            setup.commit().unwrap();

            let mut copy = None;
            std::thread::scope(|s| {
                let mut writers = Vec::new();
                for w in 0..WRITERS {
                    let db = db.clone();
                    let t = t.clone();
                    let counters = counters.clone();
                    let acked = &acked;
                    writers.push(s.spawn(move || {
                        for i in 1..=30u64 {
                            let h = (seed ^ (w * 1_000_003 + i))
                                .wrapping_mul(0x9e37_79b9_7f4a_7c15);
                            let from = h % ACCOUNTS;
                            let to = (from + 1 + (h >> 8) % (ACCOUNTS - 1)) % ACCOUNTS;
                            let amount = ((h >> 16) % 40) as i64;
                            let mut txn = db.begin();
                            let transfer = (|| -> serializable_si::Result<()> {
                                let get = |txn: &mut serializable_si::Transaction,
                                           a: u64|
                                 -> serializable_si::Result<i64> {
                                    Ok(String::from_utf8(
                                        txn.get(&t, &a.to_be_bytes())?.unwrap().to_vec(),
                                    )
                                    .unwrap()
                                    .parse()
                                    .unwrap())
                                };
                                let from_balance = get(&mut txn, from)?;
                                let to_balance = get(&mut txn, to)?;
                                txn.put(&t, &from.to_be_bytes(),
                                    (from_balance - amount).to_string().as_bytes())?;
                                txn.put(&t, &to.to_be_bytes(),
                                    (to_balance + amount).to_string().as_bytes())?;
                                // Same transaction: replays iff the transfer does.
                                txn.put(&counters, &w.to_be_bytes(), &i.to_be_bytes())?;
                                txn.commit()
                            })();
                            match transfer {
                                // `commit` returning Ok in group-commit mode
                                // means the flusher's fsync covered it: only
                                // then is the attempt index published as acked.
                                Ok(()) => acked[w as usize].store(i, Ordering::Release),
                                Err(e) if e.is_retryable() => {}
                                Err(e) => panic!("unexpected error: {e}"),
                            }
                        }
                    }));
                }
                std::thread::sleep(std::time::Duration::from_millis(copy_delay_ms));
                // Snapshot the acked indices *before* the copy starts: every
                // one of these commits was durable before any byte is read.
                let snapshot: Vec<u64> =
                    acked.iter().map(|a| a.load(Ordering::Acquire)).collect();
                copy = Some((snapshot, live_crash_copy(&dir, "live-cut-img")));
                for w in writers {
                    w.join().unwrap();
                }
            });
            let (snapshot, image) = copy.unwrap();
            acked_at_copy = snapshot;
            drop(db);
            let _ = std::fs::remove_dir_all(&dir);

            // Cut the live image's tail segment at an arbitrary byte on top
            // of whatever tear the copy itself caught.
            let segments = wal_segments(&image);
            prop_assert_eq!(segments.len(), 1, "no checkpoints: a single segment");
            let full = std::fs::read(&segments[0]).unwrap();
            let cut = (full.len() as u64 * cut_permille / 1000) as usize;
            std::fs::write(&segments[0], &full[..cut]).unwrap();

            let db = open(&image, Durability::GroupCommit);
            let replayed = db.recovery_info().unwrap().txns_replayed;
            let state = dump(&db);
            if let Some(accounts) = state.get("accounts").filter(|s| !s.is_empty()) {
                prop_assert_eq!(accounts.len() as u64, ACCOUNTS);
                let sum: i64 = accounts.values()
                    .map(|v| String::from_utf8(v.clone()).unwrap().parse::<i64>().unwrap())
                    .sum();
                prop_assert_eq!(sum, ACCOUNTS as i64 * INITIAL,
                    "live crash cut broke the transfer invariant");
            } else {
                // Recovery landed before the setup transaction: nothing —
                // in particular no acked transfer — may exist.
                prop_assert!(acked_at_copy.iter().all(|&n| n == 0) || cut_permille < 1000,
                    "acked transfers existed but the setup commit is gone");
            }
            // Cutting at 100% of the live image keeps every commit acked
            // before the copy began: the recovered per-writer counter must
            // have reached the snapshot index.
            if cut_permille == 1000 {
                let empty = BTreeMap::new();
                let recovered_counters = state.get("counters").unwrap_or(&empty);
                for (w, &need) in acked_at_copy.iter().enumerate() {
                    if need == 0 {
                        continue;
                    }
                    let got = recovered_counters
                        .get(&(w as u64).to_be_bytes()[..].to_vec())
                        .map(|v| u64::from_be_bytes(v[..8].try_into().unwrap()))
                        .unwrap_or(0);
                    prop_assert!(got >= need,
                        "writer {w}: acked commit {need} lost (recovered counter {got})");
                }
            }
            drop(db);

            // Idempotence: a second recovery of the cut image agrees.
            let db = open(&image, Durability::GroupCommit);
            prop_assert_eq!(db.recovery_info().unwrap().txns_replayed, replayed);
            drop(db);
            let _ = std::fs::remove_dir_all(&image);
        }
    }
}
