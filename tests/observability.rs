//! Integration tests for the engine-wide observability surface:
//! `Database::metrics()` snapshot consistency under concurrent load,
//! clean-path zero preservation, trace-ring overflow accounting, and the
//! Prometheus text exposition.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use ssi_core::{AbortReason, Database, EventKind, IsolationLevel, Options};

/// Under an 8-thread contended SSI workload, every snapshot taken while
/// the load runs must be internally consistent: counters only move
/// forward between snapshots, `committed + aborted <= started` (the
/// difference is in-flight transactions), and the per-reason abort
/// provenance sums exactly to the abort counter.
#[test]
fn snapshot_consistency_under_load() {
    let db = Database::open(
        Options::default().with_isolation(IsolationLevel::SerializableSnapshotIsolation),
    );
    let table = db.create_table("hot").unwrap();
    let mut setup = db.begin();
    for k in 0u64..64 {
        setup.put(&table, &k.to_be_bytes(), &[0u8; 16]).unwrap();
    }
    setup.commit().unwrap();

    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        for t in 0u64..8 {
            let db = db.clone();
            let table = table.clone();
            let stop = &stop;
            s.spawn(move || {
                let mut n = t;
                while !stop.load(Ordering::Relaxed) {
                    // Read two hot keys, overwrite a third: enough rw
                    // overlap to produce pivot and write-conflict aborts.
                    let mut txn = db.begin();
                    let r = (|| {
                        txn.get(&table, &(n % 64).to_be_bytes())?;
                        txn.get(&table, &((n + 7) % 64).to_be_bytes())?;
                        txn.put(&table, &((n * 13) % 64).to_be_bytes(), &[1u8; 16])?;
                        txn.commit()
                    })();
                    // Aborts are the point of the workload; any abort
                    // must carry provenance.
                    if let Err(e) = r {
                        assert!(e.abort_reason().is_some(), "abort without reason: {e}");
                    }
                    n += 1;
                }
            });
        }

        let mut prev = db.metrics();
        for _ in 0..20 {
            std::thread::sleep(Duration::from_millis(5));
            let snap = db.metrics();
            // Monotone counters.
            assert!(snap.txn.started >= prev.txn.started);
            assert!(snap.txn.committed >= prev.txn.committed);
            assert!(snap.txn.aborted >= prev.txn.aborted);
            for i in 0..snap.txn.abort_reasons.len() {
                assert!(snap.txn.abort_reasons[i] >= prev.txn.abort_reasons[i]);
            }
            // Outcomes never exceed starts (the gap is in-flight txns).
            assert!(
                snap.txn.committed + snap.txn.aborted <= snap.txn.started,
                "committed {} + aborted {} > started {}",
                snap.txn.committed,
                snap.txn.aborted,
                snap.txn.started
            );
            // Provenance is complete: per-reason aborts sum to the
            // aborted counter. Both values come from the same snapshot
            // pass but not one atomic read, so allow the reason sum to
            // lead or trail by in-flight aborts between the two loads —
            // it must catch up once the load stops (checked below).
            let by_reason: u64 = snap.txn.abort_reasons.iter().sum();
            let lo = snap.txn.aborted.min(by_reason);
            let hi = snap.txn.aborted.max(by_reason);
            assert!(
                hi - lo <= 64,
                "reason sum {by_reason} diverged from aborted {}",
                snap.txn.aborted
            );
            prev = snap;
        }
        stop.store(true, Ordering::Relaxed);
    });

    // Quiesced: provenance must account for every abort exactly.
    let snap = db.metrics();
    let by_reason: u64 = snap.txn.abort_reasons.iter().sum();
    assert_eq!(by_reason, snap.txn.aborted);
    assert_eq!(snap.txn.committed + snap.txn.aborted, snap.txn.started);
    assert!(snap.txn.committed > 0, "workload made no progress");
    assert_eq!(snap.health, "healthy");
    // Only SSI-plausible reasons fired: no deadlocks or lock timeouts in
    // a lock-free-read workload, no degraded-mode rejections.
    for reason in [
        AbortReason::LockTimeout,
        AbortReason::DegradedRejected,
        AbortReason::UserRollback,
    ] {
        assert_eq!(snap.txn.abort_reasons[reason.index()], 0, "{reason} fired");
    }
}

/// A database that only ever commits cleanly reports zero aborts, zero
/// abort reasons, zero lock deadlocks, zero GC activity and zero WAL
/// counters — instrumentation must not invent activity.
#[test]
fn clean_path_preserves_zeros() {
    let db = Database::open(Options::default());
    let table = db.create_table("t").unwrap();
    for k in 0u64..32 {
        let mut txn = db.begin();
        txn.put(&table, &k.to_be_bytes(), b"v").unwrap();
        txn.commit().unwrap();
    }
    let snap = db.metrics();
    assert_eq!(snap.txn.started, 32);
    assert_eq!(snap.txn.committed, 32);
    assert_eq!(snap.txn.aborted, 0);
    assert_eq!(snap.txn.abort_reasons, [0; AbortReason::COUNT]);
    assert_eq!(snap.txn.dependency_cascade_aborts, 0);
    assert_eq!(snap.locks.deadlocks, 0);
    assert_eq!(snap.locks.timeouts, 0);
    assert_eq!(snap.gc.purge_runs, 0);
    assert_eq!(snap.gc.purged_versions, 0);
    assert!(!snap.wal.enabled);
    assert_eq!(snap.wal.records, 0);
    assert_eq!(snap.wal.fsyncs, 0);
    assert!(!snap.trace_enabled);
    assert_eq!(snap.trace_dropped, 0);
    assert_eq!(snap.health, "healthy");
    let table_metrics = &snap.tables[0];
    assert_eq!(table_metrics.name, "t");
    assert_eq!(table_metrics.keys, 32);
}

/// With tracing enabled at a small capacity, overflow keeps the newest
/// events, counts every dropped one, and draining resets the ring.
#[test]
fn trace_ring_overflow_drops_oldest_and_counts() {
    let capacity = 64;
    let db = Database::open(Options::default().with_tracing(capacity));
    let table = db.create_table("t").unwrap();
    // Each commit emits at least TxnBegin + TxnCommit: 256 transactions
    // overflow a 64-slot ring many times over.
    for k in 0u64..256 {
        let mut txn = db.begin();
        txn.put(&table, &k.to_be_bytes(), b"v").unwrap();
        txn.commit().unwrap();
    }
    let snap = db.metrics();
    assert!(snap.trace_enabled);
    assert!(snap.trace_dropped > 0, "overflow must be counted");

    let batch = db.drain_trace().expect("tracing is enabled");
    assert!(batch.events.len() <= capacity);
    assert!(!batch.events.is_empty());
    assert_eq!(batch.dropped, snap.trace_dropped);
    // Oldest events were dropped: everything retained is from the tail
    // of the run. The last commit (key 255) must still be present, the
    // first (key 0) long gone.
    let commit_ts: Vec<u64> = batch
        .events
        .iter()
        .filter(|e| e.kind == EventKind::TxnCommit)
        .map(|e| e.a)
        .collect();
    assert!(!commit_ts.is_empty());
    let started = db.metrics().txn.started;
    assert!(
        commit_ts.iter().all(|&txn_id| txn_id > started / 2),
        "retained commits should be recent: {commit_ts:?}"
    );
    // Timestamps come out sorted.
    assert!(batch.events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    // Drain resets: an immediately following drain is empty with a
    // fresh drop counter.
    let empty = db.drain_trace().unwrap();
    assert!(empty.events.is_empty());
    assert_eq!(empty.dropped, 0);
    assert_eq!(db.metrics().trace_dropped, 0);

    // JSONL rendering: one line per event, each a JSON object.
    let jsonl = batch.to_jsonl();
    assert_eq!(jsonl.lines().count(), batch.events.len());
    assert!(jsonl
        .lines()
        .all(|l| l.starts_with("{\"ts_ns\":") && l.ends_with('}')));
}

/// Golden test for the Prometheus exposition of a live snapshot: every
/// metric family the module documents is present, well-formed and
/// consistent with the snapshot's own numbers.
#[test]
fn render_text_golden() {
    let db = Database::open(Options::default());
    let table = db.create_table("gold").unwrap();
    let mut txn = db.begin();
    txn.put(&table, b"k", b"v").unwrap();
    txn.commit().unwrap();

    let snap = db.metrics();
    let text = snap.render_text();

    // Exact golden lines (counters whose values this scenario pins).
    for line in [
        format!("ssi_txn_started_total {}", snap.txn.started).as_str(),
        format!("ssi_txn_committed_total {}", snap.txn.committed).as_str(),
        "ssi_txn_aborted_total 0",
        "ssi_txn_aborts_by_reason_total{reason=\"write-conflict\"} 0",
        "ssi_txn_aborts_by_reason_total{reason=\"pivot-out\"} 0",
        "ssi_txn_aborts_by_reason_total{reason=\"user-rollback\"} 0",
        "ssi_gc_purge_runs_total 0",
        "ssi_wal_enabled 0",
        "ssi_wal_fsyncs_total 0",
        "ssi_lock_deadlocks_total 0",
        "ssi_table_keys{table=\"gold\"} 1",
        "ssi_table_versions{table=\"gold\"} 1",
        "ssi_health_info{state=\"healthy\"} 1",
        "ssi_trace_enabled 0",
        "ssi_trace_dropped_total 0",
    ] {
        assert!(
            text.contains(line),
            "missing golden line: {line}\n---\n{text}"
        );
    }
    // Every reason label appears exactly once.
    for reason in AbortReason::ALL {
        let needle = format!("reason=\"{}\"", reason.label());
        assert_eq!(text.matches(&needle).count(), 1, "{needle}");
    }
    // Every latency family exposes the full summary shape.
    for op in [
        "commit",
        "commit_section",
        "read",
        "scan",
        "fsync",
        "checkpoint",
        "gc_pass",
    ] {
        for suffix in [
            "{quantile=\"0.5\"}",
            "{quantile=\"0.99\"}",
            "{quantile=\"0.999\"}",
            "_max",
            "_mean",
            "_count",
            "_sample_every",
        ] {
            let needle = format!("ssi_latency_{op}_ns{suffix}");
            assert!(text.contains(&needle), "missing {needle}");
        }
    }
    // Well-formed exposition: every non-comment line is `name[{labels}] value`.
    for line in text.lines() {
        if line.starts_with('#') {
            assert!(line.starts_with("# TYPE ssi_"), "bad comment: {line}");
            continue;
        }
        let (name, value) = line.rsplit_once(' ').expect("name value");
        assert!(name.starts_with("ssi_"), "bad metric name: {line}");
        assert!(value.parse::<u64>().is_ok(), "non-numeric value: {line}");
    }
}
