//! Sharded ordered multi-version tables.
//!
//! A table maps byte-string keys to *version chains* (newest first). The
//! table itself performs no concurrency control beyond keeping its own data
//! structures consistent: deciding who may write, when a write must abort and
//! what a reader is allowed to see is the job of `ssi-core`. The table does
//! provide the visibility primitives that the paper's algorithm needs:
//!
//! * reading returns not only the visible version but also the creators of
//!   any *newer* versions (the "version that it reads … is not the most
//!   recent version" signal of Fig. 3.4);
//! * the newest committed timestamp of a key, which implements the
//!   first-committer-wins check;
//! * ordered key access (`next_key_at_or_after`) used for next-key / gap
//!   locking against phantoms (Sec. 3.5).
//!
//! # Architecture: two-level sharded layout
//!
//! Earlier revisions stored every row behind one table-wide
//! `RwLock<BTreeMap<…>>`, so all point reads, writes and rollbacks on a
//! table serialized on a single lock. The table is now split in two levels:
//!
//! * a **sharded hash index** (`SHARD_COUNT` shards, FxHash from
//!   `ssi_lock`): each shard is a small `RwLock<HashMap<key, Arc<RowChain>>>`
//!   mapping a key to its version chain. Point operations touch exactly one
//!   shard;
//! * a **side ordered index** (`RwLock<BTreeMap<key, Arc<RowChain>>>`)
//!   holding the same `Arc<RowChain>` entries, used only by range scans and
//!   the next-key queries that gap locking needs.
//!
//! Each [`RowChain`] owns its version list behind its own `parking_lot`
//! mutex, so two operations contend only when they touch the *same key*.
//! Commit stamping ([`Version::mark_committed`]) is an atomic store on the
//! version itself and takes no table lock at all.
//!
//! ## Locking protocol
//!
//! Lock order is **shard → chain** and **shard → ordered index**, and the
//! chain mutex is never held while acquiring the ordered-index lock (scans
//! take *index → chain*, so holding a chain while waiting on the index
//! could deadlock). The invariants:
//!
//! * a chain present in either map is the unique chain for its key; both
//!   maps always agree (they are updated while holding the shard write
//!   lock, which is the insert/remove serialization point for a key);
//! * versions are only appended (at the head) while holding the shard
//!   **read** lock plus the chain mutex — so a shard **write** lock alone
//!   is enough to freeze a chain's membership for removal decisions;
//! * an empty chain is dead: it is never revived. Removal empties the
//!   chain under the shard write lock (excluding installers) and unlinks
//!   it from both maps; a concurrent scan that still holds the `Arc` just
//!   observes an empty chain and skips the key.
//!
//! ## Why scans stay consistent under SSI
//!
//! A scan snapshots the range's `(key, chain)` pairs under a brief
//! ordered-index read lock, then visits each chain under its mutex. Unlike
//! the old global-lock design, a writer may install a version for a new key
//! *while* a scan is in flight. That does not weaken Serializable SI:
//! per-key visibility is still atomic (the chain mutex), uncommitted or
//! later-committed versions that the scan does observe are reported as
//! rw-conflicts via `newer_creators`, and inserts the scan misses entirely
//! are exactly the phantoms that SIREAD **gap locks** exist to catch — the
//! writer of a new key must acquire the gap lock covering it, where it
//! meets the scan's gap SIREAD locks in the lock manager regardless of the
//! storage-level interleaving.
//!
//! ## Secondary index maintenance
//!
//! Tables carry a (usually empty) list of registered secondary indexes
//! ([`crate::index::Index`]). Index entries are refcounted by *chain
//! residency*, never by commit state: [`Table::install_version`] adds one
//! entry reference for the new version's extracted key,
//! [`Table::unlink_version`] and version GC release one reference per
//! version they physically remove. Every add/release happens under the
//! version's shard lock (the same critical section that changes chain
//! membership), and [`Table::register_index`] backfills a new index while
//! holding **every** shard write lock — so the refcount invariant ("one
//! reference per resident version extracting to the entry") can never be
//! double-counted or skipped by a concurrent install, rollback or purge.
//! Superseded entries linger until GC reclaims the versions that claim
//! them; readers re-extract from the row version their snapshot actually
//! sees and filter stale entries (see the `crate::index` module docs).

use std::collections::{BTreeMap, HashMap};
use std::hash::BuildHasher;
use std::ops::Bound;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use ssi_common::{Bytes, InlineVec, TableId, Timestamp, TxnId};
use ssi_lock::FxBuildHasher;

use crate::index::Index;
use crate::version::{Version, VersionState};

/// Number of hash shards per table. Power of two so the shard selector is a
/// mask; 64 matches the lock manager's sharding and is comfortably above
/// typical core counts. Public so incremental maintenance (per-shard purge
/// cursors in `ssi-core`) can walk the shard space.
pub const SHARD_COUNT: usize = 64;

/// Keys fetched per ordered-index lock acquisition by the paging scan
/// cursor: large enough that per-page overhead is negligible, small enough
/// that a scan never pins the index (or a page of chain handles) for long.
pub const SCAN_PAGE_SIZE: usize = 128;

/// Inline capacity of [`VisibleRead::newer_creators`]: nearly all reads see
/// zero or one concurrent writer, so four inline slots make allocation on
/// the read path effectively impossible.
const NEWER_INLINE: usize = 4;

/// Creators of versions newer than the one a read observed, stored inline.
pub type NewerCreators = InlineVec<TxnId, NEWER_INLINE>;

/// Result of a snapshot read of one key.
#[derive(Clone, Debug, Default)]
pub struct VisibleRead {
    /// The visible value, if any (and not a tombstone). A refcounted handle
    /// to the version's payload — cloning it never copies the bytes.
    pub value: Option<Bytes>,
    /// Creators of versions newer than the version that was read (both
    /// uncommitted ones and ones committed after the reader's snapshot).
    /// Each is a potential rw-antidependency for Serializable SI.
    pub newer_creators: NewerCreators,
    /// Commit timestamp of the newest committed version of the key,
    /// regardless of snapshot; used for the first-committer-wins check.
    pub newest_committed_ts: Option<Timestamp>,
    /// True if the key has at least one (non-aborted) version at all.
    pub key_exists: bool,
    /// Commit timestamp of the version that was read (`None` when nothing
    /// was visible or when the reader saw its own uncommitted write). Used
    /// by the history recorder / serializability verifier.
    pub read_version_ts: Option<Timestamp>,
    /// True if the read was satisfied by the reader's own uncommitted write;
    /// such reads impose no inter-transaction ordering constraints.
    pub read_own_write: bool,
    /// Creator of the version the read observed when that version was
    /// *provisionally* stamped (creator still committing) at or below the
    /// reader's snapshot. The value was taken speculatively: the engine
    /// must register a commit dependency on this transaction (and retry the
    /// read if it turns out to have aborted) before using the value.
    pub speculative_of: Option<TxnId>,
}

/// One row produced by a snapshot range scan.
#[derive(Clone, Debug)]
pub struct ScanEntry {
    /// The row key.
    pub key: Vec<u8>,
    /// Visible value (`None` when the visible version is a tombstone or no
    /// version is visible to the snapshot). Entries with `None` are still
    /// reported so the caller can register conflicts for them.
    pub value: Option<Bytes>,
    /// Creators of versions newer than the visible one (see
    /// [`VisibleRead::newer_creators`]).
    pub newer_creators: NewerCreators,
    /// Commit timestamp of the version that was read (see
    /// [`VisibleRead::read_version_ts`]).
    pub read_version_ts: Option<Timestamp>,
    /// True if the visible version was the reader's own uncommitted write
    /// (see [`VisibleRead::read_own_write`]).
    pub read_own_write: bool,
    /// Creator to register a commit dependency with when the entry's value
    /// was taken speculatively (see [`VisibleRead::speculative_of`]).
    pub speculative_of: Option<TxnId>,
}

/// What one garbage-collection pass reclaimed (see
/// [`Table::purge_old_versions`]). Aggregates with [`PurgeStats::merge`], so
/// a catalog-wide purge reports one combined figure.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PurgeStats {
    /// Horizon the purge ran at: every version kept is reachable from some
    /// snapshot at or above this timestamp.
    pub horizon: Timestamp,
    /// Versions reclaimed (unreachable committed versions plus aborted
    /// leftovers).
    pub versions: u64,
    /// Whole key chains removed (keys whose only reachable version was a
    /// committed tombstone at or below the horizon).
    pub chains: u64,
}

impl PurgeStats {
    /// An empty result at `horizon`.
    pub fn at(horizon: Timestamp) -> Self {
        PurgeStats {
            horizon,
            ..PurgeStats::default()
        }
    }

    /// Folds another purge result in (sums counters, keeps the highest
    /// horizon).
    pub fn merge(&mut self, other: &PurgeStats) {
        self.horizon = self.horizon.max(other.horizon);
        self.versions += other.versions;
        self.chains += other.chains;
    }
}

/// One page of a paged range scan (see [`Table::scan_page`]).
#[derive(Debug)]
pub struct ScanPage {
    /// Entries of this page, in key order.
    pub entries: Vec<ScanEntry>,
    /// Resume the scan with `Bound::Excluded` of this key; `None` when the
    /// range is exhausted.
    pub resume_after: Option<Vec<u8>>,
}

/// Streaming handle over a paged range scan (see [`Table::cursor`]).
pub struct ScanCursor<'t> {
    table: &'t Table,
    /// Lower bound of the next page to fetch; `None` once exhausted.
    lower: Option<Bound<Vec<u8>>>,
    upper: Bound<Vec<u8>>,
    reader: TxnId,
    snapshot_ts: Timestamp,
    page_size: usize,
    page: std::vec::IntoIter<ScanEntry>,
}

impl ScanCursor<'_> {
    /// Overrides the page size (keys fetched per index-lock acquisition);
    /// exposed for tests and tuning.
    pub fn with_page_size(mut self, page_size: usize) -> Self {
        assert!(page_size > 0, "scan page size must be positive");
        self.page_size = page_size;
        self
    }
}

impl Iterator for ScanCursor<'_> {
    type Item = ScanEntry;

    fn next(&mut self) -> Option<ScanEntry> {
        loop {
            if let Some(entry) = self.page.next() {
                return Some(entry);
            }
            // A page can be empty while the range continues (every chain in
            // it emptied concurrently), so keep fetching until an entry or
            // proven exhaustion shows up.
            let lower = self.lower.take()?;
            let page = self.table.scan_page(
                as_ref_bound(&lower),
                as_ref_bound(&self.upper),
                self.reader,
                self.snapshot_ts,
                self.page_size,
            );
            self.lower = page.resume_after.map(Bound::Excluded);
            self.page = page.entries.into_iter();
        }
    }
}

/// Clones a borrowed key bound into an owned one (shared plumbing for the
/// cursor and for engine-level range code).
pub fn clone_bound(b: Bound<&[u8]>) -> Bound<Vec<u8>> {
    match b {
        Bound::Included(k) => Bound::Included(k.to_vec()),
        Bound::Excluded(k) => Bound::Excluded(k.to_vec()),
        Bound::Unbounded => Bound::Unbounded,
    }
}

/// Borrows an owned key bound as a slice bound.
pub fn as_ref_bound(b: &Bound<Vec<u8>>) -> Bound<&[u8]> {
    match b {
        Bound::Included(k) => Bound::Included(k.as_slice()),
        Bound::Excluded(k) => Bound::Excluded(k.as_slice()),
        Bound::Unbounded => Bound::Unbounded,
    }
}

/// The version chain of one key, newest first, behind its own lock.
struct RowChain {
    versions: Mutex<Vec<Arc<Version>>>,
}

impl RowChain {
    fn with_version(version: Arc<Version>) -> Arc<Self> {
        Arc::new(RowChain {
            versions: Mutex::new(vec![version]),
        })
    }
}

impl RowChain {
    /// Single traversal computing every [`VisibleRead`] field — the union
    /// of the old `read_chain` + `newest_committed_in` + `key_exists`
    /// walks, computed in one pass. The chain is newest-first, so the
    /// first visible version is the snapshot answer; versions before it
    /// are the "newer" set and the newest committed timestamp is the
    /// maximum over all committed versions.
    fn read_all(&self, reader: TxnId, snapshot_ts: Timestamp) -> VisibleRead {
        let versions = self.versions.lock();
        let mut out = VisibleRead::default();
        let mut found_visible = false;
        for v in versions.iter() {
            let state = v.state();
            if state == VersionState::Aborted {
                continue;
            }
            out.key_exists = true;
            if let VersionState::Committed(ts) = state {
                if out.newest_committed_ts.is_none_or(|best| ts > best) {
                    out.newest_committed_ts = Some(ts);
                }
            }
            if !found_visible {
                if v.visible_to(reader, snapshot_ts) {
                    found_visible = true;
                    out.value = v.value_handle();
                    out.read_version_ts = v.commit_ts();
                    out.read_own_write = v.creator() == reader;
                } else if let VersionState::Provisional(ts) = state {
                    if ts <= snapshot_ts {
                        // Provisionally stamped at or below the snapshot:
                        // the creator allocated its timestamp and published
                        // it, but its final commit step is still pending.
                        // Take the value speculatively and report the
                        // creator so the engine can register a commit
                        // dependency (or retry if the creator aborted).
                        found_visible = true;
                        out.value = v.value_handle();
                        out.read_version_ts = Some(ts);
                        out.speculative_of = Some(v.creator());
                    } else {
                        out.newer_creators.push(v.creator());
                    }
                } else {
                    // Not visible: newer than whatever will be read.
                    out.newer_creators.push(v.creator());
                }
            }
        }
        out
    }

    /// Latest committed value, or the reader's own uncommitted write.
    fn read_latest_committed(&self, reader: TxnId) -> Option<Bytes> {
        let versions = self.versions.lock();
        for v in versions.iter() {
            if v.visible_to_read_committed(reader) {
                return v.value_handle();
            }
        }
        None
    }

    fn newest_committed_ts(&self) -> Option<Timestamp> {
        let versions = self.versions.lock();
        versions.iter().filter_map(|v| v.commit_ts()).max()
    }

    fn has_live_version(&self) -> bool {
        let versions = self.versions.lock();
        versions.iter().any(|v| v.state() != VersionState::Aborted)
    }
}

/// One hash shard of a table.
#[derive(Default)]
struct Shard {
    rows: RwLock<HashMap<Arc<[u8]>, Arc<RowChain>, FxBuildHasher>>,
}

/// A sharded, ordered multi-version table. See the module docs for the
/// layout and locking protocol.
pub struct Table {
    id: TableId,
    name: String,
    shards: Box<[Shard]>,
    /// Ordered side index over the same chains, for scans and next-key
    /// queries only. Point operations on existing keys never touch it.
    ordered: RwLock<BTreeMap<Arc<[u8]>, Arc<RowChain>>>,
    /// Registered secondary indexes, maintained by the membership hooks
    /// (see the module docs). Lock order is always shard → this list.
    indexes: RwLock<Vec<Arc<Index>>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: TableId, name: impl Into<String>) -> Self {
        let shards = (0..SHARD_COUNT).map(|_| Shard::default()).collect();
        Table {
            id,
            name: name.into(),
            shards,
            ordered: RwLock::new(BTreeMap::new()),
            indexes: RwLock::new(Vec::new()),
        }
    }

    /// Table identifier.
    pub fn id(&self) -> TableId {
        self.id
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    #[inline]
    fn shard(&self, key: &[u8]) -> &Shard {
        &self.shards[FxBuildHasher::default().hash_one(key) as usize & (SHARD_COUNT - 1)]
    }

    /// Looks up the chain for `key` (one shard read lock).
    #[cfg(test)]
    fn chain(&self, key: &[u8]) -> Option<Arc<RowChain>> {
        self.shard(key).rows.read().get(key).cloned()
    }

    /// Number of keys with at least one version (including tombstoned keys).
    pub fn key_count(&self) -> usize {
        self.ordered.read().len()
    }

    /// Snapshot read of `key` as of `snapshot_ts` on behalf of `reader`.
    /// One shard read lock, one chain lock, one chain traversal; the value
    /// comes back as a refcount bump, never a byte copy. The traversal
    /// runs under the shard read-lock guard, so no chain handle is cloned.
    pub fn read(&self, key: &[u8], reader: TxnId, snapshot_ts: Timestamp) -> VisibleRead {
        let rows = self.shard(key).rows.read();
        match rows.get(key) {
            None => VisibleRead::default(),
            Some(chain) => chain.read_all(reader, snapshot_ts),
        }
    }

    /// Read-committed read: latest committed value (or the reader's own
    /// uncommitted write).
    pub fn read_latest_committed(&self, key: &[u8], reader: TxnId) -> Option<Bytes> {
        let rows = self.shard(key).rows.read();
        rows.get(key)?.read_latest_committed(reader)
    }

    /// Commit timestamp of the newest committed version of `key`, if any.
    pub fn newest_committed_ts(&self, key: &[u8]) -> Option<Timestamp> {
        let rows = self.shard(key).rows.read();
        rows.get(key)?.newest_committed_ts()
    }

    /// True if the key has any non-aborted version (committed or not,
    /// tombstone or not). Used to distinguish inserts from updates when
    /// deciding whether gap locks are needed.
    pub fn contains_key(&self, key: &[u8]) -> bool {
        let rows = self.shard(key).rows.read();
        rows.get(key).is_some_and(|c| c.has_live_version())
    }

    /// Installs a new uncommitted version of `key` (a value or, when `value`
    /// is `None`, a deletion tombstone) created by `creator`, and returns a
    /// handle the caller keeps in its write set for later commit stamping or
    /// rollback.
    ///
    /// Updates of existing keys take the shard **read** lock plus the chain
    /// mutex, so concurrent writers of different keys never contend; only
    /// the first write of a brand-new key takes the shard and ordered-index
    /// write locks.
    pub fn install_version(
        &self,
        key: &[u8],
        creator: TxnId,
        value: Option<Vec<u8>>,
    ) -> Arc<Version> {
        let version = Arc::new(Version::new(creator, value));
        let shard = self.shard(key);

        // Fast path: the key exists; append under the shard read lock. The
        // read lock excludes removal (which needs the write lock), so the
        // chain cannot be unlinked while we push. Index references are
        // added inside the same shard critical section, so an index
        // backfill (all shard *write* locks) observes either the version
        // and its references or neither.
        {
            let rows = shard.rows.read();
            if let Some(chain) = rows.get(key) {
                chain.versions.lock().insert(0, version.clone());
                self.add_index_refs(key, &version);
                return version;
            }
        }

        // Slow path: first version of this key. Re-check under the shard
        // write lock, then publish the chain in both maps.
        let mut rows = shard.rows.write();
        if let Some(chain) = rows.get(key) {
            chain.versions.lock().insert(0, version.clone());
            self.add_index_refs(key, &version);
            return version;
        }
        let key_arc: Arc<[u8]> = Arc::from(key);
        let chain = RowChain::with_version(version.clone());
        rows.insert(key_arc.clone(), chain.clone());
        self.ordered.write().insert(key_arc, chain);
        self.add_index_refs(key, &version);
        version
    }

    /// Adds one entry reference per registered index for a freshly
    /// installed version. Must be called while the caller still holds the
    /// version's shard lock (read or write) — see the module docs.
    fn add_index_refs(&self, key: &[u8], version: &Version) {
        let Some(value) = version.value() else { return };
        for index in self.indexes.read().iter() {
            if let Some(entry) = index.entry_of(key, value) {
                index.add_ref(&entry);
            }
        }
    }

    /// Releases one entry reference per registered index for a version that
    /// was just removed from its chain. Same locking contract as
    /// [`Table::add_index_refs`].
    fn release_index_refs(&self, key: &[u8], version: &Version) {
        let Some(value) = version.value() else { return };
        for index in self.indexes.read().iter() {
            if let Some(entry) = index.entry_of(key, value) {
                index.release_ref(&entry);
            }
        }
    }

    /// Registers a secondary index on this table, backfilling one entry
    /// reference per resident version. Takes **every** shard write lock
    /// for the duration (install/unlink/purge all hold at least a shard
    /// read lock around their membership change plus index hook), so the
    /// backfill and the registration are one atomic step: versions
    /// installed before it are counted exactly once by the backfill,
    /// versions installed after it are counted exactly once by their
    /// install hook.
    pub fn register_index(&self, index: Arc<Index>) {
        let guards: Vec<_> = self.shards.iter().map(|s| s.rows.write()).collect();
        for rows in &guards {
            for (key, chain) in rows.iter() {
                for v in chain.versions.lock().iter() {
                    if let Some(value) = v.value() {
                        if let Some(entry) = index.entry_of(key, value) {
                            index.add_ref(&entry);
                        }
                    }
                }
            }
        }
        self.indexes.write().push(index);
        drop(guards);
    }

    /// The registered secondary indexes of this table.
    pub fn indexes(&self) -> Vec<Arc<Index>> {
        self.indexes.read().clone()
    }

    /// Unlinks a version previously installed with [`Table::install_version`]
    /// (rollback path). The version should already be marked aborted.
    /// Releases the version's index entry references iff the version was
    /// actually removed here (a purge may have raced and released them
    /// already), inside the shard read-lock scope so index backfills can
    /// never observe a half-applied removal.
    pub fn unlink_version(&self, key: &[u8], version: &Arc<Version>) {
        let shard = self.shard(key);
        let now_empty = {
            let rows = shard.rows.read();
            let Some(chain) = rows.get(key) else { return };
            let (removed, empty) = {
                let mut versions = chain.versions.lock();
                let before = versions.len();
                versions.retain(|v| !Arc::ptr_eq(v, version));
                (versions.len() != before, versions.is_empty())
            };
            if removed {
                self.release_index_refs(key, version);
            }
            empty
        };
        if now_empty {
            self.remove_if_empty(key);
        }
    }

    /// Removes `key`'s chain from both maps if it is (still) empty. Takes
    /// the shard write lock first, which excludes concurrent installs, so
    /// the emptiness check is stable.
    fn remove_if_empty(&self, key: &[u8]) {
        let shard = self.shard(key);
        let removed = {
            let mut rows = shard.rows.write();
            match rows.get(key) {
                Some(chain) if chain.versions.lock().is_empty() => {
                    let chain = chain.clone();
                    rows.remove(key);
                    Some(chain)
                }
                _ => None,
            }
        };
        if let Some(chain) = removed {
            self.unlink_from_ordered(key, &chain);
        }
    }

    /// Removes `key` from the ordered index iff it still maps to `chain`.
    /// Called after the chain was removed from its hash shard, and never
    /// while a chain mutex is held (see the module docs on lock order).
    /// `ptr_eq` guards against removing a successor chain installed for
    /// the same key in the meantime.
    fn unlink_from_ordered(&self, key: &[u8], chain: &Arc<RowChain>) {
        let mut ordered = self.ordered.write();
        if let Some(current) = ordered.get(key) {
            if Arc::ptr_eq(current, chain) {
                ordered.remove(key);
            }
        }
    }

    /// Snapshot range scan. Returns one [`ScanEntry`] per key in the range
    /// that has any non-aborted version, *including* keys whose visible
    /// version is a tombstone or that have no visible version at all —
    /// Serializable SI needs those entries to register rw-conflicts with the
    /// concurrent writers that created the newer versions.
    ///
    /// Entries come back in key order. Implemented on top of the paging
    /// cursor: the ordered-index lock is taken once per
    /// [`SCAN_PAGE_SIZE`]-key page rather than once for the whole range, so
    /// arbitrarily large scans never hold the index lock for long. Prefer
    /// [`Table::cursor`] when entries can be consumed incrementally.
    pub fn scan(
        &self,
        lower: Bound<&[u8]>,
        upper: Bound<&[u8]>,
        reader: TxnId,
        snapshot_ts: Timestamp,
    ) -> Vec<ScanEntry> {
        self.cursor(lower, upper, reader, snapshot_ts).collect()
    }

    /// One page of a paged range scan: up to `limit` keys' worth of entries,
    /// plus the key to resume after when the range may hold more.
    ///
    /// `entries` can be shorter than `limit` even mid-range (keys whose
    /// chains emptied concurrently are skipped but still consume page
    /// budget), so callers must continue while `resume_after` is `Some`,
    /// not while pages come back non-empty.
    pub fn scan_page(
        &self,
        lower: Bound<&[u8]>,
        upper: Bound<&[u8]>,
        reader: TxnId,
        snapshot_ts: Timestamp,
        limit: usize,
    ) -> ScanPage {
        assert!(limit > 0, "scan page limit must be positive");
        let chains: Vec<(Arc<[u8]>, Arc<RowChain>)> = {
            let ordered = self.ordered.read();
            ordered
                .range::<[u8], _>((lower, upper))
                .take(limit)
                .map(|(k, c)| (k.clone(), c.clone()))
                .collect()
        };
        // A full page means the range may continue past the last key seen;
        // a short page proves the range was exhausted.
        let resume_after = if chains.len() == limit {
            chains.last().map(|(k, _)| k.to_vec())
        } else {
            None
        };
        let mut entries = Vec::with_capacity(chains.len());
        for (key, chain) in chains {
            let r = chain.read_all(reader, snapshot_ts);
            if !r.key_exists {
                continue;
            }
            entries.push(ScanEntry {
                key: key.to_vec(),
                value: r.value,
                newer_creators: r.newer_creators,
                read_version_ts: r.read_version_ts,
                read_own_write: r.read_own_write,
                speculative_of: r.speculative_of,
            });
        }
        ScanPage {
            entries,
            resume_after,
        }
    }

    /// Streaming range scan: an iterator that pulls [`SCAN_PAGE_SIZE`]-key
    /// pages on demand via [`Table::scan_page`]. Only one page of chain
    /// handles is ever materialized, and the ordered-index lock is released
    /// between pages, so concurrent inserts of *new* keys proceed while a
    /// large scan is in flight.
    ///
    /// Consistency is per key, exactly as for [`Table::scan`]: versions a
    /// scan observes but cannot read are reported as rw-conflicts via
    /// `newer_creators`, and keys inserted behind the cursor are phantoms,
    /// which SIREAD gap locks catch in the lock manager (see the module
    /// docs) — paging does not weaken Serializable SI.
    pub fn cursor(
        &self,
        lower: Bound<&[u8]>,
        upper: Bound<&[u8]>,
        reader: TxnId,
        snapshot_ts: Timestamp,
    ) -> ScanCursor<'_> {
        ScanCursor {
            table: self,
            lower: Some(clone_bound(lower)),
            upper: clone_bound(upper),
            reader,
            snapshot_ts,
            page_size: SCAN_PAGE_SIZE,
            page: Vec::new().into_iter(),
        }
    }

    /// Smallest key `>= key` present in the table (used by insert/delete gap
    /// locking: the lock target is the key *after* the one being modified).
    pub fn next_key_at_or_after(&self, key: &[u8]) -> Option<Vec<u8>> {
        let ordered = self.ordered.read();
        ordered
            .range::<[u8], _>((Bound::Included(key), Bound::Unbounded))
            .next()
            .map(|(k, _)| k.to_vec())
    }

    /// Smallest key strictly greater than `key`.
    pub fn next_key_after(&self, key: &[u8]) -> Option<Vec<u8>> {
        let ordered = self.ordered.read();
        ordered
            .range::<[u8], _>((Bound::Excluded(key), Bound::Unbounded))
            .next()
            .map(|(k, _)| k.to_vec())
    }

    /// All keys in the given range (used by tests and the verifier).
    pub fn keys_in_range(&self, lower: Bound<&[u8]>, upper: Bound<&[u8]>) -> Vec<Vec<u8>> {
        let ordered = self.ordered.read();
        ordered
            .range::<[u8], _>((lower, upper))
            .map(|(k, _)| k.to_vec())
            .collect()
    }

    /// Garbage-collects versions that can no longer be seen by any snapshot
    /// at or after `horizon`: for each key the newest version committed at
    /// or before the horizon is kept, everything older is dropped, and fully
    /// dead keys (only an old tombstone left) are removed.
    ///
    /// The horizon must be a *safe* reclamation horizon — at or below every
    /// active snapshot, every snapshot that can still be acquired, and every
    /// pinned timestamp (a checkpoint streaming a fuzzy snapshot, a long
    /// scan). Computing such a horizon is `ssi-core`'s job
    /// (`TransactionManager::gc_horizon`); this method trusts its argument.
    /// Returns what was reclaimed.
    pub fn purge_old_versions(&self, horizon: Timestamp) -> PurgeStats {
        let mut stats = PurgeStats::at(horizon);
        for idx in 0..SHARD_COUNT {
            stats.merge(&self.purge_shard(idx, horizon));
        }
        stats
    }

    /// Garbage-collects one hash shard at the given reclamation horizon —
    /// the incremental unit background GC schedules, so a single pass never
    /// touches more than one shard's worth of chains. Purging every shard
    /// at one pinned horizon reclaims exactly what
    /// [`Table::purge_old_versions`] at that horizon would: the shards
    /// partition the key space, and dead-key removal stays inside the shard
    /// the key hashes to. The same safety contract on `horizon` applies.
    /// `idx` is taken modulo [`SHARD_COUNT`], so cursors can wrap freely.
    pub fn purge_shard(&self, idx: usize, horizon: Timestamp) -> PurgeStats {
        let shard = &self.shards[idx & (SHARD_COUNT - 1)];
        let mut stats = PurgeStats::at(horizon);
        let mut dead_keys: Vec<Arc<[u8]>> = Vec::new();
        {
            let rows = shard.rows.read();
            for (key, chain) in rows.iter() {
                let mut versions = chain.versions.lock();
                // Position of the newest version committed at or before
                // the horizon; everything after it (older) is
                // unreachable.
                let mut keep_upto = None;
                for (i, v) in versions.iter().enumerate() {
                    match v.state() {
                        VersionState::Committed(ts) if ts <= horizon => {
                            keep_upto = Some(i);
                            break;
                        }
                        _ => {}
                    }
                }
                if let Some(idx) = keep_upto {
                    stats.versions += (versions.len() - (idx + 1)) as u64;
                    for v in versions.drain(idx + 1..) {
                        self.release_index_refs(key, &v);
                    }
                    // If the only remaining reachable version is a
                    // tombstone and nothing newer exists, the key is
                    // gone for good.
                    if versions.len() == 1 && versions[0].is_tombstone() {
                        if let VersionState::Committed(ts) = versions[0].state() {
                            if ts <= horizon {
                                dead_keys.push(key.clone());
                            }
                        }
                    }
                }
                // Also drop aborted leftovers (releasing their index
                // references: the purge got to them before the creator's
                // rollback unlink, which will then find nothing to remove
                // and release nothing).
                let before = versions.len();
                versions.retain(|v| {
                    if v.state() == VersionState::Aborted {
                        self.release_index_refs(key, v);
                        false
                    } else {
                        true
                    }
                });
                stats.versions += (before - versions.len()) as u64;
            }
        }
        for key in dead_keys {
            if self.remove_dead_key(&key, horizon) > 0 {
                stats.versions += 1;
                stats.chains += 1;
            }
        }
        stats
    }

    /// Removes a key whose chain consists solely of one committed tombstone
    /// at or before the horizon. Re-verified under the shard write lock, so
    /// a version installed since the purge scan keeps the key alive.
    fn remove_dead_key(&self, key: &[u8], horizon: Timestamp) -> usize {
        let shard = self.shard(key);
        let removed = {
            let mut rows = shard.rows.write();
            let Some(chain) = rows.get(key) else { return 0 };
            let dead = {
                let mut versions = chain.versions.lock();
                let is_dead = versions.len() == 1
                    && versions[0].is_tombstone()
                    && matches!(versions[0].state(),
                                VersionState::Committed(ts) if ts <= horizon);
                if is_dead {
                    // Empty the chain so scans holding the Arc skip it.
                    versions.clear();
                }
                is_dead
            };
            if !dead {
                return 0;
            }
            let chain = chain.clone();
            rows.remove(key);
            chain
        };
        self.unlink_from_ordered(key, &removed);
        1
    }

    /// Total number of versions stored (all chains), for tests and stats.
    pub fn version_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.rows
                    .read()
                    .values()
                    .map(|c| c.versions.lock().len())
                    .sum::<usize>()
            })
            .sum()
    }
}

impl std::fmt::Debug for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Table")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("keys", &self.key_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(id: u64) -> TxnId {
        TxnId(id)
    }

    fn table() -> Table {
        Table::new(TableId(1), "test")
    }

    fn val(r: &VisibleRead) -> Option<Vec<u8>> {
        r.value.as_deref().map(|b| b.to_vec())
    }

    #[test]
    fn empty_read() {
        let tbl = table();
        let r = tbl.read(b"a", t(1), 10);
        assert!(r.value.is_none());
        assert!(!r.key_exists);
        assert!(r.newer_creators.is_empty());
        assert_eq!(r.newest_committed_ts, None);
    }

    #[test]
    fn own_uncommitted_write_is_visible_to_creator_only() {
        let tbl = table();
        tbl.install_version(b"a", t(1), Some(vec![1]));
        let mine = tbl.read(b"a", t(1), 5);
        assert_eq!(val(&mine), Some(vec![1]));
        let theirs = tbl.read(b"a", t(2), 5);
        assert_eq!(theirs.value, None);
        assert_eq!(theirs.newer_creators, vec![t(1)]);
        assert!(theirs.key_exists);
    }

    #[test]
    fn committed_version_respects_snapshot() {
        let tbl = table();
        let v = tbl.install_version(b"a", t(1), Some(vec![1]));
        v.mark_committed(10);
        assert_eq!(val(&tbl.read(b"a", t(2), 10)), Some(vec![1]));
        assert_eq!(tbl.read(b"a", t(2), 9).value, None);
        assert_eq!(tbl.read(b"a", t(2), 9).newer_creators, vec![t(1)]);
        assert_eq!(tbl.newest_committed_ts(b"a"), Some(10));
    }

    #[test]
    fn provisional_version_is_taken_speculatively_when_snapshot_covers_it() {
        let tbl = table();
        let v1 = tbl.install_version(b"a", t(1), Some(vec![1]));
        v1.mark_committed(10);
        let v2 = tbl.install_version(b"a", t(2), Some(vec![2]));
        v2.mark_provisional(20);
        // Snapshot below the provisional stamp: plain invisible-newer.
        let r = tbl.read(b"a", t(3), 15);
        assert_eq!(val(&r), Some(vec![1]));
        assert_eq!(r.newer_creators, vec![t(2)]);
        assert_eq!(r.speculative_of, None);
        // Snapshot covering the provisional stamp: the value is taken, but
        // flagged speculative-of its creator; the newest *committed*
        // timestamp still excludes the unsettled version.
        let r = tbl.read(b"a", t(3), 25);
        assert_eq!(val(&r), Some(vec![2]));
        assert_eq!(r.speculative_of, Some(t(2)));
        assert_eq!(r.read_version_ts, Some(20));
        assert_eq!(r.newest_committed_ts, Some(10));
        // Once finalized the same read settles with no speculation.
        v2.mark_committed(20);
        let r = tbl.read(b"a", t(3), 25);
        assert_eq!(val(&r), Some(vec![2]));
        assert_eq!(r.speculative_of, None);
        assert_eq!(r.newest_committed_ts, Some(20));
    }

    #[test]
    fn snapshot_reads_older_version_and_reports_newer_creator() {
        let tbl = table();
        let v1 = tbl.install_version(b"a", t(1), Some(vec![1]));
        v1.mark_committed(10);
        let v2 = tbl.install_version(b"a", t(2), Some(vec![2]));
        v2.mark_committed(20);
        // A reader with snapshot 15 sees version 1 and learns that T2 wrote a
        // newer version — exactly the rw-dependency signal of Fig. 3.4.
        let r = tbl.read(b"a", t(3), 15);
        assert_eq!(val(&r), Some(vec![1]));
        assert_eq!(r.newer_creators, vec![t(2)]);
        assert_eq!(r.newest_committed_ts, Some(20));
        // A reader with snapshot 25 sees version 2 with no newer versions.
        let r2 = tbl.read(b"a", t(3), 25);
        assert_eq!(val(&r2), Some(vec![2]));
        assert!(r2.newer_creators.is_empty());
    }

    #[test]
    fn tombstone_hides_row_from_new_snapshots() {
        let tbl = table();
        let v1 = tbl.install_version(b"a", t(1), Some(vec![1]));
        v1.mark_committed(10);
        let del = tbl.install_version(b"a", t(2), None);
        del.mark_committed(20);
        assert_eq!(val(&tbl.read(b"a", t(3), 15)), Some(vec![1]));
        assert_eq!(tbl.read(b"a", t(3), 25).value, None);
        // The key still exists (with a tombstone) so scans can detect the
        // conflict for old snapshots.
        assert!(tbl.read(b"a", t(3), 25).key_exists);
    }

    #[test]
    fn abort_unlinks_version() {
        let tbl = table();
        let v = tbl.install_version(b"a", t(1), Some(vec![1]));
        v.mark_aborted();
        tbl.unlink_version(b"a", &v);
        let r = tbl.read(b"a", t(1), 100);
        assert!(r.value.is_none());
        assert!(!r.key_exists);
        assert_eq!(tbl.key_count(), 0);
    }

    #[test]
    fn read_latest_committed_ignores_snapshot() {
        let tbl = table();
        let v1 = tbl.install_version(b"a", t(1), Some(vec![1]));
        v1.mark_committed(10);
        let v2 = tbl.install_version(b"a", t(2), Some(vec![2]));
        v2.mark_committed(20);
        assert_eq!(
            tbl.read_latest_committed(b"a", t(9)).as_deref(),
            Some(&[2][..])
        );
        // Own uncommitted write wins.
        tbl.install_version(b"a", t(9), Some(vec![9]));
        assert_eq!(
            tbl.read_latest_committed(b"a", t(9)).as_deref(),
            Some(&[9][..])
        );
    }

    #[test]
    fn scan_returns_rows_in_key_order_with_conflict_info() {
        let tbl = table();
        for (k, ts) in [(b"a", 10u64), (b"c", 10), (b"e", 10)] {
            let v = tbl.install_version(k, t(1), Some(k.to_vec()));
            v.mark_committed(ts);
        }
        // A concurrent insert not visible to snapshot 10.
        let v = tbl.install_version(b"b", t(5), Some(vec![0xb]));
        v.mark_committed(20);

        let entries = tbl.scan(Bound::Unbounded, Bound::Unbounded, t(3), 10);
        let keys: Vec<&[u8]> = entries.iter().map(|e| e.key.as_slice()).collect();
        assert_eq!(keys, vec![b"a" as &[u8], b"b", b"c", b"e"]);
        // "b" has no visible value but reports its creator as a conflict.
        let b_entry = &entries[1];
        assert!(b_entry.value.is_none());
        assert_eq!(b_entry.newer_creators, vec![t(5)]);
    }

    #[test]
    fn scan_bounds_are_respected() {
        let tbl = table();
        for k in [b"a", b"b", b"c", b"d"] {
            let v = tbl.install_version(k, t(1), Some(vec![1]));
            v.mark_committed(5);
        }
        let entries = tbl.scan(
            Bound::Included(b"b".as_slice()),
            Bound::Excluded(b"d".as_slice()),
            t(2),
            10,
        );
        let keys: Vec<&[u8]> = entries.iter().map(|e| e.key.as_slice()).collect();
        assert_eq!(keys, vec![b"b" as &[u8], b"c"]);
    }

    #[test]
    fn next_key_queries() {
        let tbl = table();
        for k in [b"b", b"d", b"f"] {
            let v = tbl.install_version(k, t(1), Some(vec![1]));
            v.mark_committed(5);
        }
        assert_eq!(tbl.next_key_at_or_after(b"d"), Some(b"d".to_vec()));
        assert_eq!(tbl.next_key_after(b"d"), Some(b"f".to_vec()));
        assert_eq!(tbl.next_key_at_or_after(b"c"), Some(b"d".to_vec()));
        assert_eq!(tbl.next_key_after(b"f"), None);
        assert_eq!(tbl.next_key_at_or_after(b"g"), None);
    }

    #[test]
    fn purge_reclaims_old_versions_and_dead_tombstones() {
        let tbl = table();
        let v1 = tbl.install_version(b"a", t(1), Some(vec![1]));
        v1.mark_committed(10);
        let v2 = tbl.install_version(b"a", t(2), Some(vec![2]));
        v2.mark_committed(20);
        let v3 = tbl.install_version(b"a", t(3), Some(vec![3]));
        v3.mark_committed(30);
        let d = tbl.install_version(b"b", t(4), None);
        d.mark_committed(15);

        // Oldest active snapshot is 25: version 1 is unreachable, the "b"
        // tombstone is dead.
        let stats = tbl.purge_old_versions(25);
        assert!(stats.versions >= 2, "reclaimed {stats:?}");
        assert_eq!(stats.chains, 1, "the dead tombstone chain is removed");
        assert_eq!(stats.horizon, 25);
        assert_eq!(val(&tbl.read(b"a", t(9), 25)), Some(vec![2]));
        assert_eq!(val(&tbl.read(b"a", t(9), 35)), Some(vec![3]));
        assert_eq!(tbl.key_count(), 1);
    }

    #[test]
    fn purge_never_reclaims_versions_at_or_above_the_horizon() {
        // Versions visible to any snapshot >= horizon must survive: the
        // newest version committed at or below the horizon is the one every
        // such snapshot reads for this key.
        let tbl = table();
        for (creator, ts) in [(1u64, 10u64), (2, 20), (3, 30)] {
            let v = tbl.install_version(b"a", t(creator), Some(vec![creator as u8]));
            v.mark_committed(ts);
        }
        let stats = tbl.purge_old_versions(15);
        assert_eq!(
            stats.versions, 0,
            "the ts-10 version is what a snapshot at 15 reads: nothing is reclaimable"
        );
        assert_eq!(val(&tbl.read(b"a", t(9), 15)), Some(vec![1]));
        assert_eq!(val(&tbl.read(b"a", t(9), 25)), Some(vec![2]));
        assert_eq!(val(&tbl.read(b"a", t(9), 35)), Some(vec![3]));
    }

    #[test]
    fn per_shard_purge_reclaims_exactly_what_whole_table_purge_would() {
        // Two identical tables: purge one in a single whole-table pass and
        // the other shard by shard (in a scrambled order) at the same
        // pinned horizon — stats and surviving state must agree exactly.
        let build = || {
            let tbl = table();
            for k in 0..200u64 {
                for (creator, ts) in [(1u64, 10u64), (2, 20), (3, 30)] {
                    let v = tbl.install_version(&k.to_be_bytes(), t(creator), Some(vec![k as u8]));
                    v.mark_committed(ts);
                }
            }
            // Dead tombstones sprinkled over the shards.
            for k in 200..232u64 {
                let v = tbl.install_version(&k.to_be_bytes(), t(4), None);
                v.mark_committed(15);
            }
            tbl
        };
        let whole = build();
        let sharded = build();
        let horizon = 25;

        let whole_stats = whole.purge_old_versions(horizon);
        let mut sharded_stats = PurgeStats::at(horizon);
        for i in 0..SHARD_COUNT {
            // Wrapping index exercises the modulo contract too.
            sharded_stats.merge(&sharded.purge_shard(i + SHARD_COUNT, horizon));
        }
        assert_eq!(sharded_stats, whole_stats);
        assert_eq!(sharded.version_count(), whole.version_count());
        assert_eq!(sharded.key_count(), whole.key_count());
        for k in 0..200u64 {
            assert_eq!(
                val(&sharded.read(&k.to_be_bytes(), t(9), 25)),
                val(&whole.read(&k.to_be_bytes(), t(9), 25)),
            );
        }
    }

    #[test]
    fn purge_stats_merge_sums_and_keeps_highest_horizon() {
        let mut a = PurgeStats {
            horizon: 10,
            versions: 3,
            chains: 1,
        };
        a.merge(&PurgeStats {
            horizon: 7,
            versions: 2,
            chains: 0,
        });
        assert_eq!(
            a,
            PurgeStats {
                horizon: 10,
                versions: 5,
                chains: 1
            }
        );
        assert_eq!(PurgeStats::at(4).horizon, 4);
    }

    #[test]
    fn version_count_tracks_installs() {
        let tbl = table();
        assert_eq!(tbl.version_count(), 0);
        tbl.install_version(b"a", t(1), Some(vec![1]));
        tbl.install_version(b"a", t(2), Some(vec![2]));
        tbl.install_version(b"b", t(1), Some(vec![3]));
        assert_eq!(tbl.version_count(), 3);
        assert_eq!(tbl.key_count(), 2);
    }

    #[test]
    fn read_returns_refcounted_handle_not_a_copy() {
        // The zero-copy guarantee of the read path: every read of the same
        // version must return a handle to the same heap allocation, i.e. a
        // refcount bump, never a byte copy.
        let tbl = table();
        let v = tbl.install_version(b"a", t(1), Some(vec![42; 128]));
        v.mark_committed(10);
        let r1 = tbl.read(b"a", t(2), 20).value.expect("visible");
        let r2 = tbl.read(b"a", t(3), 20).value.expect("visible");
        assert!(
            Arc::ptr_eq(&r1, &r2),
            "reads must share the version's payload allocation"
        );
        assert_eq!(
            r1.as_ptr(),
            v.value().unwrap().as_ptr(),
            "handle points into the stored version"
        );
        // Scans hand out the same handle.
        let entries = tbl.scan(Bound::Unbounded, Bound::Unbounded, t(4), 20);
        assert!(Arc::ptr_eq(entries[0].value.as_ref().unwrap(), &r1));
    }

    #[test]
    fn scan_page_pages_through_range_with_resume_keys() {
        let tbl = table();
        for i in 0..10u64 {
            let v = tbl.install_version(&[i as u8], t(1), Some(vec![i as u8]));
            v.mark_committed(5);
        }
        // Page of 4: [0..4), resume after 3.
        let p1 = tbl.scan_page(Bound::Unbounded, Bound::Unbounded, t(2), 10, 4);
        assert_eq!(p1.entries.len(), 4);
        assert_eq!(p1.resume_after.as_deref(), Some(&[3u8][..]));
        // Continue: next page picks up at 4.
        let p2 = tbl.scan_page(
            Bound::Excluded(p1.resume_after.as_deref().unwrap()),
            Bound::Unbounded,
            t(2),
            10,
            4,
        );
        assert_eq!(p2.entries[0].key, vec![4u8]);
        assert_eq!(p2.resume_after.as_deref(), Some(&[7u8][..]));
        // Final short page proves exhaustion.
        let p3 = tbl.scan_page(
            Bound::Excluded(p2.resume_after.as_deref().unwrap()),
            Bound::Unbounded,
            t(2),
            10,
            4,
        );
        assert_eq!(p3.entries.len(), 2);
        assert_eq!(p3.resume_after, None);
    }

    #[test]
    fn cursor_streams_whole_range_across_page_boundaries() {
        let tbl = table();
        for i in 0..300u64 {
            let v = tbl.install_version(&i.to_be_bytes(), t(1), Some(vec![1]));
            v.mark_committed(5);
        }
        // Tiny pages force many refills; the stream must still be the whole
        // range in order, without duplicates.
        let keys: Vec<Vec<u8>> = tbl
            .cursor(Bound::Unbounded, Bound::Unbounded, t(2), 10)
            .with_page_size(7)
            .map(|e| e.key)
            .collect();
        assert_eq!(keys.len(), 300);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
        // And scan() (built on the cursor) agrees with explicit bounds.
        let bounded = tbl.scan(
            Bound::Included(&100u64.to_be_bytes()[..]),
            Bound::Excluded(&200u64.to_be_bytes()[..]),
            t(2),
            10,
        );
        assert_eq!(bounded.len(), 100);
        assert_eq!(bounded[0].key, 100u64.to_be_bytes().to_vec());
    }

    #[test]
    fn cursor_skips_rolled_back_keys_and_keeps_paging() {
        // The first ten keys are rolled back before the scan; the cursor
        // must stream exactly the surviving keys, refilling across several
        // small pages.
        let tbl = table();
        for i in 0..20u64 {
            let v = tbl.install_version(&[i as u8], t(1), Some(vec![1]));
            if i < 10 {
                v.mark_aborted();
                tbl.unlink_version(&[i as u8], &v);
            } else {
                v.mark_committed(5);
            }
        }
        let keys: Vec<Vec<u8>> = tbl
            .cursor(Bound::Unbounded, Bound::Unbounded, t(2), 10)
            .with_page_size(3)
            .map(|e| e.key)
            .collect();
        assert_eq!(keys.len(), 10);
        assert_eq!(keys[0], vec![10u8]);
    }

    #[test]
    fn index_refs_follow_chain_membership() {
        use crate::index::{Index, IndexDef, IndexKeyPart, IndexKeySpec};
        let tbl = table();
        let idx = Arc::new(Index::new(IndexDef {
            id: TableId(9),
            name: "by_prefix".into(),
            table: tbl.id(),
            unique: false,
            spec: IndexKeySpec {
                layout: vec![],
                parts: vec![IndexKeyPart::PrimaryKeySlice(0, 1)],
            },
        }));
        // Backfill covers versions installed before registration.
        let v0 = tbl.install_version(b"a1", t(1), Some(vec![0]));
        v0.mark_committed(10);
        tbl.register_index(idx.clone());
        assert_eq!(idx.entry_count(), 1);
        // New installs add entries; aborted unlinks remove them.
        let v1 = tbl.install_version(b"b1", t(2), Some(vec![0]));
        assert_eq!(idx.entry_count(), 2);
        v1.mark_aborted();
        tbl.unlink_version(b"b1", &v1);
        assert_eq!(idx.entry_count(), 1);
        // An update of the same key extracts to the same entry: two refs,
        // one entry; GC of the superseded version releases one ref only.
        let v2 = tbl.install_version(b"a1", t(3), Some(vec![1]));
        v2.mark_committed(20);
        assert_eq!(idx.entry_count(), 1);
        tbl.purge_old_versions(25);
        assert_eq!(idx.entry_count(), 1, "resident version still claims it");
        // Tombstone + purge reclaim the chain and the last reference.
        let d = tbl.install_version(b"a1", t(4), None);
        d.mark_committed(30);
        tbl.purge_old_versions(35);
        assert_eq!(idx.entry_count(), 0, "dead chain leaves no entries");
        assert_eq!(tbl.key_count(), 0);
    }

    #[test]
    fn keys_spread_across_shards() {
        let tbl = table();
        for i in 0..1000u64 {
            tbl.install_version(&i.to_be_bytes(), t(1), Some(vec![1]));
        }
        let populated = tbl
            .shards
            .iter()
            .filter(|s| !s.rows.read().is_empty())
            .count();
        assert!(populated > SHARD_COUNT / 2, "only {populated} shards used");
        assert_eq!(tbl.key_count(), 1000);
    }

    #[test]
    fn concurrent_readers_and_writers_never_see_partial_chains() {
        use std::sync::atomic::{AtomicBool, Ordering};
        // Writers install + commit or install + abort/unlink on a small hot
        // key set while readers hammer reads and scans. Every read must see
        // either nothing or a fully installed, committed value of the
        // expected shape; rollback races must never surface as panics or
        // torn state.
        let tbl = Arc::new(table());
        let stop = Arc::new(AtomicBool::new(false));
        let keys: Vec<Vec<u8>> = (0..8u64).map(|i| i.to_be_bytes().to_vec()).collect();

        std::thread::scope(|s| {
            for w in 0..4u64 {
                let tbl = tbl.clone();
                let stop = stop.clone();
                let keys = keys.clone();
                s.spawn(move || {
                    let mut ts = 1000 + w;
                    let mut n = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let key = &keys[(n % 8) as usize];
                        let txn = t(w * 1_000_000 + n + 1);
                        let payload = vec![w as u8; 64];
                        let v = tbl.install_version(key, txn, Some(payload));
                        if n.is_multiple_of(3) {
                            // Rollback path: abort and unlink.
                            v.mark_aborted();
                            tbl.unlink_version(key, &v);
                        } else {
                            ts += 4;
                            v.mark_committed(ts);
                        }
                        n += 1;
                    }
                });
            }
            for r in 0..4u64 {
                let tbl = tbl.clone();
                let stop = stop.clone();
                let keys = keys.clone();
                s.spawn(move || {
                    let reader = t(900_000_000 + r);
                    let mut n = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let key = &keys[(n % 8) as usize];
                        let read = tbl.read(key, reader, u64::MAX - 1);
                        if let Some(value) = &read.value {
                            assert_eq!(value.len(), 64, "torn value");
                            assert!(value.iter().all(|b| *b == value[0]), "torn value");
                        }
                        if n.is_multiple_of(16) {
                            for entry in
                                tbl.scan(Bound::Unbounded, Bound::Unbounded, reader, u64::MAX - 1)
                            {
                                if let Some(value) = &entry.value {
                                    assert_eq!(value.len(), 64, "torn scan value");
                                }
                            }
                        }
                        n += 1;
                    }
                });
            }
            std::thread::sleep(std::time::Duration::from_millis(300));
            stop.store(true, Ordering::Relaxed);
        });

        // The maps must still agree after the dust settles, in both
        // directions: every ordered-index key resolves in its hash shard
        // and every hash-shard key appears in the ordered index.
        let mut ordered_keys = tbl.keys_in_range(Bound::Unbounded, Bound::Unbounded);
        ordered_keys.sort();
        let mut shard_keys: Vec<Vec<u8>> = tbl
            .shards
            .iter()
            .flat_map(|s| s.rows.read().keys().map(|k| k.to_vec()).collect::<Vec<_>>())
            .collect();
        shard_keys.sort();
        assert_eq!(
            ordered_keys, shard_keys,
            "hash shards and ordered index diverged"
        );
        for key in &ordered_keys {
            assert!(tbl.chain(key).is_some(), "ordered index out of sync");
        }
    }

    #[test]
    fn scans_stay_key_ordered_across_shards_under_concurrent_inserts() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let tbl = Arc::new(table());
        let stop = Arc::new(AtomicBool::new(false));
        // Seed every even key, committed at ts 10.
        for i in (0..512u64).step_by(2) {
            let v = tbl.install_version(&i.to_be_bytes(), t(1), Some(i.to_be_bytes().to_vec()));
            v.mark_committed(10);
        }
        std::thread::scope(|s| {
            {
                let tbl = tbl.clone();
                let stop = stop.clone();
                s.spawn(move || {
                    // Keep inserting odd keys (new chains → ordered-index
                    // writes) while scans run.
                    let mut i = 1u64;
                    let mut n = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let v =
                            tbl.install_version(&(i % 512).to_be_bytes(), t(2 + n), Some(vec![9]));
                        v.mark_committed(100 + n);
                        i += 2;
                        n += 1;
                    }
                });
            }
            for _ in 0..3 {
                let tbl = tbl.clone();
                let stop = stop.clone();
                s.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let entries = tbl.scan(Bound::Unbounded, Bound::Unbounded, t(999_999), 50);
                        // Strictly ascending keys, and every seeded even key
                        // (committed before the scan snapshot) is present.
                        assert!(
                            entries.windows(2).all(|w| w[0].key < w[1].key),
                            "scan keys out of order"
                        );
                        let evens = entries
                            .iter()
                            .filter(|e| {
                                u64::from_be_bytes(e.key.as_slice().try_into().unwrap()) % 2 == 0
                            })
                            .count();
                        assert_eq!(evens, 256, "scan lost a committed key");
                    }
                });
            }
            std::thread::sleep(std::time::Duration::from_millis(300));
            stop.store(true, Ordering::Relaxed);
        });
    }
}
