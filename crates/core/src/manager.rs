//! The transaction manager: timestamps, the transaction registry, the
//! committed-but-suspended list and its cleanup.
//!
//! Responsibilities, mapped to the thesis:
//!
//! * issue begin (snapshot) and commit timestamps from a single counter so
//!   that "committed before T began" has one global meaning (Sec. 2.5);
//! * keep a registry of transaction records so that other transactions can
//!   be found by id when a conflict is discovered through a newer row
//!   version (Fig. 3.4 line 8);
//! * keep committed Serializable-SI transactions *suspended* — their record
//!   and their SIREAD locks stay alive until no concurrent transaction
//!   remains (Sec. 3.3), and clean them up eagerly in commit order
//!   (Sec. 4.6.1, the InnoDB strategy);
//! * provide the global serialization mutex that makes conflict marking and
//!   the commit-time flag check atomic (the `atomic begin/end` blocks of
//!   Figs. 3.2/3.3; the analogue of InnoDB's kernel mutex).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, MutexGuard};

use ssi_common::{IsolationLevel, Timestamp, TxnId};
use ssi_lock::{LockKey, LockManager, LockMode};

use crate::txn_shared::{TxnShared, TxnStatus};

/// A committed Serializable-SI transaction kept around because transactions
/// concurrent with it may still discover conflicts against it.
struct SuspendedTxn {
    shared: Arc<TxnShared>,
    /// SIREAD locks still registered in the lock table on its behalf.
    siread_locks: Vec<LockKey>,
}

/// Counters describing transaction-manager activity, exposed for tests and
/// the experiment harness.
#[derive(Default, Debug)]
pub struct ManagerStats {
    /// Transactions begun.
    pub started: AtomicU64,
    /// Transactions committed.
    pub committed: AtomicU64,
    /// Transactions aborted (any reason).
    pub aborted: AtomicU64,
    /// Commits that had to be suspended (kept SIREAD locks).
    pub suspended: AtomicU64,
    /// Suspended transactions reclaimed by cleanup.
    pub cleaned: AtomicU64,
}

/// The transaction manager.
pub struct TransactionManager {
    /// Global logical clock; the last issued timestamp.
    clock: AtomicU64,
    /// Next transaction id.
    next_id: AtomicU64,
    /// All transaction records that may still be referenced: active
    /// transactions plus committed-but-suspended Serializable SI
    /// transactions.
    registry: Mutex<HashMap<TxnId, Arc<TxnShared>>>,
    /// Suspended committed transactions, in commit order.
    suspended: Mutex<Vec<SuspendedTxn>>,
    /// Serialization point for conflict marking and commit checks.
    serialization: Mutex<()>,
    /// Activity counters.
    stats: ManagerStats,
}

impl TransactionManager {
    /// Creates a transaction manager with the clock at 1 (so the first
    /// snapshot is 1 and the first commit timestamp is 2).
    pub fn new() -> Self {
        TransactionManager {
            clock: AtomicU64::new(1),
            next_id: AtomicU64::new(1),
            registry: Mutex::new(HashMap::new()),
            suspended: Mutex::new(Vec::new()),
            serialization: Mutex::new(()),
            stats: ManagerStats::default(),
        }
    }

    /// Activity counters.
    pub fn stats(&self) -> &ManagerStats {
        &self.stats
    }

    /// Current value of the logical clock.
    pub fn current_ts(&self) -> Timestamp {
        self.clock.load(Ordering::Acquire)
    }

    /// Starts a new transaction at `isolation` and registers it.
    pub fn begin(&self, isolation: IsolationLevel) -> Arc<TxnShared> {
        let id = TxnId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let shared = Arc::new(TxnShared::new(id, isolation));
        self.registry.lock().insert(id, shared.clone());
        self.stats.started.fetch_add(1, Ordering::Relaxed);
        shared
    }

    /// Assigns the transaction's snapshot to the current clock value if it
    /// does not have one yet, and returns it. Deferring this call until
    /// after the first lock acquisition implements the optimization of
    /// Sec. 4.5 (single-statement updates never abort under
    /// first-committer-wins).
    pub fn ensure_snapshot(&self, txn: &TxnShared) -> Timestamp {
        if let Some(ts) = txn.begin_ts() {
            return ts;
        }
        let ts = self.current_ts();
        txn.set_begin_ts(ts);
        txn.begin_ts().unwrap_or(ts)
    }

    /// Acquires the global serialization mutex (conflict marking and commit
    /// checks run under it).
    pub fn serialization_lock(&self) -> MutexGuard<'_, ()> {
        self.serialization.lock()
    }

    /// Allocates the next commit timestamp. Must be called while holding the
    /// serialization mutex; the new value is *not* published to readers until
    /// [`TransactionManager::publish_commit_ts`] is called, so the caller can
    /// stamp its versions first and new snapshots can never observe a
    /// half-committed transaction.
    pub fn allocate_commit_ts(&self) -> Timestamp {
        self.current_ts() + 1
    }

    /// Publishes a commit timestamp allocated with
    /// [`TransactionManager::allocate_commit_ts`], making it visible to new
    /// snapshots.
    pub fn publish_commit_ts(&self, ts: Timestamp) {
        self.clock.store(ts, Ordering::Release);
    }

    /// Looks up a (possibly suspended) transaction record by id.
    pub fn find(&self, id: TxnId) -> Option<Arc<TxnShared>> {
        self.registry.lock().get(&id).cloned()
    }

    /// The smallest begin timestamp among active transactions, or
    /// `Timestamp::MAX` if none is active (used to decide which suspended
    /// transactions can be reclaimed).
    pub fn oldest_active_begin(&self) -> Timestamp {
        self.registry
            .lock()
            .values()
            .filter(|t| t.status() == TxnStatus::Active)
            .filter_map(|t| t.begin_ts())
            .min()
            .unwrap_or(Timestamp::MAX)
    }

    /// Number of entries in the registry (active + suspended), for tests.
    pub fn registry_len(&self) -> usize {
        self.registry.lock().len()
    }

    /// Number of suspended committed transactions, for tests and stats.
    pub fn suspended_len(&self) -> usize {
        self.suspended.lock().len()
    }

    /// Records that `txn` committed. When `suspend` is true the record is
    /// suspended (Sec. 3.3): it stays in the registry and its SIREAD locks
    /// stay in the lock table until cleanup. Otherwise the record is retired
    /// immediately and its conflict edges cleared. A transaction must be
    /// suspended when it still holds SIREAD locks, and also — with the
    /// SIREAD-upgrade optimization of Sec. 3.7.3 — when it has recorded an
    /// outgoing conflict, even if its SIREAD locks were all upgraded away.
    pub fn finish_commit(&self, txn: &Arc<TxnShared>, siread_locks: Vec<LockKey>, suspend: bool) {
        self.stats.committed.fetch_add(1, Ordering::Relaxed);
        if !suspend {
            debug_assert!(siread_locks.is_empty());
            self.registry.lock().remove(&txn.id());
            txn.clear_conflicts();
        } else {
            self.stats.suspended.fetch_add(1, Ordering::Relaxed);
            self.suspended.lock().push(SuspendedTxn {
                shared: txn.clone(),
                siread_locks,
            });
        }
    }

    /// Records that `txn` aborted and retires its record.
    pub fn finish_abort(&self, txn: &Arc<TxnShared>) {
        self.stats.aborted.fetch_add(1, Ordering::Relaxed);
        self.registry.lock().remove(&txn.id());
        txn.clear_conflicts();
    }

    /// Reclaims suspended transactions that are no longer concurrent with
    /// any active transaction: their SIREAD locks are dropped from the lock
    /// table, their conflict edges cleared and their records removed from
    /// the registry (Sec. 4.6.1). Returns how many were reclaimed.
    pub fn cleanup_suspended(&self, locks: &LockManager) -> usize {
        let horizon = self.oldest_active_begin();
        let mut reclaimed = Vec::new();
        {
            let mut suspended = self.suspended.lock();
            suspended.retain(|entry| {
                let commit = entry.shared.commit_ts().unwrap_or(Timestamp::MAX);
                // Keep the record while some active transaction began before
                // this one committed (they are concurrent and may still
                // discover conflicts against it).
                if horizon < commit {
                    true
                } else {
                    reclaimed.push(SuspendedTxn {
                        shared: entry.shared.clone(),
                        siread_locks: entry.siread_locks.clone(),
                    });
                    false
                }
            });
        }
        let count = reclaimed.len();
        for entry in reclaimed {
            for key in &entry.siread_locks {
                locks.unlock(entry.shared.id(), key, LockMode::SiRead);
            }
            entry.shared.clear_conflicts();
            self.registry.lock().remove(&entry.shared.id());
        }
        self.stats.cleaned.fetch_add(count as u64, Ordering::Relaxed);
        count
    }
}

impl Default for TransactionManager {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssi_common::TableId;

    fn mgr() -> TransactionManager {
        TransactionManager::new()
    }

    #[test]
    fn begin_assigns_unique_ids_and_registers() {
        let m = mgr();
        let a = m.begin(IsolationLevel::SnapshotIsolation);
        let b = m.begin(IsolationLevel::SerializableSnapshotIsolation);
        assert_ne!(a.id(), b.id());
        assert_eq!(m.registry_len(), 2);
        assert!(m.find(a.id()).is_some());
        assert!(m.find(TxnId(999)).is_none());
    }

    #[test]
    fn snapshot_assignment_is_sticky() {
        let m = mgr();
        let t = m.begin(IsolationLevel::SnapshotIsolation);
        let s1 = m.ensure_snapshot(&t);
        // Advance the clock as if another transaction committed.
        let ts = m.allocate_commit_ts();
        m.publish_commit_ts(ts);
        let s2 = m.ensure_snapshot(&t);
        assert_eq!(s1, s2, "snapshot must not move once assigned");
    }

    #[test]
    fn commit_timestamps_are_monotonic_and_published() {
        let m = mgr();
        let before = m.current_ts();
        let ts = {
            let _g = m.serialization_lock();
            let ts = m.allocate_commit_ts();
            m.publish_commit_ts(ts);
            ts
        };
        assert_eq!(ts, before + 1);
        assert_eq!(m.current_ts(), ts);
    }

    #[test]
    fn commit_without_sireads_retires_immediately() {
        let m = mgr();
        let t = m.begin(IsolationLevel::SerializableSnapshotIsolation);
        m.ensure_snapshot(&t);
        t.mark_committed(5);
        m.finish_commit(&t, Vec::new(), false);
        assert_eq!(m.registry_len(), 0);
        assert_eq!(m.suspended_len(), 0);
    }

    #[test]
    fn suspended_commit_stays_until_cleanup() {
        let m = mgr();
        let locks = LockManager::with_defaults();
        let key = LockKey::record(TableId(1), vec![1]);

        // Reader R commits holding an SIREAD lock while a concurrent
        // transaction C is still active.
        let r = m.begin(IsolationLevel::SerializableSnapshotIsolation);
        m.ensure_snapshot(&r);
        let c = m.begin(IsolationLevel::SerializableSnapshotIsolation);
        m.ensure_snapshot(&c);
        locks.lock(r.id(), &key, LockMode::SiRead).unwrap();

        r.mark_committed(m.current_ts() + 1);
        m.publish_commit_ts(m.current_ts() + 1);
        m.finish_commit(&r, vec![key.clone()], true);
        assert_eq!(m.suspended_len(), 1);
        assert!(m.find(r.id()).is_some(), "suspended txns stay findable");

        // Cleanup cannot reclaim R while C (begun before R committed) lives.
        assert_eq!(m.cleanup_suspended(&locks), 0);
        assert!(locks.holds(r.id(), &key).contains(LockMode::SiRead));

        // Once C finishes, R is reclaimable and its SIREAD lock disappears.
        c.mark_committed(m.current_ts() + 1);
        m.finish_commit(&c, Vec::new(), false);
        assert_eq!(m.cleanup_suspended(&locks), 1);
        assert_eq!(m.suspended_len(), 0);
        assert!(m.find(r.id()).is_none());
        assert!(locks.holds(r.id(), &key).is_empty());
    }

    #[test]
    fn oldest_active_begin_ignores_finished_transactions() {
        let m = mgr();
        let a = m.begin(IsolationLevel::SnapshotIsolation);
        m.ensure_snapshot(&a);
        let ts = m.allocate_commit_ts();
        m.publish_commit_ts(ts);
        let b = m.begin(IsolationLevel::SnapshotIsolation);
        m.ensure_snapshot(&b);
        assert_eq!(m.oldest_active_begin(), a.begin_ts().unwrap());
        a.mark_committed(m.current_ts() + 1);
        m.finish_commit(&a, Vec::new(), false);
        assert_eq!(m.oldest_active_begin(), b.begin_ts().unwrap());
        b.mark_aborted();
        m.finish_abort(&b);
        assert_eq!(m.oldest_active_begin(), Timestamp::MAX);
    }

    #[test]
    fn stats_count_lifecycle_events() {
        let m = mgr();
        let locks = LockManager::with_defaults();
        let a = m.begin(IsolationLevel::SerializableSnapshotIsolation);
        let b = m.begin(IsolationLevel::SerializableSnapshotIsolation);
        a.mark_committed(2);
        m.finish_commit(&a, Vec::new(), false);
        b.mark_aborted();
        m.finish_abort(&b);
        m.cleanup_suspended(&locks);
        let s = m.stats();
        assert_eq!(s.started.load(Ordering::Relaxed), 2);
        assert_eq!(s.committed.load(Ordering::Relaxed), 1);
        assert_eq!(s.aborted.load(Ordering::Relaxed), 1);
    }
}
