//! Multi-threaded end-to-end commit-throughput harness.
//!
//! Drives N client threads through whole transactions (begin → reads →
//! writes → commit) against one [`Database`] and reports committed
//! transactions per second. The same harness runs against the default
//! fine-grained commit pipeline and against the lock-step baseline
//! ([`ssi_core::Options::with_lockstep_commit`], the demoted global mutex
//! that mirrors the thesis prototype's kernel-mutex serialization), so the
//! `commit_bench` binary measures the pipeline's speedup rather than
//! asserting it.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ssi_common::IsolationLevel;
use ssi_core::{CommitPhase, Database};

use crate::hist::LatencyHistogram;

/// Shape of one commit-throughput run.
#[derive(Clone, Copy, Debug)]
pub struct CommitWorkload {
    /// Client threads running transactions.
    pub threads: usize,
    /// Keys preloaded into the table; reads and writes pick from them.
    pub keys: u64,
    /// Point reads per transaction.
    pub reads_per_txn: usize,
    /// Point writes per transaction.
    pub writes_per_txn: usize,
    /// When set, all reads and writes draw from the first `hot` keys only —
    /// the contention-heavy pivot workload (write-skew storms).
    pub hot: Option<u64>,
    /// Fraction of transactions (in 1/256ths) that run as read-only
    /// queries (`reads_per_txn` gets, no writes) — the paper's
    /// queries-plus-updates mix. Update transactions use the full shape.
    pub read_only_pct: u8,
    /// Measured wall-clock duration.
    pub duration: Duration,
    /// Unmeasured warm-up before the clock starts.
    pub warmup: Duration,
}

/// Result of one run.
#[derive(Clone, Debug, Default)]
pub struct CommitThroughput {
    /// Transactions committed inside the measurement window.
    pub committed: u64,
    /// Transactions aborted inside the measurement window (any retryable
    /// reason: first-committer-wins, unsafe structures, deadlocks).
    pub aborted: u64,
    /// Measured wall-clock time.
    pub elapsed: Duration,
    /// Per-call latency of the successful `commit()` calls inside the
    /// measurement window (the commit pipeline itself, not the reads and
    /// writes), merged across all worker threads.
    pub latency: LatencyHistogram,
}

impl CommitThroughput {
    /// Committed transactions per second.
    pub fn committed_per_sec(&self) -> f64 {
        self.committed as f64 / self.elapsed.as_secs_f64()
    }

    /// Aborts per committed transaction.
    pub fn aborts_per_commit(&self) -> f64 {
        if self.committed == 0 {
            return self.aborted as f64;
        }
        self.aborted as f64 / self.committed as f64
    }
}

/// Preloads `keys` rows into a fresh table named `bench`.
pub fn preload(db: &Database, keys: u64) {
    let table = db.create_table("bench").unwrap();
    let mut txn = db.begin_with(IsolationLevel::SnapshotIsolation);
    for i in 0..keys {
        txn.put(&table, &i.to_be_bytes(), &[0u8; 32]).unwrap();
    }
    txn.commit().unwrap();
}

/// Runs `shape` at `isolation` against `db` (already preloaded via
/// [`preload`]) and reports throughput over the measurement window.
pub fn run_commit_workload(
    db: &Database,
    isolation: IsolationLevel,
    shape: &CommitWorkload,
) -> CommitThroughput {
    let table = db.table("bench").unwrap();
    let stop = AtomicBool::new(false);
    let measuring = AtomicBool::new(shape.warmup.is_zero());
    let committed = AtomicU64::new(0);
    let aborted = AtomicU64::new(0);
    let latency = Mutex::new(LatencyHistogram::default());
    let key_space = shape.hot.unwrap_or(shape.keys).max(1);

    let measured = std::thread::scope(|s| {
        for t in 0..shape.threads {
            let db = db.clone();
            let table = table.clone();
            let (stop, measuring) = (&stop, &measuring);
            let (committed, aborted) = (&committed, &aborted);
            let latency = &latency;
            s.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(0x5EED ^ (t as u64) << 8);
                let mut local_latency = LatencyHistogram::default();
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let read_only = (rng.gen_range(0..256u32) as u8) < shape.read_only_pct;
                    let mut txn = db.begin_with(isolation);
                    let mut ok = true;
                    for _ in 0..shape.reads_per_txn {
                        let key = rng.gen_range(0..key_space).to_be_bytes();
                        if txn.get(&table, &key).is_err() {
                            ok = false;
                            break;
                        }
                    }
                    if ok && !read_only {
                        for _ in 0..shape.writes_per_txn {
                            let key = rng.gen_range(0..key_space).to_be_bytes();
                            if txn.put(&table, &key, &n.to_be_bytes()).is_err() {
                                ok = false;
                                break;
                            }
                        }
                    }
                    let result = if ok {
                        let begun = Instant::now();
                        let result = txn.commit();
                        if result.is_ok() && measuring.load(Ordering::Relaxed) {
                            local_latency.record(begun.elapsed());
                        }
                        result
                    } else {
                        Err(ssi_common::Error::TransactionClosed)
                    };
                    if measuring.load(Ordering::Relaxed) {
                        match result {
                            Ok(()) => committed.fetch_add(1, Ordering::Relaxed),
                            Err(_) => aborted.fetch_add(1, Ordering::Relaxed),
                        };
                    }
                    n += 1;
                }
                latency.lock().merge(&local_latency);
            });
        }
        // Janitor: purge unreachable versions on a fixed cadence, as a
        // deployed engine's background GC would. A fixed cadence (rather
        // than per-thread op counts) keeps version-chain lengths — the
        // dominant read cost on hot keys — identical across configurations
        // and runs.
        s.spawn(|| {
            let db = db.clone();
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(5));
                db.purge();
            }
        });
        std::thread::sleep(shape.warmup);
        measuring.store(true, Ordering::Relaxed);
        let start = Instant::now();
        std::thread::sleep(shape.duration);
        let elapsed = start.elapsed();
        stop.store(true, Ordering::Relaxed);
        elapsed
    });

    CommitThroughput {
        committed: committed.load(Ordering::Relaxed),
        aborted: aborted.load(Ordering::Relaxed),
        elapsed: measured,
        latency: latency.into_inner(),
    }
}

/// Shape of a straggler-committer run.
///
/// One dedicated straggler thread repeatedly updates its own key and is
/// held inside every commit window — between provisional stamping (its
/// timestamp already deposited) and finalization — for `hold` via the
/// manager's commit pause hook. Meanwhile `threads` bystander committers
/// run single-key update transactions on disjoint keys.
///
/// Under the lock-step baseline the straggler sleeps while holding the
/// global commit gate, so every bystander commit issued during the hold
/// blocks behind it and bystander tail latency tracks `hold`. Under the
/// fine-grained pipeline commit resolution is read-side: nobody waits for
/// the straggler to publish, and bystander latency is independent of the
/// hold time.
#[derive(Clone, Copy, Debug)]
pub struct StragglerWorkload {
    /// Bystander committer threads (the straggler is one extra).
    pub threads: usize,
    /// How long the straggler is held inside each commit window.
    pub hold: Duration,
    /// Measured wall-clock duration.
    pub duration: Duration,
    /// Unmeasured warm-up before the clock starts.
    pub warmup: Duration,
}

/// Runs the straggler scenario against `db` (already preloaded via
/// [`preload`]); the reported throughput and latency histogram cover the
/// bystanders only. Installs the commit pause hook for the duration of the
/// run and clears it before returning.
pub fn run_straggler_bench(db: &Database, shape: &StragglerWorkload) -> CommitThroughput {
    let table = db.table("bench").unwrap();
    let stop = AtomicBool::new(false);
    let measuring = AtomicBool::new(shape.warmup.is_zero());
    let committed = AtomicU64::new(0);
    let aborted = AtomicU64::new(0);
    let latency = Mutex::new(LatencyHistogram::default());

    // The hook holds exactly the transaction whose id the straggler thread
    // registered, at PreFinalize: its commit timestamp is stamped on its
    // versions and deposited into the publication chain, but the commit is
    // not yet finalized — the window the read-side resolution protocol
    // exists for.
    let straggler_id = Arc::new(AtomicU64::new(u64::MAX));
    {
        let straggler_id = Arc::clone(&straggler_id);
        let hold = shape.hold;
        db.transaction_manager()
            .set_commit_pause_hook(Some(Arc::new(move |id, phase| {
                if phase == CommitPhase::PreFinalize && id.0 == straggler_id.load(Ordering::Acquire)
                {
                    std::thread::sleep(hold);
                }
            })));
    }

    let measured = std::thread::scope(|s| {
        {
            let db = db.clone();
            let table = table.clone();
            let stop = &stop;
            let straggler_id = Arc::clone(&straggler_id);
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let mut txn = db.begin_with(IsolationLevel::SerializableSnapshotIsolation);
                    if txn.put(&table, b"straggler", b"1").is_err() {
                        continue;
                    }
                    straggler_id.store(txn.id().0, Ordering::Release);
                    let _ = txn.commit();
                    straggler_id.store(u64::MAX, Ordering::Release);
                }
            });
        }
        for t in 0..shape.threads {
            let db = db.clone();
            let table = table.clone();
            let (stop, measuring) = (&stop, &measuring);
            let (committed, aborted) = (&committed, &aborted);
            let latency = &latency;
            s.spawn(move || {
                // Each bystander updates its own key: no conflicts with the
                // straggler or each other, so any latency coupling comes
                // from the commit pipeline, not from data contention.
                let key = (t as u64).to_be_bytes();
                let mut local_latency = LatencyHistogram::default();
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let mut txn = db.begin_with(IsolationLevel::SerializableSnapshotIsolation);
                    let ok = txn.put(&table, &key, &n.to_be_bytes()).is_ok();
                    let result = if ok {
                        let begun = Instant::now();
                        let result = txn.commit();
                        if result.is_ok() && measuring.load(Ordering::Relaxed) {
                            local_latency.record(begun.elapsed());
                        }
                        result
                    } else {
                        Err(ssi_common::Error::TransactionClosed)
                    };
                    if measuring.load(Ordering::Relaxed) {
                        match result {
                            Ok(()) => committed.fetch_add(1, Ordering::Relaxed),
                            Err(_) => aborted.fetch_add(1, Ordering::Relaxed),
                        };
                    }
                    n += 1;
                    if n.is_multiple_of(4096) {
                        db.purge();
                    }
                }
                latency.lock().merge(&local_latency);
            });
        }
        std::thread::sleep(shape.warmup);
        measuring.store(true, Ordering::Relaxed);
        let start = Instant::now();
        std::thread::sleep(shape.duration);
        let elapsed = start.elapsed();
        stop.store(true, Ordering::Relaxed);
        elapsed
    });
    db.transaction_manager().set_commit_pause_hook(None);

    CommitThroughput {
        committed: committed.load(Ordering::Relaxed),
        aborted: aborted.load(Ordering::Relaxed),
        elapsed: measured,
        latency: latency.into_inner(),
    }
}

/// Measures raw commit-section capacity: `threads` threads run nothing but
/// the commit pipeline's serialized core — begin, allocate, mark-committed,
/// publish, retire — with no reads, writes, locks or storage. This isolates
/// the serialization point whose capacity caps multi-core commit scaling:
/// under the lock-step baseline every iteration crosses the global gate,
/// under the fine-grained pipeline it is a handful of atomics. Returns
/// sections per second.
pub fn run_commit_section_bench(db: &Database, threads: usize, duration: Duration) -> f64 {
    let stop = AtomicBool::new(false);
    let sections = AtomicU64::new(0);
    let start = Instant::now();
    let elapsed = std::thread::scope(|s| {
        for t in 0..threads {
            let db = db.clone();
            let (stop, sections) = (&stop, &sections);
            s.spawn(move || {
                let table = db.table("bench").unwrap();
                // Each thread updates its own key: no lock contention and
                // no conflicts, so iteration cost is dominated by the
                // commit pipeline itself.
                let key = (t as u64).to_be_bytes();
                let mut local = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let mut txn = db.begin_with(IsolationLevel::SerializableSnapshotIsolation);
                    let _ = txn.put(&table, &key, &[1]);
                    let _ = txn.commit();
                    local += 1;
                    if local.is_multiple_of(4096) {
                        db.purge();
                    }
                }
                sections.fetch_add(local, Ordering::Relaxed);
            });
        }
        std::thread::sleep(duration);
        let elapsed = start.elapsed();
        stop.store(true, Ordering::Relaxed);
        elapsed
    });
    sections.load(Ordering::Relaxed) as f64 / elapsed.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssi_core::Options;

    #[test]
    fn harness_drives_both_pipelines() {
        let shape = CommitWorkload {
            threads: 2,
            keys: 128,
            reads_per_txn: 2,
            writes_per_txn: 1,
            hot: None,
            read_only_pct: 0,
            duration: Duration::from_millis(50),
            warmup: Duration::ZERO,
        };
        for options in [
            Options::default(),
            Options::default().with_lockstep_commit(),
        ] {
            let db = Database::open(options);
            preload(&db, shape.keys);
            let out =
                run_commit_workload(&db, IsolationLevel::SerializableSnapshotIsolation, &shape);
            assert!(out.committed > 0, "no transactions committed");
            assert_eq!(
                out.latency.count(),
                out.committed,
                "every committed transaction must contribute a latency sample"
            );
            assert!(out.latency.p99() >= out.latency.p50());
        }
    }

    #[test]
    fn straggler_harness_keeps_bystanders_committing() {
        let shape = StragglerWorkload {
            threads: 2,
            hold: Duration::from_millis(2),
            duration: Duration::from_millis(60),
            warmup: Duration::ZERO,
        };
        let db = Database::open(Options::default());
        preload(&db, 16);
        let out = run_straggler_bench(&db, &shape);
        assert!(out.committed > 0, "bystanders must commit during the hold");
        assert_eq!(out.latency.count(), out.committed);
    }

    #[test]
    fn pivot_workload_generates_unsafe_aborts() {
        let shape = CommitWorkload {
            threads: 4,
            keys: 128,
            reads_per_txn: 2,
            writes_per_txn: 1,
            hot: Some(8),
            read_only_pct: 0,
            duration: Duration::from_millis(80),
            warmup: Duration::ZERO,
        };
        let db = Database::open(Options::default());
        preload(&db, shape.keys);
        let out = run_commit_workload(&db, IsolationLevel::SerializableSnapshotIsolation, &shape);
        assert!(out.committed > 0);
        assert!(out.aborted > 0, "hot-set workload should produce aborts");
    }
}
