//! Ablation benchmarks for the design choices Chapter 3 discusses:
//!
//! * basic boolean conflict flags (Sec. 3.2) vs the enhanced
//!   transaction-reference representation (Sec. 3.6) — the enhanced variant
//!   exists purely to reduce false-positive aborts;
//! * the SIREAD-upgrade optimization (Sec. 3.7.3) — without it read-modify-
//!   write transactions stay suspended after commit and the lock table
//!   grows;
//! * running read-only queries at plain SI (Sec. 3.8).
//!
//! Each configuration runs a short concurrent SmallBank burst; Criterion
//! reports time per committed transaction, and the abort ratio is printed to
//! stderr for the EXPERIMENTS.md record.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ssi_bench::ablation_options;
use ssi_common::IsolationLevel;
use ssi_core::Database;
use ssi_workloads::driver::{run_workload, RunConfig};
use ssi_workloads::smallbank::{SmallBank, SmallBankConfig};

fn bench_ssi_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("ssi_ablation_smallbank");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));

    for (name, options) in ablation_options(IsolationLevel::SerializableSnapshotIsolation) {
        let db = Database::open(options);
        let bank = SmallBank::setup(
            &db,
            SmallBankConfig {
                customers: 200,
                ops_per_txn: 1,
                initial_balance: 10_000,
                mitigation: Default::default(),
            },
        );
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter_custom(|_iters| {
                let stats = run_workload(
                    &db,
                    &bank,
                    &RunConfig {
                        mpl: 8,
                        warmup: Duration::from_millis(50),
                        duration: Duration::from_millis(200),
                        seed: 3,
                    },
                );
                eprintln!(
                    "ablation {name}: {:.0} commits/s, abort ratio {:.4} (unsafe {:.4})",
                    stats.throughput(),
                    stats.abort_ratio(),
                    stats.aborts_per_commit(ssi_common::AbortKind::Unsafe),
                );
                if stats.commits == 0 {
                    Duration::from_millis(200)
                } else {
                    Duration::from_millis(200) / stats.commits as u32
                }
            })
        });
    }
    group.finish();
}

fn bench_granularity(c: &mut Criterion) {
    // Row-level vs page-level locking for the same workload: the page-level
    // configuration detects more (false) conflicts, trading throughput for
    // the simpler Berkeley DB engine model (Sec. 6.1.5).
    use ssi_core::Options;
    let mut group = c.benchmark_group("granularity_smallbank");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));

    let configs = [
        ("row", Options::innodb_like()),
        ("page100", Options::berkeley_like(100)),
        ("page1000", Options::berkeley_like(1000)),
    ];
    for (name, options) in configs {
        let db = Database::open(options);
        let bank = SmallBank::setup(
            &db,
            SmallBankConfig {
                customers: 1000,
                ops_per_txn: 1,
                initial_balance: 10_000,
                mitigation: Default::default(),
            },
        );
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter_custom(|_iters| {
                let stats = run_workload(
                    &db,
                    &bank,
                    &RunConfig {
                        mpl: 8,
                        warmup: Duration::from_millis(50),
                        duration: Duration::from_millis(200),
                        seed: 5,
                    },
                );
                eprintln!(
                    "granularity {name}: {:.0} commits/s, unsafe/commit {:.4}",
                    stats.throughput(),
                    stats.aborts_per_commit(ssi_common::AbortKind::Unsafe),
                );
                if stats.commits == 0 {
                    Duration::from_millis(200)
                } else {
                    Duration::from_millis(200) / stats.commits as u32
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ssi_variants, bench_granularity);
criterion_main!(benches);
