//! Near-zero-cost in-engine latency recording.
//!
//! The engine wants latency distributions for operations that run millions
//! of times per second (commits, reads), which rules out an unconditional
//! `Instant::now()` pair per operation. [`SampledHist`] therefore samples:
//! a per-thread tick counter decides — *before* any clock is read — whether
//! this occurrence is measured, keeping the unsampled path to one
//! thread-local increment and a mask test. Sampled durations land in one of
//! a small number of sharded [`LatencyHistogram`]s (shard picked by a
//! per-thread index, so concurrent recorders almost never contend on a
//! shard lock), merged on demand by [`SampledHist::snapshot`].
//!
//! Sampling is 1-in-2^shift (power-of-two, so the decision is a mask test).
//! Quantiles are unaffected by uniform sampling; only `count()` shrinks by
//! the sampling factor. Rare events (fsync batches, checkpoints, GC passes)
//! bypass sampling via [`SampledHist::record`], which always records.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::hist::LatencyHistogram;

/// Number of histogram shards. Threads hash onto shards round-robin; with
/// typical worker counts near the core count, contention on a shard mutex
/// is negligible (and the critical section is an O(1) bucket increment).
const SHARDS: usize = 8;

static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Round-robin shard assignment, fixed per thread.
    static THREAD_SHARD: usize = NEXT_THREAD.fetch_add(1, Ordering::Relaxed) % SHARDS;
    /// The global sampling tick, shared by every `SampledHist` on this
    /// thread. Sharing one counter keeps the unsampled path to a single
    /// cell bump regardless of how many histograms the engine carries.
    static TICK: Cell<u64> = const { Cell::new(0) };
}

/// A latency histogram behind a power-of-two sampling gate.
pub struct SampledHist {
    /// `tick & mask == 0` selects a sample; 0 means "record everything".
    mask: u64,
    shards: [Mutex<LatencyHistogram>; SHARDS],
}

impl SampledHist {
    /// Creates a recorder sampling 1 in `2^shift` occurrences (`shift` 0
    /// records everything).
    pub fn new(shift: u32) -> Self {
        SampledHist {
            mask: (1u64 << shift.min(63)) - 1,
            shards: std::array::from_fn(|_| Mutex::new(LatencyHistogram::default())),
        }
    }

    /// Opens a sampled measurement: returns a start instant only for the
    /// occurrences the sampling gate selects. The decision is made before
    /// the clock is read, so unsampled occurrences cost one thread-local
    /// increment and a mask test.
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        if self.mask == 0 {
            return Some(Instant::now());
        }
        let sampled = TICK.with(|t| {
            let v = t.get().wrapping_add(1);
            t.set(v);
            v & self.mask == 0
        });
        sampled.then(Instant::now)
    }

    /// Closes a measurement opened by [`SampledHist::start`].
    #[inline]
    pub fn finish(&self, started: Option<Instant>) {
        if let Some(t0) = started {
            self.record(t0.elapsed());
        }
    }

    /// Records a duration unconditionally (rare events that want every
    /// occurrence counted).
    pub fn record(&self, d: Duration) {
        let shard = THREAD_SHARD.with(|s| *s);
        self.shards[shard].lock().record(d);
    }

    /// Merges every shard into one histogram.
    pub fn snapshot(&self) -> LatencyHistogram {
        let mut merged = LatencyHistogram::default();
        for shard in &self.shards {
            merged.merge(&shard.lock());
        }
        merged
    }

    /// The sampling factor (occurrences per recorded sample).
    pub fn sample_every(&self) -> u64 {
        self.mask + 1
    }
}

/// The engine's shared observability state: one sampled recorder per traced
/// operation plus the (optional) event trace. `Database` owns one behind an
/// `Arc`; the WAL and maintenance threads hold clones.
pub struct EngineMetrics {
    /// Whole `Transaction::commit()` latency (sampled).
    pub commit: SampledHist,
    /// Serialized commit-section latency (sampled).
    pub commit_section: SampledHist,
    /// Point-read latency (sampled).
    pub read: SampledHist,
    /// Range-scan latency (sampled).
    pub scan: SampledHist,
    /// WAL fsync-batch latency (unsampled — fsyncs are rare).
    pub fsync: SampledHist,
    /// Checkpoint latency (unsampled).
    pub checkpoint: SampledHist,
    /// GC-pass latency (unsampled).
    pub gc_pass: SampledHist,
    /// The event trace; disabled unless `Options::with_tracing` was set.
    pub trace: crate::trace::TraceHandle,
}

impl EngineMetrics {
    /// Builds the engine's recorders. `sample_shift` gates the hot-path
    /// histograms at 1-in-2^shift; rare-event histograms always record.
    pub fn new(sample_shift: u32, trace: crate::trace::TraceHandle) -> EngineMetrics {
        EngineMetrics {
            commit: SampledHist::new(sample_shift),
            commit_section: SampledHist::new(sample_shift),
            read: SampledHist::new(sample_shift),
            scan: SampledHist::new(sample_shift),
            fsync: SampledHist::new(0),
            checkpoint: SampledHist::new(0),
            gc_pass: SampledHist::new(0),
            trace,
        }
    }
}

impl Default for EngineMetrics {
    fn default() -> Self {
        EngineMetrics::new(6, crate::trace::TraceHandle::disabled())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsampled_recorder_records_everything() {
        let h = SampledHist::new(0);
        for _ in 0..100 {
            let t = h.start();
            assert!(t.is_some());
            h.finish(t);
        }
        assert_eq!(h.snapshot().count(), 100);
    }

    #[test]
    fn sampling_gate_selects_one_in_two_to_the_shift() {
        let h = SampledHist::new(3);
        assert_eq!(h.sample_every(), 8);
        let mut sampled = 0;
        for _ in 0..800 {
            if let Some(t) = h.start() {
                sampled += 1;
                h.finish(Some(t));
            }
        }
        // The tick is thread-local and shared, so this thread's phase is
        // arbitrary — but the rate over 800 ticks is exactly 100.
        assert_eq!(sampled, 100);
        assert_eq!(h.snapshot().count(), 100);
    }

    #[test]
    fn record_bypasses_the_gate() {
        let h = SampledHist::new(10);
        for i in 0..50u64 {
            h.record(Duration::from_nanos(i + 1));
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 50);
        assert!(snap.max() >= Duration::from_nanos(50));
    }

    #[test]
    fn concurrent_records_merge_losslessly() {
        let h = SampledHist::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..1000u64 {
                        h.record(Duration::from_nanos(i));
                    }
                });
            }
        });
        assert_eq!(h.snapshot().count(), 4000);
    }
}
