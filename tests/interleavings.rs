//! Exhaustive interleaving tests, reproducing the validation methodology of
//! Sec. 4.7 of the thesis: take a small set of transactions known to produce
//! write skew, execute *every* interleaving of their operations, and check
//! that Serializable SI never lets a non-serializable execution commit while
//! aborting as few serializable ones as possible.
//!
//! The transaction set is the read-only-anomaly example the thesis builds
//! its write-skew discussion on (Example 3 / Fig. 2.3):
//!
//! ```text
//! Tin:    r(x) r(z)   (read only)
//! Tpivot: r(y) w(x)
//! Tout:   w(y) w(z)
//! ```
//!
//! Tpivot is the pivot (Tin -> Tpivot via x, Tpivot -> Tout via y). Some
//! interleavings are genuinely non-serializable (e.g. when Tin begins after
//! Tout commits); we verify every committed outcome against the recorded
//! multiversion serialization graph.

use serializable_si::core::MvsgReport;
use serializable_si::{Database, IsolationLevel, Options, TableRef, Transaction};

/// One step of the interleaved schedule: which transaction performs its next
/// operation.
type Schedule = Vec<usize>;

/// Generates all interleavings of three transactions with the given number
/// of operations each.
fn interleavings(ops: [usize; 3]) -> Vec<Schedule> {
    fn recurse(remaining: [usize; 3], current: &mut Schedule, out: &mut Vec<Schedule>) {
        if remaining.iter().all(|&r| r == 0) {
            out.push(current.clone());
            return;
        }
        for txn in 0..3 {
            if remaining[txn] > 0 {
                let mut next = remaining;
                next[txn] -= 1;
                current.push(txn);
                recurse(next, current, out);
                current.pop();
            }
        }
    }
    let mut out = Vec::new();
    recurse(ops, &mut Schedule::new(), &mut out);
    out
}

struct Harness {
    db: Database,
    table: TableRef,
    txns: [Option<Transaction>; 3],
    committed: [bool; 3],
    aborted: [bool; 3],
}

impl Harness {
    fn new(level: IsolationLevel) -> Self {
        let db = Database::open(Options::default().with_isolation(level).with_history());
        let table = db.create_table("t").unwrap();
        let mut setup = db.begin();
        setup.put(&table, b"x", b"0").unwrap();
        setup.put(&table, b"y", b"0").unwrap();
        setup.put(&table, b"z", b"0").unwrap();
        setup.commit().unwrap();
        let txns = [Some(db.begin()), Some(db.begin()), Some(db.begin())];
        Harness {
            db,
            table,
            txns,
            committed: [false; 3],
            aborted: [false; 3],
        }
    }

    /// Every transaction has two operations plus a commit:
    /// Tin = [r(x), r(z)], Tpivot = [r(y), w(x)], Tout = [w(y), w(z)].
    fn ops(_txn: usize) -> usize {
        3
    }

    fn step(&mut self, txn: usize, step_no: usize) {
        if self.aborted[txn] {
            return;
        }
        let Some(handle) = self.txns[txn].as_mut() else {
            return;
        };
        let result = match (txn, step_no) {
            (0, 0) => handle.get(&self.table, b"x").map(|_| ()),
            (0, 1) => handle.get(&self.table, b"z").map(|_| ()),
            (1, 0) => handle.get(&self.table, b"y").map(|_| ()),
            (1, 1) => handle.put(&self.table, b"x", b"2"),
            (2, 0) => handle.put(&self.table, b"y", b"3"),
            (2, 1) => handle.put(&self.table, b"z", b"3"),
            // Final step: commit.
            _ => {
                let handle = self.txns[txn].take().unwrap();
                match handle.commit() {
                    Ok(()) => {
                        self.committed[txn] = true;
                        return;
                    }
                    Err(_) => {
                        self.aborted[txn] = true;
                        return;
                    }
                }
            }
        };
        if result.is_err() {
            self.aborted[txn] = true;
            self.txns[txn] = None;
        }
    }

    fn run(mut self, schedule: &Schedule) -> ([bool; 3], MvsgReport) {
        let mut progress = [0usize; 3];
        for &txn in schedule {
            self.step(txn, progress[txn]);
            progress[txn] += 1;
        }
        // Drop any transaction that could not finish (aborted mid-way).
        for slot in &mut self.txns {
            if let Some(handle) = slot.take() {
                handle.rollback();
            }
        }
        let report = self.db.history().unwrap().analyze();
        (self.committed, report)
    }
}

#[test]
fn every_interleaving_committed_under_ssi_is_serializable() {
    let schedules = interleavings([Harness::ops(0), Harness::ops(1), Harness::ops(2)]);
    assert_eq!(schedules.len(), 1680, "3 transactions with 3 slots each");
    let mut aborted_some = 0usize;
    for schedule in &schedules {
        let harness = Harness::new(IsolationLevel::SerializableSnapshotIsolation);
        let (committed, report) = harness.run(schedule);
        assert!(
            report.is_serializable(),
            "non-serializable execution committed under SSI: schedule {schedule:?}, \
             committed {committed:?}, cycle {:?}",
            report.cycle
        );
        if committed.iter().any(|c| !c) {
            aborted_some += 1;
        }
    }
    // Sanity on both sides: SSI must abort something (the non-serializable
    // interleavings exist) but must not abort everything (most interleavings
    // are serializable; false positives are allowed but bounded).
    assert!(aborted_some > 0, "SSI never aborted anything");
    assert!(
        aborted_some < schedules.len(),
        "SSI aborted something in every one of the {} interleavings",
        schedules.len()
    );
}

#[test]
fn si_commits_every_interleaving_including_nonserializable_ones() {
    let schedules = interleavings([Harness::ops(0), Harness::ops(1), Harness::ops(2)]);
    let mut nonserializable = 0usize;
    for schedule in &schedules {
        let harness = Harness::new(IsolationLevel::SnapshotIsolation);
        let (committed, report) = harness.run(schedule);
        // Under plain SI nothing in this set ever conflicts on writes, so
        // every transaction commits in every interleaving.
        assert_eq!(committed, [true, true, true], "schedule {schedule:?}");
        if !report.is_serializable() {
            nonserializable += 1;
        }
    }
    assert!(
        nonserializable > 0,
        "at least one interleaving must be non-serializable (that is the point \
         of the example)"
    );
}

#[test]
fn s2pl_never_commits_a_nonserializable_interleaving() {
    // S2PL blocks instead of aborting, and this harness is single-threaded,
    // so a blocked operation would hang; use a short lock timeout and treat
    // timeouts as aborts.
    let schedules = interleavings([Harness::ops(0), Harness::ops(1), Harness::ops(2)]);
    for schedule in schedules.iter().step_by(7) {
        let mut options = Options::default()
            .with_isolation(IsolationLevel::StrictTwoPhaseLocking)
            .with_history();
        options.lock.wait_timeout = std::time::Duration::from_millis(50);
        let db = Database::open(options);
        let table = db.create_table("t").unwrap();
        let mut setup = db.begin();
        setup.put(&table, b"x", b"0").unwrap();
        setup.put(&table, b"y", b"0").unwrap();
        setup.commit().unwrap();
        let mut harness = Harness {
            db,
            table,
            txns: [None, None, None],
            committed: [false; 3],
            aborted: [false; 3],
        };
        harness.txns = [
            Some(harness.db.begin()),
            Some(harness.db.begin()),
            Some(harness.db.begin()),
        ];
        let (_committed, report) = harness.run(schedule);
        assert!(report.is_serializable(), "schedule {schedule:?}");
    }
}
