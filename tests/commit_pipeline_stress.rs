//! Randomized multi-threaded stress tests for the lock-free commit
//! pipeline: N writer/reader threads hammer a small hot key set under
//! Serializable SI with history recording on, and every committed history
//! is replayed through the MVSG verifier — no interleaving may commit a
//! non-serializable execution, under either conflict-flag representation
//! (CAS state words for the basic variant, pair-locked edges for the
//! enhanced one).
//!
//! This is the regression net for the removal of the global serialization
//! mutex: the write-skew-shaped workload maximizes pivot creation races
//! between `mark_conflict` and concurrent commits, exactly the windows the
//! old mutex closed wholesale.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serializable_si::{
    CommitPhase, Database, Error, IsolationLevel, Options, SsiOptions, SsiVariant, TableRef, TxnId,
};

/// Outcome counters of one stress run.
#[derive(Default)]
struct StressStats {
    committed: AtomicU64,
    aborted: AtomicU64,
}

fn setup(db: &Database, keys: u64) -> TableRef {
    let table = db.create_table("hot").unwrap();
    let mut txn = db.begin();
    for i in 0..keys {
        txn.put(&table, &i.to_be_bytes(), b"0").unwrap();
    }
    txn.commit().unwrap();
    table
}

/// One randomized transaction: mostly the write-skew shape (read two hot
/// keys, overwrite one of them), mixed with blind writes, read-only
/// multi-gets and occasional range scans. Returns `Err` only for
/// non-retryable failures.
fn run_one(
    db: &Database,
    table: &TableRef,
    rng: &mut SmallRng,
    keys: u64,
    payload: u64,
) -> Result<(), Error> {
    let a = rng.gen_range(0..keys);
    let b = (a + 1 + rng.gen_range(0..keys.saturating_sub(1).max(1))) % keys;
    let value = payload.to_be_bytes();
    match rng.gen_range(0..10u32) {
        // Write skew: read both accounts, overwrite one.
        0..=4 => {
            let mut txn = db.begin_with(IsolationLevel::SerializableSnapshotIsolation);
            txn.get(table, &a.to_be_bytes())?;
            txn.get(table, &b.to_be_bytes())?;
            let victim = if rng.gen_range(0..2u32) == 0 { a } else { b };
            txn.put(table, &victim.to_be_bytes(), &value)?;
            txn.commit()
        }
        // Blind read-modify-write through a locking read.
        5..=6 => {
            let mut txn = db.begin_with(IsolationLevel::SerializableSnapshotIsolation);
            txn.get_for_update(table, &a.to_be_bytes())?;
            txn.put(table, &a.to_be_bytes(), &value)?;
            txn.commit()
        }
        // Read-only multi-get (commits suspended while holding SIREADs).
        7..=8 => {
            let mut txn = db.begin_with(IsolationLevel::SerializableSnapshotIsolation);
            for _ in 0..3 {
                let k = rng.gen_range(0..keys);
                txn.get(table, &k.to_be_bytes())?;
            }
            txn.commit()
        }
        // Range scan over the whole hot set (exercises gap SIREADs and the
        // paging cursor) followed by a write.
        _ => {
            let mut txn = db.begin_with(IsolationLevel::SerializableSnapshotIsolation);
            txn.scan_prefix(table, b"")?;
            txn.put(table, &a.to_be_bytes(), &value)?;
            txn.commit()
        }
    }
}

fn stress(variant: SsiVariant, threads: usize, iters: u64, keys: u64, seed: u64) {
    let options = Options {
        ssi: serializable_si::SsiOptions {
            variant,
            ..Default::default()
        },
        ..Options::default()
    }
    .with_history();
    let db = Database::open(options);
    let table = setup(&db, keys);
    let stats = StressStats::default();

    std::thread::scope(|scope| {
        for t in 0..threads {
            let db = db.clone();
            let table = table.clone();
            let stats = &stats;
            scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0x9E37));
                for i in 0..iters {
                    let payload = (t as u64) << 32 | i;
                    match run_one(&db, &table, &mut rng, keys, payload) {
                        Ok(()) => {
                            stats.committed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) if e.is_retryable() => {
                            stats.aborted.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
            });
        }
    });

    let committed = stats.committed.load(Ordering::Relaxed);
    assert!(committed > 0, "stress run committed nothing");

    // The regression net proper: replay the committed history through the
    // multiversion serialization graph. A cycle means SSI let a
    // non-serializable execution commit — the exact failure a lost
    // conflict flag or a commit/marking race would produce.
    let report = db.history().unwrap().analyze();
    if !report.is_serializable() {
        let cycle = report.cycle.clone().unwrap_or_default();
        let mut detail = String::new();
        for txn in db.history().unwrap().snapshot() {
            if cycle.contains(&txn.id) {
                detail.push_str(&format!(
                    "\n  {:?} begin={} commit={} reads={:?} writes={:?}",
                    txn.id,
                    txn.begin_ts,
                    txn.commit_ts,
                    txn.reads
                        .iter()
                        .map(|r| (r.key.clone(), r.version_ts))
                        .collect::<Vec<_>>(),
                    txn.writes.iter().map(|w| w.key.clone()).collect::<Vec<_>>(),
                ));
            }
        }
        panic!(
            "non-serializable history committed under {variant:?}: cycle {cycle:?} \
             (committed {committed}, aborted {}){detail}",
            stats.aborted.load(Ordering::Relaxed),
        );
    }

    // Read-side commit resolution: under the speculative pipeline no read
    // ever parks on the ordered-publication chain — readers resolve
    // mid-window creators themselves.
    let mgr = db.transaction_manager();
    assert_eq!(
        mgr.stats().read_publication_waits.load(Ordering::Relaxed),
        0,
        "a read parked on the publication chain"
    );

    // Resource invariants: with every handle finished, one cleanup round
    // must drain the suspended list, the registry and every SIREAD lock.
    mgr.cleanup_suspended(db.lock_manager());
    assert_eq!(mgr.suspended_len(), 0, "suspended transactions leaked");
    assert_eq!(mgr.registry_len(), 0, "registry entries leaked");
    assert_eq!(
        db.lock_manager().grant_count(),
        0,
        "lock grants leaked after cleanup"
    );
}

#[test]
fn enhanced_variant_stays_serializable_under_hot_key_stress() {
    stress(SsiVariant::Enhanced, 8, 500, 8, 0xC0FFEE);
}

#[test]
fn basic_variant_stays_serializable_under_hot_key_stress() {
    stress(SsiVariant::Basic, 8, 500, 8, 0xBEEF);
}

#[test]
fn enhanced_variant_stays_serializable_on_wider_key_range() {
    // More keys, fewer collisions: exercises the suspended-cleanup and
    // publication pipeline more than the abort paths.
    stress(SsiVariant::Enhanced, 6, 600, 64, 42);
}

/// One randomized churn transaction: inserts and deletes of *non-preloaded*
/// keys racing with range scans, so gap locking, the paging cursor's
/// missed-key recheck and phantom detection are all on the hot path.
fn run_churn(
    db: &Database,
    table: &TableRef,
    rng: &mut SmallRng,
    keys: u64,
    payload: u64,
) -> Result<(), Error> {
    // Churn keys live between the preloaded hot keys (odd suffix bytes).
    let churn_key = |i: u64| {
        let mut k = i.to_be_bytes().to_vec();
        k.push(1);
        k
    };
    match rng.gen_range(0..6u32) {
        // Insert a churn key.
        0..=1 => {
            let mut txn = db.begin_with(IsolationLevel::SerializableSnapshotIsolation);
            let k = churn_key(rng.gen_range(0..keys));
            txn.put(table, &k, &payload.to_be_bytes())?;
            txn.commit()
        }
        // Delete a churn key (tombstone).
        2 => {
            let mut txn = db.begin_with(IsolationLevel::SerializableSnapshotIsolation);
            let k = churn_key(rng.gen_range(0..keys));
            txn.delete(table, &k)?;
            txn.commit()
        }
        // Scan the whole range, then write based on what was seen.
        3..=4 => {
            let mut txn = db.begin_with(IsolationLevel::SerializableSnapshotIsolation);
            let rows = txn.scan_prefix(table, b"")?;
            let target = rng.gen_range(0..keys).to_be_bytes();
            txn.put(table, &target, &(rows.len() as u64).to_be_bytes())?;
            txn.commit()
        }
        // Read-modify-write on a preloaded key.
        _ => {
            let mut txn = db.begin_with(IsolationLevel::SerializableSnapshotIsolation);
            let k = rng.gen_range(0..keys).to_be_bytes();
            txn.get_for_update(table, &k)?;
            txn.put(table, &k, &payload.to_be_bytes())?;
            txn.commit()
        }
    }
}

#[test]
fn insert_delete_churn_with_scans_stays_serializable() {
    // Scans race with inserts and deletes over a small range: the phantom
    // machinery (gap SIREADs, the paging cursor's missed-key recheck and
    // the gap-region fixpoint locking) must keep every committed history
    // serializable and must never deadlock against itself.
    let options = Options::default().with_history();
    let db = Database::open(options);
    let table = setup(&db, 8);
    let stats = StressStats::default();

    std::thread::scope(|scope| {
        for t in 0..6usize {
            let db = db.clone();
            let table = table.clone();
            let stats = &stats;
            scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(0xD1CE ^ (t as u64).wrapping_mul(77));
                for i in 0..300u64 {
                    let payload = (t as u64) << 32 | i;
                    match run_churn(&db, &table, &mut rng, 8, payload) {
                        Ok(()) => {
                            stats.committed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) if e.is_retryable() => {
                            stats.aborted.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
            });
        }
    });

    assert!(stats.committed.load(Ordering::Relaxed) > 0);
    let report = db.history().unwrap().analyze();
    assert!(
        report.is_serializable(),
        "non-serializable churn history: cycle {:?}",
        report.cycle
    );
    assert_eq!(
        db.transaction_manager()
            .stats()
            .read_publication_waits
            .load(Ordering::Relaxed),
        0,
        "a read parked on the publication chain"
    );
}

/// Installs a commit pause hook that holds the transaction whose id is in
/// `straggler_id` at `PreFinalize` (timestamp stamped and deposited,
/// finalize withheld) until `hold` clears, flagging `held` on entry.
fn install_straggler_hook(
    db: &Database,
    straggler_id: &Arc<AtomicU64>,
    hold: &Arc<AtomicBool>,
    held: &Arc<AtomicBool>,
) {
    let straggler_id = Arc::clone(straggler_id);
    let hold = Arc::clone(hold);
    let held = Arc::clone(held);
    db.transaction_manager()
        .set_commit_pause_hook(Some(Arc::new(move |id: TxnId, phase: CommitPhase| {
            if phase == CommitPhase::PreFinalize && id.0 == straggler_id.load(Ordering::Acquire) {
                held.store(true, Ordering::Release);
                while hold.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            }
        })));
}

/// The straggler choreography: one committer is held between stamping its
/// timestamp and finalizing. Readers must resolve its provisional versions
/// themselves (no parking on the publication chain), later committers must
/// not queue behind it, and a speculative reader's own commit must wait for
/// the straggler to settle.
fn straggler_choreography(variant: SsiVariant) {
    let options = Options {
        ssi: SsiOptions {
            variant,
            ..Default::default()
        },
        ..Options::default()
    }
    .with_history();
    let db = Database::open(options);
    let table = db.create_table("t").unwrap();
    let mut init = db.begin();
    init.put(&table, b"a", b"0").unwrap();
    init.put(&table, b"b", b"0").unwrap();
    init.commit().unwrap();

    let straggler_id = Arc::new(AtomicU64::new(0));
    let hold = Arc::new(AtomicBool::new(true));
    let held = Arc::new(AtomicBool::new(false));
    install_straggler_hook(&db, &straggler_id, &hold, &held);

    std::thread::scope(|scope| {
        let straggler = {
            let db = db.clone();
            let table = table.clone();
            let straggler_id = Arc::clone(&straggler_id);
            scope.spawn(move || {
                let mut txn = db.begin_with(IsolationLevel::SerializableSnapshotIsolation);
                txn.put(&table, b"a", b"1").unwrap();
                straggler_id.store(txn.id().0, Ordering::Release);
                txn.commit().unwrap();
            })
        };
        while !held.load(Ordering::Acquire) {
            std::thread::yield_now();
        }

        // The straggler's timestamp is deposited, so a fresh snapshot
        // covers it; its version is still provisional. The read resolves it
        // speculatively — value visible, no publication wait.
        let mut reader = db.begin_with(IsolationLevel::SerializableSnapshotIsolation);
        let v = reader.get(&table, b"a").unwrap().unwrap();
        assert_eq!(&v[..], b"1", "provisional version not visible to reader");

        // A later committer does not queue behind the straggler: this
        // commit completes while the straggler is held (the test would hang
        // here under the old ordered-publication wait).
        let mut later = db.begin_with(IsolationLevel::SerializableSnapshotIsolation);
        later.put(&table, b"b", b"2").unwrap();
        later.commit().unwrap();

        // The speculative reader's own commit must wait for its dependency.
        let reader_commit = scope.spawn(move || reader.commit());
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(
            !reader_commit.is_finished(),
            "speculative reader committed before its dependency settled"
        );

        hold.store(false, Ordering::Release);
        straggler.join().unwrap();
        reader_commit.join().unwrap().unwrap();
    });
    db.transaction_manager().set_commit_pause_hook(None);

    let stats = db.transaction_manager().stats();
    assert!(stats.speculative_reads.load(Ordering::Relaxed) >= 1);
    assert!(stats.commit_dependencies.load(Ordering::Relaxed) >= 1);
    assert_eq!(
        stats.read_publication_waits.load(Ordering::Relaxed),
        0,
        "a read parked on the publication chain"
    );
    let report = db.history().unwrap().analyze();
    assert!(
        report.is_serializable(),
        "straggler choreography produced a non-serializable history"
    );
}

#[test]
fn straggler_committer_never_blocks_readers_enhanced() {
    straggler_choreography(SsiVariant::Enhanced);
}

#[test]
fn straggler_committer_never_blocks_readers_basic() {
    straggler_choreography(SsiVariant::Basic);
}

#[test]
fn dependency_cascade_dooms_speculative_readers() {
    // A committer that fails its finalize re-check must drag every
    // speculative reader of its provisional versions down with it. Basic
    // variant: markers keep setting conflict flags on a word inside its
    // commit window, so completing the pivot mid-window makes the finalize
    // fail organically.
    let options = Options {
        ssi: SsiOptions {
            variant: SsiVariant::Basic,
            ..Default::default()
        },
        ..Options::default()
    }
    .with_history();
    let db = Database::open(options);
    let table = db.create_table("t").unwrap();
    let mut init = db.begin();
    init.put(&table, b"x", b"0").unwrap();
    init.put(&table, b"y", b"0").unwrap();
    init.commit().unwrap();

    let straggler_id = Arc::new(AtomicU64::new(0));
    let hold = Arc::new(AtomicBool::new(true));
    let held = Arc::new(AtomicBool::new(false));
    install_straggler_hook(&db, &straggler_id, &hold, &held);

    std::thread::scope(|scope| {
        // Pins its snapshot before the straggler's timestamp exists.
        let mut r2 = db.begin_with(IsolationLevel::SerializableSnapshotIsolation);
        r2.get(&table, b"x").unwrap();

        let straggler = {
            let db = db.clone();
            let table = table.clone();
            let straggler_id = Arc::clone(&straggler_id);
            scope.spawn(move || {
                let mut t = db.begin_with(IsolationLevel::SerializableSnapshotIsolation);
                t.get(&table, b"x").unwrap();
                t.put(&table, b"y", b"1").unwrap();
                straggler_id.store(t.id().0, Ordering::Release);
                t.commit()
            })
        };
        while !held.load(Ordering::Acquire) {
            std::thread::yield_now();
        }

        // r2's snapshot predates the straggler's version of y, so the read
        // sees a newer invisible version and records `r2 --rw--> straggler`:
        // the straggler gains its *in* edge mid-window.
        let stale = r2.get(&table, b"y").unwrap().unwrap();
        assert_eq!(&stale[..], b"0");

        // Overwriting x conflicts with the straggler's SIREAD on it: the
        // straggler gains its *out* edge mid-window and is now a pivot.
        let mut w = db.begin_with(IsolationLevel::SerializableSnapshotIsolation);
        w.put(&table, b"x", b"2").unwrap();
        w.commit().unwrap();

        // A fresh reader takes the straggler's provisional y speculatively.
        let mut r = db.begin_with(IsolationLevel::SerializableSnapshotIsolation);
        let v = r.get(&table, b"y").unwrap().unwrap();
        assert_eq!(&v[..], b"1", "provisional version not visible");

        // Release: the straggler's finalize re-check sees in && out and
        // fails; the abort cascades into the speculative reader.
        hold.store(false, Ordering::Release);
        let err = straggler.join().unwrap().unwrap_err();
        assert!(err.is_retryable(), "straggler must abort retryably: {err}");
        assert!(
            r.commit().is_err(),
            "speculative reader of an aborted creator must not commit"
        );
        drop(r2);
    });
    db.transaction_manager().set_commit_pause_hook(None);

    let stats = db.transaction_manager().stats();
    assert!(
        stats.dependency_cascade_aborts.load(Ordering::Relaxed) >= 1,
        "cascade abort not counted"
    );
    let report = db.history().unwrap().analyze();
    assert!(
        report.is_serializable(),
        "cascade history not serializable (dirty read escaped?)"
    );
    // The aborted straggler's value must never appear as a committed read.
    for txn in db.history().unwrap().snapshot() {
        for read in &txn.reads {
            assert!(
                !read.speculative || read.version_ts.is_some(),
                "committed speculative read lost its version"
            );
        }
    }
}
