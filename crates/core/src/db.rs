//! The embedded database: catalog + lock manager + transaction manager +
//! write-ahead log, wired together by [`Options`].

use std::sync::Arc;

use ssi_common::{IsolationLevel, Result, TableId};
use ssi_lock::LockManager;
use ssi_storage::{Catalog, PageMap, Table, WriteAheadLog};

use crate::manager::TransactionManager;
use crate::options::{LockGranularity, Options};
use crate::txn::Transaction;
use crate::verify::HistoryRecorder;

/// Handle to a table, cheap to clone and pass to transaction operations.
#[derive(Clone)]
pub struct TableRef {
    pub(crate) table: Arc<Table>,
}

impl TableRef {
    /// Table id.
    pub fn id(&self) -> TableId {
        self.table.id()
    }

    /// Table name.
    pub fn name(&self) -> &str {
        self.table.name()
    }

    /// Number of distinct keys currently stored (including tombstoned ones).
    pub fn key_count(&self) -> usize {
        self.table.key_count()
    }
}

impl std::fmt::Debug for TableRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TableRef({})", self.table.name())
    }
}

/// Internal shared state of a database.
pub(crate) struct DbInner {
    pub(crate) options: Options,
    pub(crate) catalog: Catalog,
    pub(crate) locks: LockManager,
    pub(crate) txns: TransactionManager,
    pub(crate) wal: WriteAheadLog,
    pub(crate) pages: Option<PageMap>,
    pub(crate) history: Option<HistoryRecorder>,
}

/// An embedded multi-version database offering snapshot isolation, strict
/// two-phase locking and Serializable Snapshot Isolation.
///
/// ```
/// use ssi_core::{Database, Options};
/// use ssi_common::IsolationLevel;
///
/// let db = Database::open(Options::default());
/// let accounts = db.create_table("accounts").unwrap();
///
/// let mut txn = db.begin();
/// txn.put(&accounts, b"alice", b"100").unwrap();
/// txn.commit().unwrap();
///
/// let mut reader = db.begin_with(IsolationLevel::SnapshotIsolation);
/// assert_eq!(reader.get(&accounts, b"alice").unwrap().as_deref(), Some(b"100".as_slice()));
/// reader.commit().unwrap();
/// ```
#[derive(Clone)]
pub struct Database {
    pub(crate) inner: Arc<DbInner>,
}

impl Database {
    /// Opens a new in-memory database with the given options.
    pub fn open(options: Options) -> Self {
        let pages = match options.granularity {
            LockGranularity::Row => None,
            LockGranularity::Page { pages } => Some(PageMap::new(pages)),
        };
        let history = if options.record_history {
            Some(HistoryRecorder::new())
        } else {
            None
        };
        let inner = DbInner {
            locks: LockManager::new(options.lock.clone()),
            wal: WriteAheadLog::new(options.wal.clone()),
            txns: TransactionManager::new(),
            catalog: Catalog::new(),
            pages,
            history,
            options,
        };
        Database {
            inner: Arc::new(inner),
        }
    }

    /// Opens a database with default options (Serializable SI, row-level
    /// locking, no commit flush).
    pub fn open_default() -> Self {
        Self::open(Options::default())
    }

    /// The options the database was opened with.
    pub fn options(&self) -> &Options {
        &self.inner.options
    }

    /// Creates a table.
    pub fn create_table(&self, name: &str) -> Result<TableRef> {
        Ok(TableRef {
            table: self.inner.catalog.create_table(name)?,
        })
    }

    /// Looks up a table by name.
    pub fn table(&self, name: &str) -> Result<TableRef> {
        Ok(TableRef {
            table: self.inner.catalog.table(name)?,
        })
    }

    /// Names of all tables.
    pub fn table_names(&self) -> Vec<String> {
        self.inner.catalog.table_names()
    }

    /// Begins a transaction at the database's default isolation level.
    pub fn begin(&self) -> Transaction {
        self.begin_with(self.inner.options.default_isolation)
    }

    /// Begins a transaction at an explicit isolation level.
    pub fn begin_with(&self, isolation: IsolationLevel) -> Transaction {
        Transaction::new(self.inner.clone(), isolation, false)
    }

    /// Begins a transaction that the application promises is read-only.
    ///
    /// When [`Options::read_only_queries_at_si`] is set and the requested
    /// level is Serializable SI, the transaction is silently run at plain SI
    /// (Sec. 3.8): it takes no SIREAD locks and can never abort with the
    /// "unsafe" error, at the cost of the whole mix no longer being
    /// guaranteed serializable with respect to such queries.
    pub fn begin_read_only(&self) -> Transaction {
        let requested = self.inner.options.default_isolation;
        let effective = if self.inner.options.read_only_queries_at_si
            && requested == IsolationLevel::SerializableSnapshotIsolation
        {
            IsolationLevel::SnapshotIsolation
        } else {
            requested
        };
        Transaction::new(self.inner.clone(), effective, true)
    }

    /// The lock manager (exposed for statistics and tests).
    pub fn lock_manager(&self) -> &LockManager {
        &self.inner.locks
    }

    /// The transaction manager (exposed for statistics and tests).
    pub fn transaction_manager(&self) -> &TransactionManager {
        &self.inner.txns
    }

    /// The write-ahead log (exposed for statistics and tests).
    pub fn wal(&self) -> &WriteAheadLog {
        &self.inner.wal
    }

    /// The history recorder, if the database was opened with
    /// [`Options::record_history`].
    pub fn history(&self) -> Option<&HistoryRecorder> {
        self.inner.history.as_ref()
    }

    /// Garbage-collects row versions that are no longer visible to any
    /// active transaction. Returns the number of versions reclaimed.
    pub fn purge_old_versions(&self) -> usize {
        let horizon = match self.inner.txns.oldest_active_begin() {
            u64::MAX => self.inner.txns.current_ts(),
            ts => ts,
        };
        self.inner
            .catalog
            .tables()
            .iter()
            .map(|t| t.purge_versions(horizon))
            .sum()
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("tables", &self.inner.catalog.len())
            .field("isolation", &self.inner.options.default_isolation)
            .field("granularity", &self.inner.options.granularity)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_create_and_lookup_tables() {
        let db = Database::open_default();
        let t = db.create_table("accounts").unwrap();
        assert_eq!(t.name(), "accounts");
        assert_eq!(db.table("accounts").unwrap().id(), t.id());
        assert!(db.table("missing").is_err());
        assert_eq!(db.table_names(), vec!["accounts"]);
        assert_eq!(t.key_count(), 0);
    }

    #[test]
    fn begin_read_only_downgrades_when_configured() {
        let opts = Options {
            read_only_queries_at_si: true,
            ..Options::default()
        };
        let db = Database::open(opts);
        let q = db.begin_read_only();
        assert_eq!(q.isolation(), IsolationLevel::SnapshotIsolation);
        let u = db.begin();
        assert_eq!(u.isolation(), IsolationLevel::SerializableSnapshotIsolation);
    }

    #[test]
    fn begin_read_only_keeps_level_when_not_configured() {
        let db = Database::open_default();
        let q = db.begin_read_only();
        assert_eq!(q.isolation(), IsolationLevel::SerializableSnapshotIsolation);
    }

    #[test]
    fn history_recorder_only_present_when_enabled() {
        assert!(Database::open_default().history().is_none());
        assert!(Database::open(Options::default().with_history())
            .history()
            .is_some());
    }
}
