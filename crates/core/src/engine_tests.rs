//! End-to-end tests of the engine's isolation behaviour on a single thread
//! (interleavings are driven explicitly by ordering operations on multiple
//! open transactions). Multi-threaded and property-based tests live in the
//! workspace-level `tests/` directory.

use ssi_common::{AbortKind, Error, IsolationLevel};

use crate::{Database, Options, SsiVariant};

fn db_with(level: IsolationLevel) -> Database {
    Database::open(Options::default().with_isolation(level))
}

fn si_db() -> Database {
    db_with(IsolationLevel::SnapshotIsolation)
}

fn ssi_db() -> Database {
    db_with(IsolationLevel::SerializableSnapshotIsolation)
}

// ---------------------------------------------------------------------------
// Basic single-transaction behaviour
// ---------------------------------------------------------------------------

#[test]
fn read_your_own_writes_and_deletes() {
    let db = ssi_db();
    let t = db.create_table("t").unwrap();
    let mut txn = db.begin();
    assert_eq!(txn.get(&t, b"k").unwrap(), None);
    txn.put(&t, b"k", b"v1").unwrap();
    assert_eq!(
        txn.get(&t, b"k").unwrap().as_deref(),
        Some(b"v1".as_slice())
    );
    txn.put(&t, b"k", b"v2").unwrap();
    assert_eq!(
        txn.get(&t, b"k").unwrap().as_deref(),
        Some(b"v2".as_slice())
    );
    txn.delete(&t, b"k").unwrap();
    assert_eq!(txn.get(&t, b"k").unwrap(), None);
    txn.commit().unwrap();

    let mut check = db.begin();
    assert_eq!(check.get(&t, b"k").unwrap(), None);
    check.commit().unwrap();
}

#[test]
fn rollback_undoes_writes() {
    let db = ssi_db();
    let t = db.create_table("t").unwrap();
    let mut txn = db.begin();
    txn.put(&t, b"k", b"v").unwrap();
    txn.rollback();

    let mut check = db.begin();
    assert_eq!(check.get(&t, b"k").unwrap(), None);
    check.commit().unwrap();
    // The rolled-back version must not linger in the table.
    assert_eq!(t.key_count(), 0);
}

#[test]
fn dropping_an_active_transaction_rolls_back() {
    let db = ssi_db();
    let t = db.create_table("t").unwrap();
    {
        let mut txn = db.begin();
        txn.put(&t, b"k", b"v").unwrap();
        // dropped here
    }
    let mut check = db.begin();
    assert_eq!(check.get(&t, b"k").unwrap(), None);
    check.commit().unwrap();
    assert_eq!(db.lock_manager().grant_count(), 0, "locks must be released");
}

#[test]
fn operations_after_commit_fail() {
    let db = ssi_db();
    let t = db.create_table("t").unwrap();
    let mut txn = db.begin();
    txn.put(&t, b"k", b"v").unwrap();
    txn.commit().unwrap();
    // An empty transaction commits fine, and rollback of a fresh handle is a
    // no-op; neither leaves any locks behind.
    let txn2 = db.begin();
    txn2.commit().unwrap();
    let txn3 = db.begin();
    txn3.rollback();
    assert_eq!(db.lock_manager().grant_count(), 0);
}

#[test]
fn scans_return_rows_in_key_order() {
    let db = ssi_db();
    let t = db.create_table("t").unwrap();
    let mut setup = db.begin();
    for k in [b"b", b"a", b"d", b"c"] {
        setup.put(&t, k, k).unwrap();
    }
    setup.commit().unwrap();

    let mut txn = db.begin();
    let rows = txn
        .scan(&t, std::ops::Bound::Unbounded, std::ops::Bound::Unbounded)
        .unwrap();
    let keys: Vec<&[u8]> = rows.iter().map(|(k, _)| k.as_slice()).collect();
    assert_eq!(keys, vec![b"a" as &[u8], b"b", b"c", b"d"]);
    txn.commit().unwrap();
}

#[test]
fn scan_prefix_limits_results() {
    let db = ssi_db();
    let t = db.create_table("t").unwrap();
    let mut setup = db.begin();
    setup.put(&t, b"order:1:line:1", b"a").unwrap();
    setup.put(&t, b"order:1:line:2", b"b").unwrap();
    setup.put(&t, b"order:2:line:1", b"c").unwrap();
    setup.commit().unwrap();

    let mut txn = db.begin();
    let rows = txn.scan_prefix(&t, b"order:1:").unwrap();
    assert_eq!(rows.len(), 2);
    txn.commit().unwrap();
}

// ---------------------------------------------------------------------------
// Snapshot isolation semantics
// ---------------------------------------------------------------------------

#[test]
fn si_readers_see_stable_snapshot() {
    let db = si_db();
    let t = db.create_table("t").unwrap();
    let mut setup = db.begin();
    setup.put(&t, b"x", b"1").unwrap();
    setup.commit().unwrap();

    let mut reader = db.begin();
    assert_eq!(
        reader.get(&t, b"x").unwrap().as_deref(),
        Some(b"1".as_slice())
    );

    let mut writer = db.begin();
    writer.put(&t, b"x", b"2").unwrap();
    writer.commit().unwrap();

    // The reader's snapshot predates the writer's commit.
    assert_eq!(
        reader.get(&t, b"x").unwrap().as_deref(),
        Some(b"1".as_slice())
    );
    reader.commit().unwrap();

    let mut after = db.begin();
    assert_eq!(
        after.get(&t, b"x").unwrap().as_deref(),
        Some(b"2".as_slice())
    );
    after.commit().unwrap();
}

#[test]
fn si_first_committer_wins() {
    let db = si_db();
    let t = db.create_table("t").unwrap();
    let mut setup = db.begin();
    setup.put(&t, b"x", b"0").unwrap();
    setup.commit().unwrap();

    let mut t1 = db.begin();
    let mut t2 = db.begin();
    // Pin both snapshots before either writes.
    t1.get(&t, b"x").unwrap();
    t2.get(&t, b"x").unwrap();

    t1.put(&t, b"x", b"1").unwrap();
    t1.commit().unwrap();

    // T2 updates the same item after T1 (which overlapped it) committed: the
    // first-committer-wins rule must abort it.
    let err = t2.put(&t, b"x", b"2").unwrap_err();
    assert_eq!(err.abort_kind(), Some(AbortKind::UpdateConflict));
}

#[test]
fn si_single_statement_update_never_conflicts() {
    // The Sec. 4.5 optimization: because the snapshot is chosen after the
    // write lock is granted, two single-statement increments serialize on
    // the lock and both commit.
    let db = si_db();
    let t = db.create_table("t").unwrap();
    let mut setup = db.begin();
    setup.put(&t, b"ctr", b"0").unwrap();
    setup.commit().unwrap();

    for _ in 0..2 {
        let mut txn = db.begin();
        let v = txn.get_for_update(&t, b"ctr").unwrap().unwrap();
        let n: i64 = String::from_utf8(v.to_vec()).unwrap().parse().unwrap();
        txn.put(&t, b"ctr", (n + 1).to_string().as_bytes()).unwrap();
        txn.commit().unwrap();
    }
    let mut check = db.begin();
    assert_eq!(
        check.get(&t, b"ctr").unwrap().as_deref(),
        Some(b"2".as_slice())
    );
    check.commit().unwrap();
}

#[test]
fn si_permits_write_skew_but_ssi_does_not() {
    // Example 2 of the thesis: x + y must stay positive.
    for (level, expect_skew) in [
        (IsolationLevel::SnapshotIsolation, true),
        (IsolationLevel::SerializableSnapshotIsolation, false),
    ] {
        let db = db_with(level);
        let t = db.create_table("acct").unwrap();
        let mut setup = db.begin();
        setup.put(&t, b"x", b"50").unwrap();
        setup.put(&t, b"y", b"50").unwrap();
        setup.commit().unwrap();

        let mut t1 = db.begin();
        let mut t2 = db.begin();
        let read_sum = |txn: &mut crate::Transaction| -> i64 {
            let x: i64 = String::from_utf8(txn.get(&t, b"x").unwrap().unwrap().to_vec())
                .unwrap()
                .parse()
                .unwrap();
            let y: i64 = String::from_utf8(txn.get(&t, b"y").unwrap().unwrap().to_vec())
                .unwrap()
                .parse()
                .unwrap();
            x + y
        };
        // Both see 100 and each withdraws 70 from a different account.
        assert_eq!(read_sum(&mut t1), 100);
        assert_eq!(read_sum(&mut t2), 100);
        let r1 = t1.put(&t, b"x", b"-20").and_then(|_| t1.commit());
        let r2 = t2.put(&t, b"y", b"-20").and_then(|_| t2.commit());

        let both_committed = r1.is_ok() && r2.is_ok();
        if expect_skew {
            assert!(both_committed, "plain SI should allow the interleaving");
        } else {
            assert!(
                !both_committed,
                "Serializable SI must abort one transaction"
            );
            let unsafe_abort = [r1, r2]
                .into_iter()
                .filter_map(|r| r.err())
                .any(|e| e.abort_kind() == Some(AbortKind::Unsafe));
            assert!(unsafe_abort, "the abort must be an unsafe-structure abort");
        }
    }
}

// ---------------------------------------------------------------------------
// Serializable SI specifics
// ---------------------------------------------------------------------------

#[test]
fn ssi_read_only_anomaly_is_prevented() {
    // Example 3 / Fig. 2.3(a): Tin is read-only but observes a state that
    // cannot occur in any serial order of Tpivot and Tout.
    let db = ssi_db();
    let t = db.create_table("t").unwrap();
    let mut setup = db.begin();
    setup.put(&t, b"x", b"0").unwrap();
    setup.put(&t, b"y", b"0").unwrap();
    setup.put(&t, b"z", b"0").unwrap();
    setup.commit().unwrap();

    let mut pivot = db.begin(); // r(y) w(x)
    let mut out = db.begin(); // w(y) w(z)

    assert_eq!(
        pivot.get(&t, b"y").unwrap().as_deref(),
        Some(b"0".as_slice())
    );
    out.put(&t, b"y", b"1").unwrap();
    out.put(&t, b"z", b"1").unwrap();
    out.commit().unwrap();

    // Tin starts after Tout committed, reads z (new) and x (old).
    let mut t_in = db.begin();
    assert_eq!(
        t_in.get(&t, b"z").unwrap().as_deref(),
        Some(b"1".as_slice())
    );
    assert_eq!(
        t_in.get(&t, b"x").unwrap().as_deref(),
        Some(b"0".as_slice())
    );
    t_in.commit().unwrap();

    // Completing the pivot's write must now fail: committing it would make
    // the execution non-serializable.
    let result = pivot.put(&t, b"x", b"1").and_then(|_| pivot.commit());
    assert_eq!(
        result.unwrap_err().abort_kind(),
        Some(AbortKind::Unsafe),
        "the pivot must be the unsafe victim"
    );
}

#[test]
fn ssi_false_positive_of_fig_3_8_commits_under_enhanced_variant() {
    // Tin -> Tpivot -> Tout with Tin committing before Tout: serializable,
    // and the enhanced variant lets the pivot commit.
    let run = |variant: SsiVariant| -> bool {
        let mut options = Options::default();
        options.ssi.variant = variant;
        options.ssi.abort_early = false;
        let db = Database::open(options);
        let t = db.create_table("t").unwrap();
        let mut setup = db.begin();
        setup.put(&t, b"x", b"0").unwrap();
        setup.put(&t, b"y", b"0").unwrap();
        setup.commit().unwrap();

        let mut pivot = db.begin(); // r(y) w(x)
        let mut t_out = db.begin(); // w(y)
        let mut t_in = db.begin(); // r(x) w(w)

        pivot.get(&t, b"y").unwrap();
        t_in.get(&t, b"x").unwrap();
        // The write gives Tin a commit timestamp after Tpivot's begin, so
        // the Tin -> Tpivot antidependency is between concurrent
        // transactions, exactly as in Fig. 3.8.
        t_in.put(&t, b"w", b"1").unwrap();
        t_in.commit().unwrap();
        pivot.put(&t, b"x", b"1").unwrap();
        t_out.put(&t, b"y", b"1").unwrap();
        t_out.commit().unwrap();
        pivot.commit().is_ok()
    };
    assert!(
        run(SsiVariant::Enhanced),
        "enhanced variant should not abort the serializable interleaving"
    );
    assert!(
        !run(SsiVariant::Basic),
        "basic variant conservatively aborts it"
    );
}

#[test]
fn ssi_detects_conflict_after_reader_committed() {
    // The reader commits first (holding SIREAD locks, so it is suspended);
    // the writer then overwrites what it read and must see the conflict.
    let db = ssi_db();
    let t = db.create_table("t").unwrap();
    let mut setup = db.begin();
    setup.put(&t, b"a", b"0").unwrap();
    setup.put(&t, b"b", b"0").unwrap();
    setup.commit().unwrap();

    // Reader: reads a, writes b (so it has an outgoing pivot potential).
    let mut reader = db.begin();
    reader.get(&t, b"a").unwrap();
    reader.put(&t, b"b", b"1").unwrap();

    // Writer: reads b (old), will write a.
    let mut writer = db.begin();
    writer.get(&t, b"b").unwrap();

    reader.commit().unwrap();
    assert!(db.transaction_manager().suspended_len() >= 1);

    // Writer overwrites a, creating reader --rw--> writer *after* reader
    // committed; together with writer --rw--> reader (reader overwrote b
    // that writer read) this forms a dangerous structure and writer must
    // abort.
    let result = writer.put(&t, b"a", b"2").and_then(|_| writer.commit());
    assert_eq!(result.unwrap_err().abort_kind(), Some(AbortKind::Unsafe));
}

#[test]
fn ssi_pure_queries_commit_even_with_conflicts() {
    let db = ssi_db();
    let t = db.create_table("t").unwrap();
    let mut setup = db.begin();
    setup.put(&t, b"x", b"0").unwrap();
    setup.commit().unwrap();

    let mut query = db.begin();
    query.get(&t, b"x").unwrap();
    let mut writer = db.begin();
    writer.put(&t, b"x", b"1").unwrap();
    writer.commit().unwrap();
    // The query has an outgoing conflict but no incoming one: it commits.
    query.commit().unwrap();
}

#[test]
fn ssi_suspended_transactions_are_cleaned_up() {
    let db = ssi_db();
    let t = db.create_table("t").unwrap();
    let mut setup = db.begin();
    setup.put(&t, b"x", b"0").unwrap();
    setup.commit().unwrap();

    {
        let mut overlap = db.begin();
        overlap.get(&t, b"x").unwrap();

        // Advance the clock so the reader's commit timestamp is later than
        // the overlapping transaction's begin timestamp (otherwise the
        // reader would be immediately reclaimable).
        let mut bump = db.begin();
        bump.put(&t, b"y", b"0").unwrap();
        bump.commit().unwrap();

        let mut reader = db.begin();
        reader.get(&t, b"x").unwrap();
        reader.commit().unwrap();
        assert!(db.transaction_manager().suspended_len() >= 1);
        overlap.commit().unwrap();
    }
    // With no active transactions left, a later commit triggers cleanup of
    // everything suspended.
    let mut txn = db.begin();
    txn.put(&t, b"x", b"1").unwrap();
    txn.commit().unwrap();
    assert_eq!(db.transaction_manager().suspended_len(), 0);
    assert_eq!(db.lock_manager().grant_count(), 0);
}

#[test]
fn mixed_mode_read_only_queries_skip_siread_locks() {
    let options = Options {
        read_only_queries_at_si: true,
        ..Options::default()
    };
    let db = Database::open(options);
    let t = db.create_table("t").unwrap();
    let mut setup = db.begin();
    setup.put(&t, b"x", b"0").unwrap();
    setup.commit().unwrap();

    let mut query = db.begin_read_only();
    assert_eq!(query.isolation(), IsolationLevel::SnapshotIsolation);
    query.get(&t, b"x").unwrap();
    // No SIREAD lock was taken, so nothing is suspended after commit.
    query.commit().unwrap();
    assert_eq!(db.transaction_manager().suspended_len(), 0);
}

// ---------------------------------------------------------------------------
// Phantoms
// ---------------------------------------------------------------------------

#[test]
fn ssi_detects_phantom_write_skew() {
    // Two transactions each count rows matching a predicate and then insert
    // a row that changes the other's count — write skew via phantoms. Row
    // granularity + gap locks must detect it.
    let db = ssi_db();
    let t = db.create_table("oncall").unwrap();
    let mut setup = db.begin();
    setup.put(&t, b"doc:1", b"on").unwrap();
    setup.put(&t, b"doc:2", b"on").unwrap();
    setup.commit().unwrap();

    let mut t1 = db.begin();
    let mut t2 = db.begin();
    let c1 = t1.scan_prefix(&t, b"doc:").unwrap().len();
    let c2 = t2.scan_prefix(&t, b"doc:").unwrap().len();
    assert_eq!((c1, c2), (2, 2));
    // Each inserts a new row into the scanned range.
    let r1 = t1.put(&t, b"doc:3", b"on").and_then(|_| t1.commit());
    let r2 = t2.put(&t, b"doc:4", b"on").and_then(|_| t2.commit());
    assert!(
        !(r1.is_ok() && r2.is_ok()),
        "one of the phantom-producing transactions must abort"
    );
}

#[test]
fn phantom_detection_requires_gap_locks() {
    // With phantom detection disabled the same interleaving commits on both
    // sides (demonstrating why Sec. 3.5 is needed for row-level locking).
    let options = Options {
        detect_phantoms: false,
        ..Options::default()
    };
    let db = Database::open(options);
    let t = db.create_table("oncall").unwrap();
    let mut setup = db.begin();
    setup.put(&t, b"doc:1", b"on").unwrap();
    setup.commit().unwrap();

    let mut t1 = db.begin();
    let mut t2 = db.begin();
    t1.scan_prefix(&t, b"doc:").unwrap();
    t2.scan_prefix(&t, b"doc:").unwrap();
    let r1 = t1.put(&t, b"doc:8", b"on").and_then(|_| t1.commit());
    let r2 = t2.put(&t, b"doc:9", b"on").and_then(|_| t2.commit());
    assert!(r1.is_ok() && r2.is_ok());
}

#[test]
fn s2pl_blocks_phantom_inserts() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    // A scanning S2PL transaction holds gap locks; a concurrent insert into
    // the scanned range must block until the scanner finishes.
    let db = db_with(IsolationLevel::StrictTwoPhaseLocking);
    let t = db.create_table("items").unwrap();
    let mut setup = db.begin();
    setup.put(&t, b"item:1", b"a").unwrap();
    setup.put(&t, b"item:5", b"b").unwrap();
    setup.commit().unwrap();

    let mut scanner = db.begin();
    assert_eq!(scanner.scan_prefix(&t, b"item:").unwrap().len(), 2);

    let done = Arc::new(AtomicBool::new(false));
    let done2 = done.clone();
    let db2 = db.clone();
    let t2 = t.clone();
    std::thread::scope(|s| {
        let inserter = s.spawn(move || {
            let mut txn = db2.begin();
            txn.put(&t2, b"item:3", b"new").unwrap();
            done2.store(true, Ordering::SeqCst);
            txn.commit().unwrap();
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(
            !done.load(Ordering::SeqCst),
            "insert must wait for the scanner's gap lock"
        );
        scanner.commit().unwrap();
        inserter.join().unwrap();
    });
    assert!(done.load(Ordering::SeqCst));
}

// ---------------------------------------------------------------------------
// S2PL and page granularity
// ---------------------------------------------------------------------------

#[test]
fn s2pl_serializes_the_write_skew_example() {
    let db = db_with(IsolationLevel::StrictTwoPhaseLocking);
    let t = db.create_table("acct").unwrap();
    let mut setup = db.begin();
    setup.put(&t, b"x", b"50").unwrap();
    setup.put(&t, b"y", b"50").unwrap();
    setup.commit().unwrap();

    // Run the two withdrawals from two threads; locking may block or
    // deadlock one of them, but the surviving executions must preserve
    // x + y >= 0.
    let db1 = db.clone();
    let t1ref = t.clone();
    let run_withdraw = move |target: &'static [u8], other: &'static [u8]| {
        let mut attempts = 0;
        loop {
            attempts += 1;
            let mut txn = db1.begin();
            let result = (|| -> crate::Result<bool> {
                let x: i64 = String::from_utf8(txn.get(&t1ref, target)?.unwrap().to_vec())
                    .unwrap()
                    .parse()
                    .unwrap();
                let y: i64 = String::from_utf8(txn.get(&t1ref, other)?.unwrap().to_vec())
                    .unwrap()
                    .parse()
                    .unwrap();
                if x + y >= 70 {
                    txn.put(&t1ref, target, (x - 70).to_string().as_bytes())?;
                }
                Ok(true)
            })();
            match result {
                Ok(_) => match txn.commit() {
                    Ok(()) => return attempts,
                    Err(e) if e.is_retryable() => continue,
                    Err(e) => panic!("unexpected error: {e}"),
                },
                Err(e) if e.is_retryable() => continue,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
    };
    let db2 = db.clone();
    let t2 = t.clone();
    std::thread::scope(|s| {
        let h1 = s.spawn({
            let f = run_withdraw.clone();
            move || f(b"x", b"y")
        });
        let h2 = s.spawn(move || run_withdraw(b"y", b"x"));
        h1.join().unwrap();
        h2.join().unwrap();
    });
    let mut check = db2.begin();
    let x: i64 = String::from_utf8(check.get(&t2, b"x").unwrap().unwrap().to_vec())
        .unwrap()
        .parse()
        .unwrap();
    let y: i64 = String::from_utf8(check.get(&t2, b"y").unwrap().unwrap().to_vec())
        .unwrap()
        .parse()
        .unwrap();
    check.commit().unwrap();
    assert!(
        x + y >= 0,
        "S2PL must preserve the constraint, got {x} + {y}"
    );
}

#[test]
fn page_granularity_detects_conflicts_between_unrelated_keys() {
    // With a single page, any two keys collide: a reader of key A and a
    // writer of key B develop an rw-conflict through the page lock even
    // though the rows differ — the Berkeley DB false-positive behaviour of
    // Sec. 6.1.5.
    let db = Database::open(Options::berkeley_like(1));
    let t = db.create_table("t").unwrap();
    let mut setup = db.begin();
    setup.put(&t, b"a", b"0").unwrap();
    setup.put(&t, b"b", b"0").unwrap();
    setup.put(&t, b"c", b"0").unwrap();
    setup.put(&t, b"d", b"0").unwrap();
    setup.commit().unwrap();

    // T1 reads a, writes b. T2 reads c, writes d. At row granularity this
    // is perfectly serializable and commits; at one-page granularity both
    // transactions read and write "the page", forming a dangerous structure.
    let mut t1 = db.begin();
    let mut t2 = db.begin();
    t1.get(&t, b"a").unwrap();
    t2.get(&t, b"c").unwrap();
    let r1 = t1.put(&t, b"b", b"1").and_then(|_| t1.commit());
    let r2 = t2.put(&t, b"d", b"1").and_then(|_| t2.commit());
    assert!(
        !(r1.is_ok() && r2.is_ok()),
        "page-level locking should produce a (false positive) unsafe abort"
    );

    // The same schedule at row granularity commits on both sides.
    let db_row = ssi_db();
    let t = db_row.create_table("t").unwrap();
    let mut setup = db_row.begin();
    for k in [b"a", b"b", b"c", b"d"] {
        setup.put(&t, k, b"0").unwrap();
    }
    setup.commit().unwrap();
    let mut t1 = db_row.begin();
    let mut t2 = db_row.begin();
    t1.get(&t, b"a").unwrap();
    t2.get(&t, b"c").unwrap();
    assert!(t1.put(&t, b"b", b"1").and_then(|_| t1.commit()).is_ok());
    assert!(t2.put(&t, b"d", b"1").and_then(|_| t2.commit()).is_ok());
}

// ---------------------------------------------------------------------------
// History recording / verifier integration
// ---------------------------------------------------------------------------

#[test]
fn recorded_history_of_serializable_run_is_acyclic() {
    let db = Database::open(Options::default().with_history());
    let t = db.create_table("t").unwrap();
    let mut setup = db.begin();
    setup.put(&t, b"x", b"0").unwrap();
    setup.put(&t, b"y", b"0").unwrap();
    setup.commit().unwrap();

    for i in 0..10u8 {
        let mut txn = db.begin();
        let key: &[u8] = if i % 2 == 0 { b"x" } else { b"y" };
        let other: &[u8] = if i % 2 == 0 { b"y" } else { b"x" };
        txn.get(&t, other).unwrap();
        txn.put(&t, key, &[i]).unwrap();
        match txn.commit() {
            Ok(()) | Err(Error::Aborted { .. }) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
    }
    let report = db.history().unwrap().analyze();
    assert!(report.is_serializable(), "cycle: {:?}", report.cycle);
}

#[test]
fn recorded_history_under_si_shows_write_skew_cycle() {
    let db = Database::open(
        Options::default()
            .with_history()
            .with_isolation(IsolationLevel::SnapshotIsolation),
    );
    let t = db.create_table("t").unwrap();
    let mut setup = db.begin();
    setup.put(&t, b"x", b"0").unwrap();
    setup.put(&t, b"y", b"0").unwrap();
    setup.commit().unwrap();

    let mut t1 = db.begin();
    let mut t2 = db.begin();
    t1.get(&t, b"y").unwrap();
    t2.get(&t, b"x").unwrap();
    t1.put(&t, b"x", b"1").unwrap();
    t2.put(&t, b"y", b"1").unwrap();
    t1.commit().unwrap();
    t2.commit().unwrap();

    let report = db.history().unwrap().analyze();
    assert!(!report.is_serializable());
    assert!(!report.pivots.is_empty());
}

// ---------------------------------------------------------------------------
// WAL integration
// ---------------------------------------------------------------------------

#[test]
fn commit_appends_wal_records_only_for_updates() {
    let db = ssi_db();
    let t = db.create_table("t").unwrap();
    let mut w = db.begin();
    w.put(&t, b"k", b"v").unwrap();
    w.commit().unwrap();
    let mut r = db.begin();
    r.get(&t, b"k").unwrap();
    r.commit().unwrap();
    assert_eq!(db.wal().record_count(), 1);
}
