//! End-to-end tests over real TCP connections: protocol correctness, SSI
//! semantics across connections, pipelining, admission control, the
//! connection-lifecycle bug net (disconnects, idle reaping), frame abuse,
//! and the graceful-drain durability contract.

use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ssi_common::IsolationLevel;
use ssi_core::{Database, Durability, Options};
use ssi_server::proto::{write_frame, Request, Response};
use ssi_server::{Client, ErrorCode, Server, ServerOptions};

static NEXT_DIR: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let n = NEXT_DIR.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("ssi-server-test-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(db: Database) -> Server {
    Server::start(db, ServerOptions::default()).expect("bind server")
}

fn connect(server: &Server) -> Client {
    Client::connect(server.local_addr()).expect("connect")
}

/// Polls until `cond` holds or the deadline passes.
fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn autocommit_roundtrip_and_metrics() {
    let server = start(Database::open_default());
    let mut c = connect(&server);
    c.ping().unwrap();
    c.create_table("t").unwrap();
    assert_eq!(c.get("t", b"k").unwrap(), None);
    c.put("t", b"k", b"v").unwrap();
    assert_eq!(c.get("t", b"k").unwrap(), Some(b"v".to_vec()));
    c.delete("t", b"k").unwrap();
    assert_eq!(c.get("t", b"k").unwrap(), None);

    // Typed errors come back typed.
    let err = c.get("missing", b"k").unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::NoSuchTable));
    let err = c.create_table("t").unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::TableExists));

    // The metrics response is the engine snapshot plus the server overlay.
    let text = c.metrics_text().unwrap();
    assert!(text.contains("ssi_server_enabled 1"), "{text}");
    assert!(
        text.contains("ssi_server_connections_accepted_total"),
        "{text}"
    );
    assert!(text.contains("ssi_txn_started_total"), "{text}");
}

#[test]
fn interactive_transaction_spans_requests_and_connections_are_isolated() {
    let server = start(Database::open_default());
    let mut writer = connect(&server);
    let mut reader = connect(&server);
    writer.create_table("t").unwrap();

    let mut txn = writer.begin().unwrap();
    txn.put("t", b"a", b"1").unwrap();
    // Own write visible inside the transaction…
    assert_eq!(txn.get("t", b"a").unwrap(), Some(b"1".to_vec()));
    // …but not to another connection before commit.
    assert_eq!(reader.get("t", b"a").unwrap(), None);
    txn.commit().unwrap();
    assert_eq!(reader.get("t", b"a").unwrap(), Some(b"1".to_vec()));

    // Rollback really rolls back.
    let mut txn = writer.begin().unwrap();
    txn.put("t", b"b", b"2").unwrap();
    txn.rollback().unwrap();
    assert_eq!(reader.get("t", b"b").unwrap(), None);

    // Scans work over the wire, limit applies.
    let mut txn = writer.begin_read_only().unwrap();
    let rows = txn
        .scan(
            "t",
            std::ops::Bound::Unbounded,
            std::ops::Bound::Unbounded,
            0,
        )
        .unwrap();
    assert_eq!(rows, vec![(b"a".to_vec(), b"1".to_vec())]);
    txn.rollback().unwrap();
}

#[test]
fn write_skew_pair_over_two_connections_aborts_one_under_ssi() {
    let db = Database::open(
        Options::default().with_isolation(IsolationLevel::SerializableSnapshotIsolation),
    );
    let server = start(db);
    let mut setup = connect(&server);
    setup.create_table("t").unwrap();
    setup.put("t", b"x", b"1").unwrap();
    setup.put("t", b"y", b"1").unwrap();

    // Classic write skew: each transaction reads both rows and writes the
    // one the other read. Under SI both commit; under SSI the dangerous
    // structure must cost at least one of them an abort.
    let mut c1 = connect(&server);
    let mut c2 = connect(&server);
    let mut t1 = c1
        .begin_with(IsolationLevel::SerializableSnapshotIsolation)
        .unwrap();
    let mut t2 = c2
        .begin_with(IsolationLevel::SerializableSnapshotIsolation)
        .unwrap();
    // Interleave the reads: snapshot acquisition is deferred to the first
    // operation, so this is what makes the two transactions concurrent.
    t1.get("t", b"x").unwrap();
    t2.get("t", b"x").unwrap();
    t1.get("t", b"y").unwrap();
    t2.get("t", b"y").unwrap();
    let r1 = t1.put("t", b"x", b"0").and_then(|()| t1.commit());
    let r2 = t2.put("t", b"y", b"0").and_then(|()| t2.commit());

    let aborted = [&r1, &r2]
        .iter()
        .filter(|r| matches!(r, Err(e) if e.code() == Some(ErrorCode::Aborted)))
        .count();
    assert!(
        aborted >= 1,
        "write skew committed on both connections: {r1:?} / {r2:?}"
    );
    assert!(
        r1.is_ok() || r2.is_ok(),
        "both sides aborted: {r1:?} / {r2:?}"
    );
}

#[test]
fn pipelined_batches_answer_in_request_order() {
    let server = start(Database::open_default());
    let mut c = connect(&server);
    c.create_table("t").unwrap();

    // Queue a whole batch before reading anything: an interactive begin,
    // N puts against a handle we predict? No — handles are server-chosen,
    // so pipeline autocommit puts and then the reads that depend on them.
    const N: usize = 64;
    for i in 0..N {
        c.send(&Request::Put {
            handle: ssi_server::AUTOCOMMIT,
            table: "t".to_string(),
            key: format!("k{i:03}").into_bytes(),
            value: format!("v{i}").into_bytes(),
        })
        .unwrap();
    }
    for i in 0..N {
        c.send(&Request::Get {
            handle: ssi_server::AUTOCOMMIT,
            table: "t".to_string(),
            key: format!("k{i:03}").into_bytes(),
        })
        .unwrap();
    }
    c.flush().unwrap();
    // Responses arrive strictly in request order: N oks, then N values.
    for i in 0..N {
        match c.recv().unwrap() {
            Response::Ok => {}
            other => panic!("put #{i} answered {other:?}"),
        }
    }
    for i in 0..N {
        match c.recv().unwrap() {
            Response::Value(Some(v)) => assert_eq!(v, format!("v{i}").into_bytes()),
            other => panic!("get #{i} answered {other:?}"),
        }
    }
}

#[test]
fn admission_control_sheds_commit_carrying_requests_with_busy() {
    let db = Database::open_default();
    db.create_table("t").unwrap();
    let server =
        Server::start(db, ServerOptions::default().with_max_inflight_commits(0)).expect("bind");
    let mut c = connect(&server);

    // Autocommit writes need a commit slot: shed.
    let err = c.put("t", b"k", b"v").unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Busy));
    assert!(err.is_retryable());

    // Interactive work is unaffected until the commit itself: the buffered
    // put needs no slot, the commit does and is shed.
    let mut txn = c.begin().unwrap();
    txn.put("t", b"k2", b"v").unwrap();
    let err = txn.commit().unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Busy));

    // Reads don't need a commit slot.
    assert_eq!(c.get("t", b"k2").unwrap(), None);
    assert!(server.metrics().busy_rejections >= 2);
}

#[test]
fn dropped_connection_rolls_back_its_transaction_and_unpins_the_gc_horizon() {
    let db = Database::open(
        Options::default().with_isolation(IsolationLevel::SerializableSnapshotIsolation),
    );
    let server = start(db.clone());
    let mut setup = connect(&server);
    setup.create_table("t").unwrap();
    setup.put("t", b"k", b"v0").unwrap();

    let registry_before = db.transaction_manager().registry_len();

    // Open a transaction that has both read and written, then vanish
    // without commit/rollback — simulating a crashed client.
    let mut doomed = connect(&server);
    let mut txn = doomed.begin().unwrap();
    txn.get("t", b"k").unwrap();
    txn.put("t", b"k", b"leaked?").unwrap();
    let pinned_horizon = db.transaction_manager().gc_horizon();
    std::mem::forget(txn); // suppress the client-side rollback-on-drop
    drop(doomed); // TCP FIN mid-transaction

    // The worker notices the disconnect and rolls the transaction back.
    wait_for("disconnect rollback", || {
        server.metrics().disconnect_rollbacks >= 1
    });
    wait_for("registry to drain", || {
        db.transaction_manager().registry_len() <= registry_before
    });

    // The write lock is released: another connection can write the key
    // (first-committer-wins would abort us if the dead txn's write were
    // still in flight, and its lock would block us).
    let mut alive = connect(&server);
    alive.put("t", b"k", b"v1").unwrap();
    assert_eq!(alive.get("t", b"k").unwrap(), Some(b"v1".to_vec()));

    // And the GC horizon advances past the dropped transaction's snapshot
    // instead of staying pinned at it forever.
    wait_for("gc horizon to advance", || {
        db.transaction_manager().gc_horizon() > pinned_horizon
    });
}

#[test]
fn idle_reaper_harvests_abandoned_sessions() {
    let db = Database::open_default();
    db.create_table("t").unwrap();
    let opts = ServerOptions::default().with_idle_timeout(Duration::from_millis(50));
    let server = Server::start(db.clone(), opts).expect("bind");

    let mut c = connect(&server);
    let mut txn = c.begin().unwrap();
    txn.put("t", b"k", b"v").unwrap();
    let registry_with_txn = db.transaction_manager().registry_len();
    assert!(registry_with_txn >= 1);

    // Go silent past the idle timeout: the reaper rolls the transaction
    // back and closes the connection.
    wait_for("reap", || server.metrics().sessions_reaped >= 1);
    wait_for("registry drain", || {
        db.transaction_manager().registry_len() < registry_with_txn
    });

    // The revoked session answers transactional work with a typed error
    // (or the connection is already observed dead — both are clean).
    match txn.get("t", b"k") {
        Err(e) => assert!(
            e.code() == Some(ErrorCode::Closed) || matches!(e, ssi_server::ClientError::Io(_)),
            "unexpected error after reap: {e}"
        ),
        Ok(_) => panic!("reaped session still served a transactional read"),
    }
    std::mem::forget(txn); // connection is dead; skip the drop rollback
}

#[test]
fn malformed_payloads_get_bad_request_and_the_connection_survives() {
    let server = start(Database::open_default());
    use std::io::Write as _;
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());

    // A whole frame whose payload is garbage (unknown opcode): the server
    // answers with a typed bad-request error on the same connection.
    write_frame(&mut stream, &[0xEE, 1, 2, 3]).unwrap();
    stream.flush().unwrap();
    let payload = ssi_server::proto::read_frame(&mut reader, 1 << 20)
        .unwrap()
        .expect("error response");
    match Response::decode(&payload).unwrap() {
        Response::Err(ErrorCode::BadRequest, _) => {}
        other => panic!("expected bad-request, got {other:?}"),
    }

    // Framing stayed aligned: the very same connection serves a valid
    // request afterwards.
    write_frame(&mut stream, &Request::Ping.encode()).unwrap();
    stream.flush().unwrap();
    let payload = ssi_server::proto::read_frame(&mut reader, 1 << 20)
        .unwrap()
        .expect("pong");
    assert!(matches!(Response::decode(&payload).unwrap(), Response::Ok));
    assert!(server.metrics().malformed_frames >= 1);
}

#[test]
fn oversized_frames_are_rejected_before_allocation_and_close_the_stream() {
    let db = Database::open_default();
    let server = Server::start(
        db,
        ServerOptions {
            max_frame_bytes: 1024,
            ..ServerOptions::default()
        },
    )
    .expect("bind");

    use std::io::{Read as _, Write as _};
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    // Length prefix far beyond the cap; no payload follows (the server
    // must not try to read or allocate it).
    stream.write_all(&u32::MAX.to_le_bytes()).unwrap();
    stream.flush().unwrap();
    // One frame-too-large error frame comes back, then EOF.
    let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
    let payload = ssi_server::proto::read_frame(&mut reader, 1 << 20)
        .unwrap()
        .expect("error frame before close");
    match Response::decode(&payload).unwrap() {
        Response::Err(ErrorCode::FrameTooLarge, _) => {}
        other => panic!("expected frame-too-large, got {other:?}"),
    }
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "stream should close after the error frame");
}

#[test]
fn garbage_byte_storms_never_take_the_server_down() {
    let server = start(Database::open_default());
    let mut seed = 0x9E3779B97F4A7C15u64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    use std::io::Write as _;
    for _ in 0..32 {
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let len = (next() % 512) as usize;
        let junk: Vec<u8> = (0..len).map(|_| next() as u8).collect();
        // Raw junk — not even a valid length prefix is guaranteed.
        let _ = stream.write_all(&junk);
        let _ = stream.flush();
        drop(stream);
    }
    // The server survives and still serves real clients.
    let mut c = connect(&server);
    c.ping().unwrap();
    c.create_table("t").unwrap();
    c.put("t", b"k", b"v").unwrap();
    assert_eq!(c.get("t", b"k").unwrap(), Some(b"v".to_vec()));
    // Every dead connection was retired; no session leaked.
    wait_for("sessions to retire", || server.session_count() <= 1);
}

#[test]
fn graceful_drain_loses_no_acknowledged_commit_and_leaks_no_session() {
    let dir = temp_dir("drain");
    let db = Database::open(Options::default().with_durability(Durability::GroupCommit, &dir));
    db.create_table("t").unwrap();
    let mut server = Server::start(db.clone(), ServerOptions::default()).expect("bind");
    let addr = server.local_addr();

    // 8 live connections hammer commits; a response written under group
    // commit means the WAL fsync covering that commit completed.
    let acked: Arc<parking_lot::Mutex<Vec<Vec<u8>>>> =
        Arc::new(parking_lot::Mutex::new(Vec::new()));
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut workers = Vec::new();
    for w in 0..8u32 {
        let acked = acked.clone();
        let stop = stop.clone();
        workers.push(std::thread::spawn(move || {
            let Ok(mut c) = Client::connect(addr) else {
                return;
            };
            for i in 0..u32::MAX {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let key = format!("w{w}-{i}").into_bytes();
                match c.put("t", &key, b"payload") {
                    // The ok response is the durability acknowledgement.
                    Ok(()) => acked.lock().push(key),
                    // Drain reached us: shed, revoked, or disconnected.
                    Err(_) => break,
                }
            }
        }));
    }

    // Let traffic build, then drain while all 8 are live.
    std::thread::sleep(Duration::from_millis(300));
    assert!(server.session_count() >= 1, "traffic never started");
    server.shutdown();
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().unwrap();
    }

    // No leaked session, and nothing server-side pins the GC horizon: a
    // fresh commit advances past everything the drain rolled back.
    assert_eq!(server.session_count(), 0);
    let horizon_after_drain = db.transaction_manager().gc_horizon();
    let mut probe = db.begin();
    probe.put(&db.table("t").unwrap(), b"probe", b"1").unwrap();
    probe.commit().unwrap();
    assert!(db.transaction_manager().gc_horizon() >= horizon_after_drain);

    // Reopen from disk: every acknowledged commit must have survived.
    let acked = acked.lock().clone();
    assert!(
        !acked.is_empty(),
        "drain test never acknowledged a commit; not exercising the contract"
    );
    drop(server);
    db.close();
    drop(db);
    let reopened =
        Database::open(Options::default().with_durability(Durability::GroupCommit, &dir));
    let table = reopened.table("t").unwrap();
    let mut txn = reopened.begin_read_only();
    for key in &acked {
        assert!(
            txn.get(&table, key).unwrap().is_some(),
            "acknowledged commit {} lost across drain + reopen",
            String::from_utf8_lossy(key)
        );
    }
    drop(txn);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn draining_server_refuses_new_connections_and_new_begins() {
    let server = start(Database::open_default());
    let addr = server.local_addr();
    let mut held = connect(&server);
    held.ping().unwrap();
    let mut server = server;
    server.shutdown();

    // Fresh connections are refused (error frame or reset — never a hang).
    if let Ok(mut c) = Client::connect(addr) {
        assert!(c.ping().is_err(), "drained server accepted new work");
    }
    // The held connection is gone too.
    assert!(held.ping().is_err());
}

#[test]
fn connection_cap_refuses_excess_clients_with_busy() {
    let db = Database::open_default();
    let server = Server::start(
        db,
        ServerOptions {
            max_connections: 2,
            ..ServerOptions::default()
        },
    )
    .expect("bind");
    let mut a = connect(&server);
    let mut b = connect(&server);
    a.ping().unwrap();
    b.ping().unwrap();
    // The third connection is refused with one busy error frame; read it
    // off the raw stream (the server sends it unprompted, then closes).
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = std::io::BufReader::new(stream);
    let payload = ssi_server::proto::read_frame(&mut reader, 1 << 20)
        .unwrap()
        .expect("refusal frame");
    match Response::decode(&payload).unwrap() {
        Response::Err(ErrorCode::Busy, _) => {}
        other => panic!("expected busy refusal, got {other:?}"),
    }
    assert!(server.metrics().connections_rejected >= 1);
}
