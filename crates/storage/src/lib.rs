//! Multi-version storage substrate for the Serializable SI reproduction.
//!
//! The paper implements its algorithm inside two existing storage engines
//! (Berkeley DB and InnoDB). This crate provides the equivalent substrate the
//! concurrency-control layer in `ssi-core` builds on:
//!
//! * [`Table`] — an ordered key/value table whose entries are *version
//!   chains*: every write creates a new [`Version`] instead of overwriting,
//!   and readers pick the version visible to their snapshot (Sec. 2.4/2.5);
//! * [`Catalog`] — the set of named tables of one database;
//! * [`WriteAheadLog`] — an in-memory commit log with group commit and a
//!   configurable simulated flush latency, used to reproduce the
//!   "no flush"/"flush at commit" regimes of the Berkeley DB evaluation
//!   (Figs. 6.1 vs 6.2);
//! * [`PageMap`] — a mapping from keys to page numbers so the engine can lock
//!   and detect conflicts at Berkeley-DB-style page granularity (Sec. 4.2)
//!   instead of InnoDB-style row granularity.
//!
//! The substrate is deliberately free of concurrency-control policy: it knows
//! nothing about SI, S2PL or SSI. All policy lives in `ssi-core`.

pub mod catalog;
pub mod page;
pub mod table;
pub mod version;
pub mod wal;

pub use catalog::Catalog;
pub use page::PageMap;
pub use table::{
    as_ref_bound, clone_bound, PurgeStats, ScanCursor, ScanEntry, ScanPage, Table, VisibleRead,
    SCAN_PAGE_SIZE, SHARD_COUNT,
};
pub use version::{Version, VersionState};
pub use wal::{WalConfig, WriteAheadLog};
