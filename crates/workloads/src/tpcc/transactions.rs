//! The six TPC-C++ transaction programs (Sec. 2.8.1 and 5.3).
//!
//! Each program opens its own transaction at the database's default
//! isolation level (read-only programs use `begin_read_only`, so the mixed
//! SI/SSI mode of Sec. 3.8 applies when enabled), performs its reads and
//! writes directly against the key/value tables, and commits. Engine aborts
//! (deadlock, first-committer-wins, unsafe) propagate to the driver, which
//! classifies them; the spec-mandated 1% New Order rollback surfaces as a
//! `UserRequested` abort.

use std::ops::Bound;

use ssi_common::rng::{tpcc_last_name, WorkloadRng};
use ssi_common::{AbortKind, Error};
use ssi_core::{Database, Transaction};

use super::schema::*;
use super::TpccWorkload;

type TxnResult = Result<(), Error>;

fn missing_row(what: &str) -> Error {
    Error::Internal(format!("missing {what} row in TPC-C population"))
}

fn u32_from_key_suffix(key: &[u8]) -> u32 {
    let n = key.len();
    u32::from_be_bytes(key[n - 4..].try_into().expect("key suffix"))
}

impl TpccWorkload {
    fn random_warehouse(&self, rng: &mut WorkloadRng) -> u32 {
        rng.uniform(1, self.config.scale.warehouses as u64) as u32
    }

    fn random_district(&self, rng: &mut WorkloadRng) -> u32 {
        rng.uniform(1, self.config.scale.districts_per_warehouse as u64) as u32
    }

    fn random_customer(&self, rng: &mut WorkloadRng) -> u32 {
        rng.nurand_customer(self.config.scale.customers_per_district as u64) as u32
    }

    /// Selects a customer id, 60% of the time by last name (median match,
    /// per the TPC-C rules) and 40% by customer number. The by-name path is
    /// a point lookup on the engine's customer-by-last-name secondary
    /// index: one index key, all claiming rows in primary-key order.
    fn select_customer(
        &self,
        txn: &mut Transaction,
        rng: &mut WorkloadRng,
        w: u32,
        d: u32,
    ) -> Result<u32, Error> {
        if rng.chance(0.6) {
            let last = tpcc_last_name(rng.nurand_name());
            let index_key = customer_name_prefix(w, d, &last);
            let matches = txn.index_lookup(&self.tables.customer_name_idx, &index_key)?;
            if !matches.is_empty() {
                let median = &matches[matches.len() / 2];
                return Ok(u32_from_key_suffix(&median.0));
            }
        }
        Ok(self.random_customer(rng))
    }
}

/// The New Order transaction: allocate an order number from the district,
/// decrement stock for each line, insert the order, its lines and a
/// new-order entry. Reads the customer's credit rating, which is what the
/// TPC-C++ Credit Check conflicts with (Fig. 5.3).
pub fn new_order(workload: &TpccWorkload, db: &Database, rng: &mut WorkloadRng) -> TxnResult {
    let scale = &workload.config.scale;
    let tables = &workload.tables;
    let w = workload.random_warehouse(rng);
    let d = workload.random_district(rng);
    let c = workload.random_customer(rng);

    let mut txn = db.begin();

    // Customer: discount and, in TPC-C++, the credit rating set by Credit
    // Check.
    let customer_buf = txn
        .get(&tables.customer, &customer_key(w, d, c))?
        .ok_or_else(|| missing_row("customer"))?;
    let _customer = Customer::decode(&customer_buf);

    // District: allocate the order number under an exclusive lock.
    let district_buf = txn
        .get_for_update(&tables.district, &district_key(w, d))?
        .ok_or_else(|| missing_row("district"))?;
    let mut district = District::decode(&district_buf);
    let o_id = district.next_o_id;
    district.next_o_id += 1;
    txn.put(&tables.district, &district_key(w, d), &district.encode())?;

    let ol_cnt = rng.uniform(5, 15) as u32;
    let rollback = rng.chance(workload.config.new_order_rollback);
    let mut total = 0i64;

    for ol in 1..=ol_cnt {
        let i_id = rng.nurand_item(scale.items as u64) as u32;
        let supply_w = if scale.warehouses > 1 && rng.chance(0.01) {
            workload.random_warehouse(rng)
        } else {
            w
        };
        let item_buf = txn
            .get(&tables.item, &item_key(i_id))?
            .ok_or_else(|| missing_row("item"))?;
        let item = Item::decode(&item_buf);

        let stock_buf = txn
            .get_for_update(&tables.stock, &stock_key(supply_w, i_id))?
            .ok_or_else(|| missing_row("stock"))?;
        let mut stock = Stock::decode(&stock_buf);
        let quantity = rng.uniform(1, 10) as i64;
        if stock.quantity >= quantity + 10 {
            stock.quantity -= quantity;
        } else {
            stock.quantity += 91 - quantity;
        }
        stock.ytd += quantity;
        stock.order_cnt += 1;
        if supply_w != w {
            stock.remote_cnt += 1;
        }
        txn.put(&tables.stock, &stock_key(supply_w, i_id), &stock.encode())?;

        let amount = quantity * item.price;
        total += amount;
        let line = OrderLine {
            i_id,
            supply_w_id: supply_w,
            quantity: quantity as u32,
            amount,
            delivery_d: 0,
        };
        txn.put(
            &tables.order_line,
            &order_line_key(w, d, o_id, ol),
            &line.encode(),
        )?;
    }
    let _ = total;

    let order = Order {
        c_id: c,
        entry_d: o_id as u64,
        carrier_id: 0,
        ol_cnt,
    };
    txn.put(&tables.orders, &order_key(w, d, o_id), &order.encode())?;
    txn.put(&tables.new_order, &new_order_key(w, d, o_id), &[])?;
    txn.put(
        &tables.order_customer_idx,
        &order_customer_key(w, d, c, o_id),
        &[],
    )?;

    if rollback {
        // The TPC-C "unused item" rollback: all work is discarded.
        txn.rollback();
        return Err(Error::abort(
            AbortKind::UserRequested,
            ssi_common::TxnId::INVALID,
        ));
    }
    txn.commit()
}

/// The Payment transaction: record a customer payment, optionally updating
/// the warehouse and district year-to-date totals (the hotspot that
/// `skip_ytd_updates` removes, Sec. 5.3.1).
pub fn payment(workload: &TpccWorkload, db: &Database, rng: &mut WorkloadRng) -> TxnResult {
    let tables = &workload.tables;
    let w = workload.random_warehouse(rng);
    let d = workload.random_district(rng);
    let amount = rng.uniform(100, 500_000) as i64;

    let mut txn = db.begin();
    let c = workload.select_customer(&mut txn, rng, w, d)?;

    if !workload.config.skip_ytd_updates {
        let wh_buf = txn
            .get_for_update(&tables.warehouse, &warehouse_key(w))?
            .ok_or_else(|| missing_row("warehouse"))?;
        let mut warehouse = Warehouse::decode(&wh_buf);
        warehouse.ytd += amount;
        txn.put(&tables.warehouse, &warehouse_key(w), &warehouse.encode())?;

        let district_buf = txn
            .get_for_update(&tables.district, &district_key(w, d))?
            .ok_or_else(|| missing_row("district"))?;
        let mut district = District::decode(&district_buf);
        district.ytd += amount;
        txn.put(&tables.district, &district_key(w, d), &district.encode())?;
    }

    let customer_buf = txn
        .get_for_update(&tables.customer, &customer_key(w, d, c))?
        .ok_or_else(|| missing_row("customer"))?;
    let mut customer = Customer::decode(&customer_buf);
    customer.balance -= amount;
    customer.ytd_payment += amount;
    customer.payment_cnt += 1;
    txn.put(&tables.customer, &customer_key(w, d, c), &customer.encode())?;

    txn.commit()
}

/// The Order Status transaction (read-only): the status of a customer's most
/// recent order.
pub fn order_status(workload: &TpccWorkload, db: &Database, rng: &mut WorkloadRng) -> TxnResult {
    let tables = &workload.tables;
    let w = workload.random_warehouse(rng);
    let d = workload.random_district(rng);

    let mut txn = db.begin_read_only();
    let c = workload.select_customer(&mut txn, rng, w, d)?;

    let customer_buf = txn
        .get(&tables.customer, &customer_key(w, d, c))?
        .ok_or_else(|| missing_row("customer"))?;
    let _customer = Customer::decode(&customer_buf);

    let orders = txn.scan_prefix(&tables.order_customer_idx, &order_customer_prefix(w, d, c))?;
    if let Some((key, _)) = orders.last() {
        let o_id = u32_from_key_suffix(key);
        if let Some(order_buf) = txn.get(&tables.orders, &order_key(w, d, o_id))? {
            let order = Order::decode(&order_buf);
            let lines = txn.scan_prefix(&tables.order_line, &order_line_prefix(w, d, o_id))?;
            debug_assert!(lines.len() as u32 <= order.ol_cnt.max(15));
        }
    }
    txn.commit()
}

/// The Delivery transaction: deliver the oldest undelivered order of one
/// district (one order per transaction, per the simplification discussed in
/// Sec. 2.8.1), updating the order, its lines and the customer's balance.
pub fn delivery(workload: &TpccWorkload, db: &Database, rng: &mut WorkloadRng) -> TxnResult {
    let tables = &workload.tables;
    let w = workload.random_warehouse(rng);
    let d = workload.random_district(rng);

    let mut txn = db.begin();
    let pending = txn.scan_prefix(&tables.new_order, &new_order_prefix(w, d))?;
    let Some((oldest_key, _)) = pending.first() else {
        // DLVY1 in the thesis' terminology: nothing to deliver.
        return txn.commit();
    };
    let o_id = u32_from_key_suffix(oldest_key);

    txn.delete(&tables.new_order, oldest_key)?;

    let order_buf = txn
        .get_for_update(&tables.orders, &order_key(w, d, o_id))?
        .ok_or_else(|| missing_row("order"))?;
    let mut order = Order::decode(&order_buf);
    order.carrier_id = rng.uniform(1, 10) as u32;
    txn.put(&tables.orders, &order_key(w, d, o_id), &order.encode())?;

    let lines = txn.scan_prefix(&tables.order_line, &order_line_prefix(w, d, o_id))?;
    let mut total = 0i64;
    for (key, value) in &lines {
        let mut line = OrderLine::decode(value);
        total += line.amount;
        line.delivery_d = order.entry_d + 1;
        txn.put(&tables.order_line, key, &line.encode())?;
    }

    let customer_buf = txn
        .get_for_update(&tables.customer, &customer_key(w, d, order.c_id))?
        .ok_or_else(|| missing_row("customer"))?;
    let mut customer = Customer::decode(&customer_buf);
    customer.balance += total;
    txn.put(
        &tables.customer,
        &customer_key(w, d, order.c_id),
        &customer.encode(),
    )?;

    txn.commit()
}

/// The Stock Level transaction (read-only): count the recently ordered items
/// whose stock is below a threshold. This is the heavy reader of the Stock
/// Level mix (Sec. 5.3.5).
pub fn stock_level(workload: &TpccWorkload, db: &Database, rng: &mut WorkloadRng) -> TxnResult {
    let tables = &workload.tables;
    let w = workload.random_warehouse(rng);
    let d = workload.random_district(rng);
    let threshold = rng.uniform(10, 20) as i64;

    let mut txn = db.begin_read_only();
    let district_buf = txn
        .get(&tables.district, &district_key(w, d))?
        .ok_or_else(|| missing_row("district"))?;
    let district = District::decode(&district_buf);

    let first_order = district.next_o_id.saturating_sub(20);
    let lower = order_line_key(w, d, first_order, 0);
    let upper = order_line_key(w, d, district.next_o_id, 0);
    let lines = txn.scan(
        &tables.order_line,
        Bound::Included(lower.as_slice()),
        Bound::Excluded(upper.as_slice()),
    )?;

    let mut items: Vec<u32> = lines
        .iter()
        .map(|(_, value)| OrderLine::decode(value).i_id)
        .collect();
    items.sort_unstable();
    items.dedup();

    let mut low_stock = 0usize;
    for i_id in items {
        if let Some(stock_buf) = txn.get(&tables.stock, &stock_key(w, i_id))? {
            if Stock::decode(&stock_buf).quantity < threshold {
                low_stock += 1;
            }
        }
    }
    let _ = low_stock;
    txn.commit()
}

/// The TPC-C++ Credit Check transaction (Sec. 5.3.2, Fig. 5.1): compute the
/// customer's outstanding balance (delivered-but-unpaid plus undelivered new
/// orders) and update the credit rating accordingly.
pub fn credit_check(workload: &TpccWorkload, db: &Database, rng: &mut WorkloadRng) -> TxnResult {
    let tables = &workload.tables;
    let w = workload.random_warehouse(rng);
    let d = workload.random_district(rng);
    let c = workload.random_customer(rng);

    let mut txn = db.begin();
    let customer_buf = txn
        .get(&tables.customer, &customer_key(w, d, c))?
        .ok_or_else(|| missing_row("customer"))?;
    let mut customer = Customer::decode(&customer_buf);

    // Sum the value of this customer's undelivered orders: join the
    // customer's orders against the NewOrder table and total their lines.
    let mut new_order_balance = 0i64;
    let orders = txn.scan_prefix(&tables.order_customer_idx, &order_customer_prefix(w, d, c))?;
    for (key, _) in &orders {
        let o_id = u32_from_key_suffix(key);
        if txn
            .get(&tables.new_order, &new_order_key(w, d, o_id))?
            .is_some()
        {
            let lines = txn.scan_prefix(&tables.order_line, &order_line_prefix(w, d, o_id))?;
            new_order_balance += lines
                .iter()
                .map(|(_, value)| OrderLine::decode(value).amount)
                .sum::<i64>();
        }
    }

    customer.credit = if customer.balance + new_order_balance > customer.credit_lim {
        "BC".to_string()
    } else {
        "GC".to_string()
    };
    txn.put(&tables.customer, &customer_key(w, d, c), &customer.encode())?;
    txn.commit()
}

/// Post-run consistency checks (the TPC-C consistency conditions that our
/// simplified population maintains):
///
/// 1. for every district, `d_next_o_id - 1` equals the largest order id
///    present in the Orders table;
/// 2. every NewOrder row refers to an existing order with no carrier;
/// 3. every order has between 5 and 15 order lines, matching its `ol_cnt`.
///
/// Returns a description of the first violation found, or `None`.
pub fn consistency_violations(workload: &TpccWorkload, db: &Database) -> Option<String> {
    let scale = &workload.config.scale;
    let tables = &workload.tables;
    let mut txn = db.begin_read_only();

    for w in 1..=scale.warehouses {
        for d in 1..=scale.districts_per_warehouse {
            let district_buf = txn
                .get(&tables.district, &district_key(w, d))
                .ok()?
                .expect("district row");
            let district = District::decode(&district_buf);

            let orders = txn
                .scan_prefix(&tables.orders, &new_order_prefix(w, d))
                .ok()?;
            let max_order = orders
                .iter()
                .map(|(key, _)| u32_from_key_suffix(key))
                .max()
                .unwrap_or(0);
            if max_order != district.next_o_id - 1 {
                return Some(format!(
                    "district ({w},{d}): next_o_id {} but max order {max_order}",
                    district.next_o_id
                ));
            }

            let pending = txn
                .scan_prefix(&tables.new_order, &new_order_prefix(w, d))
                .ok()?;
            for (key, _) in &pending {
                let o_id = u32_from_key_suffix(key);
                match txn.get(&tables.orders, &order_key(w, d, o_id)).ok()? {
                    Some(buf) => {
                        let order = Order::decode(&buf);
                        if order.carrier_id != 0 {
                            return Some(format!(
                                "new-order ({w},{d},{o_id}) already has a carrier"
                            ));
                        }
                    }
                    None => return Some(format!("new-order ({w},{d},{o_id}) has no order row")),
                }
            }

            for (key, value) in &orders {
                let o_id = u32_from_key_suffix(key);
                let order = Order::decode(value);
                let lines = txn
                    .scan_prefix(&tables.order_line, &order_line_prefix(w, d, o_id))
                    .ok()?;
                if lines.len() != order.ol_cnt as usize {
                    return Some(format!(
                        "order ({w},{d},{o_id}): ol_cnt {} but {} lines",
                        order.ol_cnt,
                        lines.len()
                    ));
                }
            }
        }
    }
    txn.commit().ok();
    None
}

#[cfg(test)]
mod tests {
    use super::super::{ScaleFactor, TpccConfig, TpccWorkload, TXN_NEW_ORDER};
    use super::*;
    use crate::driver::{run_workload, RunConfig, Workload};
    use ssi_common::IsolationLevel;
    use ssi_core::Options;
    use std::time::Duration;

    fn test_workload(db: &Database) -> TpccWorkload {
        TpccWorkload::setup(
            db,
            TpccConfig {
                scale: ScaleFactor::test_scale(1),
                skip_ytd_updates: false,
                stock_level_mix: false,
                new_order_rollback: 0.0,
            },
        )
    }

    #[test]
    fn new_order_advances_district_counter_and_inserts_rows() {
        let db = Database::open(Options::default());
        let workload = test_workload(&db);
        let mut rng = WorkloadRng::new(5);

        let before_orders = workload.tables.orders.key_count();
        let before_new = workload.tables.new_order.key_count();
        new_order(&workload, &db, &mut rng).unwrap();
        assert_eq!(workload.tables.orders.key_count(), before_orders + 1);
        assert_eq!(workload.tables.new_order.key_count(), before_new + 1);
        assert_eq!(consistency_violations(&workload, &db), None);
    }

    #[test]
    fn payment_updates_customer_and_ytd() {
        let db = Database::open(Options::default());
        let workload = test_workload(&db);
        let mut rng = WorkloadRng::new(6);
        payment(&workload, &db, &mut rng).unwrap();

        // The warehouse YTD total must have grown (skip_ytd_updates=false).
        let mut txn = db.begin();
        let wh = Warehouse::decode(
            &txn.get(&workload.tables.warehouse, &warehouse_key(1))
                .unwrap()
                .unwrap(),
        );
        txn.commit().unwrap();
        assert!(wh.ytd > 0);
    }

    #[test]
    fn delivery_consumes_new_orders() {
        let db = Database::open(Options::default());
        let workload = test_workload(&db);
        let mut rng = WorkloadRng::new(7);
        // Deleted rows become tombstones, so count *visible* pending orders
        // with a scan rather than with `key_count`.
        let pending = |db: &Database| {
            let mut txn = db.begin();
            let rows = txn
                .scan(
                    &workload.tables.new_order,
                    Bound::Unbounded,
                    Bound::Unbounded,
                )
                .unwrap();
            txn.commit().unwrap();
            rows.len()
        };
        let before = pending(&db);
        // Run enough deliveries to consume at least one pending order
        // (random district selection may repeat districts).
        for _ in 0..10 {
            delivery(&workload, &db, &mut rng).unwrap();
        }
        assert!(pending(&db) < before);
        assert_eq!(consistency_violations(&workload, &db), None);
    }

    #[test]
    fn read_only_transactions_run_clean() {
        let db = Database::open(Options::default());
        let workload = test_workload(&db);
        let mut rng = WorkloadRng::new(8);
        for _ in 0..5 {
            order_status(&workload, &db, &mut rng).unwrap();
            stock_level(&workload, &db, &mut rng).unwrap();
        }
    }

    #[test]
    fn credit_check_updates_the_rating() {
        let db = Database::open(Options::default());
        let workload = test_workload(&db);
        let mut rng = WorkloadRng::new(9);
        credit_check(&workload, &db, &mut rng).unwrap();
    }

    #[test]
    fn new_order_rollback_counts_as_user_abort() {
        let db = Database::open(Options::default());
        let workload = TpccWorkload::setup(
            &db,
            TpccConfig {
                scale: ScaleFactor::test_scale(1),
                skip_ytd_updates: false,
                stock_level_mix: false,
                new_order_rollback: 1.0,
            },
        );
        let mut rng = WorkloadRng::new(10);
        let before_orders = workload.tables.orders.key_count();
        let err = new_order(&workload, &db, &mut rng).unwrap_err();
        assert_eq!(err.abort_kind(), Some(AbortKind::UserRequested));
        assert_eq!(workload.tables.orders.key_count(), before_orders);
        assert_eq!(consistency_violations(&workload, &db), None);
    }

    #[test]
    fn short_concurrent_run_keeps_consistency_under_ssi() {
        let db = Database::open(Options::default());
        let workload = test_workload(&db);
        let stats = run_workload(
            &db,
            &workload,
            &RunConfig {
                mpl: 4,
                warmup: Duration::from_millis(20),
                duration: Duration::from_millis(300),
                seed: 99,
            },
        );
        assert!(stats.commits > 0);
        assert!(stats.per_type_commits[TXN_NEW_ORDER] > 0);
        assert_eq!(workload.check_consistency(&db), None);
    }

    #[test]
    fn short_concurrent_run_under_s2pl_also_consistent() {
        let db = Database::open(
            Options::default().with_isolation(IsolationLevel::StrictTwoPhaseLocking),
        );
        let workload = test_workload(&db);
        let stats = run_workload(
            &db,
            &workload,
            &RunConfig {
                mpl: 4,
                warmup: Duration::from_millis(20),
                duration: Duration::from_millis(300),
                seed: 100,
            },
        );
        assert!(stats.commits > 0);
        assert_eq!(workload.check_consistency(&db), None);
    }
}
