//! The SmallBank benchmark (Alomari et al., ICDE 2008), as adapted for a
//! key/value storage interface in Sec. 5.1 of the thesis.
//!
//! Schema:
//!
//! * `account(name) -> customer_id`
//! * `savings(customer_id) -> balance`
//! * `checking(customer_id) -> balance`
//!
//! Five transaction programs run with equal probability: Balance (read
//! only), DepositChecking, TransactSavings, Amalgamate and WriteCheck. The
//! static dependency graph contains the dangerous structure
//! `Balance → WriteCheck → TransactSavings → Balance` with WriteCheck as the
//! pivot (Fig. 2.9), so running the mix under plain SI can violate the
//! "no overdraft without penalty" business rule, while Serializable SI and
//! S2PL cannot.
//!
//! The thesis controls contention through the data volume (Sec. 6.1.2 uses a
//! table of roughly 100 Berkeley DB pages; Sec. 6.1.5 uses ten times more
//! data) and transaction weight through the number of SmallBank operations
//! executed per database transaction (1 in the base workload, 10 in the
//! "complex transactions" workload, Sec. 6.1.4). Both knobs are exposed here.

use ssi_common::encoding::{decode_i64, encode_i64, KeyBuilder};
use ssi_common::rng::WorkloadRng;
use ssi_common::Error;
use ssi_core::{Database, TableRef, Transaction};

use crate::driver::Workload;

/// Transaction-type indexes (also the order reported by the driver).
pub const TXN_BALANCE: usize = 0;
/// DepositChecking.
pub const TXN_DEPOSIT_CHECKING: usize = 1;
/// TransactSavings.
pub const TXN_TRANSACT_SAVINGS: usize = 2;
/// Amalgamate.
pub const TXN_AMALGAMATE: usize = 3;
/// WriteCheck.
pub const TXN_WRITE_CHECK: usize = 4;

/// Application-level techniques for making SmallBank serializable when the
/// engine only offers plain snapshot isolation (Sec. 2.6 and 2.8.5 of the
/// thesis). They are the state of the art the paper argues against: each
/// requires a static analysis of the whole transaction mix and a manual
/// modification of the programs, and each has a different performance
/// profile. With Serializable SI none of them is needed.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Mitigation {
    /// Run the programs unmodified (correct only under SSI or S2PL).
    #[default]
    None,
    /// MaterializeWT: WriteCheck and TransactSavings both update a row of an
    /// otherwise unused `conflict` table keyed by customer, turning the
    /// vulnerable WC→TS edge into a write-write conflict.
    MaterializeWriteCheckTransact,
    /// PromoteWT: WriteCheck performs an identity write ("promotion") of the
    /// savings row it only needs to read.
    PromoteWriteCheckTransact,
    /// MaterializeBW: Balance and WriteCheck both update the `conflict`
    /// table row, breaking the vulnerable Bal→WC edge (turns the read-only
    /// Balance program into an update).
    MaterializeBalanceWriteCheck,
    /// PromoteBW: Balance performs an identity write of the checking row it
    /// reads (the technique recommended by vendor documentation, and the
    /// most expensive one in Alomari et al.'s measurements).
    PromoteBalanceWriteCheck,
}

impl Mitigation {
    /// All mitigation variants, for sweeps and tests.
    pub const ALL: [Mitigation; 5] = [
        Mitigation::None,
        Mitigation::MaterializeWriteCheckTransact,
        Mitigation::PromoteWriteCheckTransact,
        Mitigation::MaterializeBalanceWriteCheck,
        Mitigation::PromoteBalanceWriteCheck,
    ];

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Mitigation::None => "none",
            Mitigation::MaterializeWriteCheckTransact => "materialize-wt",
            Mitigation::PromoteWriteCheckTransact => "promote-wt",
            Mitigation::MaterializeBalanceWriteCheck => "materialize-bw",
            Mitigation::PromoteBalanceWriteCheck => "promote-bw",
        }
    }

    /// True if the technique needs the auxiliary `conflict` table.
    pub fn needs_conflict_table(self) -> bool {
        matches!(
            self,
            Mitigation::MaterializeWriteCheckTransact | Mitigation::MaterializeBalanceWriteCheck
        )
    }
}

/// Parameters of a SmallBank instance.
#[derive(Clone, Debug)]
pub struct SmallBankConfig {
    /// Number of customers (each has one savings and one checking account).
    pub customers: u64,
    /// SmallBank operations executed per database transaction (1 = the
    /// standard workload, 10 = the "complex transactions" workload of
    /// Sec. 6.1.4).
    pub ops_per_txn: usize,
    /// Initial balance of every account, in cents.
    pub initial_balance: i64,
    /// Application-level serializability technique applied to the programs
    /// (only interesting when running at plain SI).
    pub mitigation: Mitigation,
}

impl Default for SmallBankConfig {
    fn default() -> Self {
        SmallBankConfig {
            customers: 1000,
            ops_per_txn: 1,
            initial_balance: 10_000,
            mitigation: Mitigation::None,
        }
    }
}

/// The SmallBank workload bound to a database's tables.
pub struct SmallBank {
    config: SmallBankConfig,
    account: TableRef,
    savings: TableRef,
    checking: TableRef,
    /// Auxiliary table used by the "materialize the conflict" techniques
    /// (Sec. 2.6.1); absent unless the configured mitigation needs it.
    conflict: Option<TableRef>,
}

fn name_of(customer: u64) -> String {
    format!("customer{customer:08}")
}

fn account_key(name: &str) -> Vec<u8> {
    KeyBuilder::new().str(name).build()
}

fn balance_key(customer: u64) -> Vec<u8> {
    KeyBuilder::new().u64(customer).build()
}

impl SmallBank {
    /// Creates the three tables (plus the auxiliary `conflict` table if the
    /// configured mitigation materializes conflicts) and loads the initial
    /// population.
    pub fn setup(db: &Database, config: SmallBankConfig) -> Self {
        let account = db.create_table("account").unwrap();
        let savings = db.create_table("savings").unwrap();
        let checking = db.create_table("checking").unwrap();
        let conflict = if config.mitigation.needs_conflict_table() {
            Some(db.create_table("conflict").unwrap())
        } else {
            None
        };

        let batch = 1000;
        let mut customer = 0;
        while customer < config.customers {
            let mut txn = db.begin();
            let end = (customer + batch).min(config.customers);
            for c in customer..end {
                txn.put(&account, &account_key(&name_of(c)), &c.to_be_bytes())
                    .unwrap();
                txn.put(
                    &savings,
                    &balance_key(c),
                    &encode_i64(config.initial_balance),
                )
                .unwrap();
                txn.put(
                    &checking,
                    &balance_key(c),
                    &encode_i64(config.initial_balance),
                )
                .unwrap();
                if let Some(conflict) = &conflict {
                    txn.put(conflict, &balance_key(c), &encode_i64(0)).unwrap();
                }
            }
            txn.commit().unwrap();
            customer = end;
        }
        SmallBank {
            config,
            account,
            savings,
            checking,
            conflict,
        }
    }

    /// The "materialize the conflict" statement of Sec. 2.6.1: bump the
    /// customer's row in the auxiliary table so that two programs touching
    /// the same customer develop a write-write conflict.
    fn touch_conflict_row(&self, txn: &mut Transaction, customer: u64) -> Result<(), Error> {
        if let Some(conflict) = &self.conflict {
            let current = txn
                .get_for_update(conflict, &balance_key(customer))?
                .map(|v| decode_i64(&v))
                .unwrap_or(0);
            txn.put(conflict, &balance_key(customer), &encode_i64(current + 1))?;
        }
        Ok(())
    }

    /// The "promotion" statement of Sec. 2.6.2: an identity write of a row
    /// the program only reads, so the first-committer-wins rule serializes
    /// it against concurrent writers of that row.
    fn promote_row(
        &self,
        txn: &mut Transaction,
        table: &TableRef,
        customer: u64,
    ) -> Result<(), Error> {
        let value = txn
            .get_for_update(table, &balance_key(customer))?
            .unwrap_or_else(|| encode_i64(0).into());
        txn.put(table, &balance_key(customer), &value)
    }

    /// Workload parameters.
    pub fn config(&self) -> &SmallBankConfig {
        &self.config
    }

    /// Total money in the system (sum of all balances); used by consistency
    /// checks — DepositChecking, WriteCheck and TransactSavings change the
    /// total, so the invariant checked after a run is only that no *negative
    /// savings* balance exists (TransactSavings refuses overdrafts) — see
    /// [`SmallBank::negative_savings_accounts`].
    pub fn total_balance(&self, db: &Database) -> i64 {
        let mut txn = db.begin();
        let mut total = 0;
        for table in [&self.savings, &self.checking] {
            let rows = txn
                .scan(
                    table,
                    std::ops::Bound::Unbounded,
                    std::ops::Bound::Unbounded,
                )
                .unwrap();
            total += rows.iter().map(|(_, v)| decode_i64(v)).sum::<i64>();
        }
        txn.commit().unwrap();
        total
    }

    /// Number of customers whose savings balance is negative. TransactSavings
    /// checks the balance before withdrawing, so in any serializable
    /// execution this is zero; under plain SI, write skew between
    /// WriteCheck and TransactSavings can push it below zero.
    pub fn negative_savings_accounts(&self, db: &Database) -> usize {
        let mut txn = db.begin();
        let rows = txn
            .scan(
                &self.savings,
                std::ops::Bound::Unbounded,
                std::ops::Bound::Unbounded,
            )
            .unwrap();
        let count = rows.iter().filter(|(_, v)| decode_i64(v) < 0).count();
        txn.commit().unwrap();
        count
    }

    fn lookup_customer(&self, txn: &mut Transaction, customer: u64) -> Result<u64, Error> {
        let name = name_of(customer);
        let id = txn
            .get(&self.account, &account_key(&name))?
            .map(|v| u64::from_be_bytes(v[..].try_into().unwrap()))
            .unwrap_or(customer);
        Ok(id)
    }

    fn read_balance(
        &self,
        txn: &mut Transaction,
        table: &TableRef,
        customer: u64,
    ) -> Result<i64, Error> {
        Ok(txn
            .get(table, &balance_key(customer))?
            .map(|v| decode_i64(&v))
            .unwrap_or(0))
    }

    fn write_balance(
        &self,
        txn: &mut Transaction,
        table: &TableRef,
        customer: u64,
        balance: i64,
    ) -> Result<(), Error> {
        txn.put(table, &balance_key(customer), &encode_i64(balance))
    }

    /// Balance(N): return the sum of savings and checking balances.
    fn op_balance(&self, txn: &mut Transaction, customer: u64) -> Result<(), Error> {
        let id = self.lookup_customer(txn, customer)?;
        let _total = self.read_balance(txn, &self.savings, id)?
            + self.read_balance(txn, &self.checking, id)?;
        match self.config.mitigation {
            // Break the vulnerable Bal → WC edge (Sec. 2.8.5).
            Mitigation::MaterializeBalanceWriteCheck => self.touch_conflict_row(txn, id)?,
            Mitigation::PromoteBalanceWriteCheck => self.promote_row(txn, &self.checking, id)?,
            _ => {}
        }
        Ok(())
    }

    /// DepositChecking(N, V): add V to the checking balance.
    fn op_deposit_checking(
        &self,
        txn: &mut Transaction,
        customer: u64,
        amount: i64,
    ) -> Result<(), Error> {
        let id = self.lookup_customer(txn, customer)?;
        let balance = self.read_balance(txn, &self.checking, id)?;
        self.write_balance(txn, &self.checking, id, balance + amount)
    }

    /// TransactSavings(N, V): add V to the savings balance, refusing to make
    /// it negative.
    fn op_transact_savings(
        &self,
        txn: &mut Transaction,
        customer: u64,
        amount: i64,
    ) -> Result<(), Error> {
        let id = self.lookup_customer(txn, customer)?;
        if self.config.mitigation == Mitigation::MaterializeWriteCheckTransact {
            self.touch_conflict_row(txn, id)?;
        }
        let balance = self.read_balance(txn, &self.savings, id)?;
        if balance + amount < 0 {
            // Application-level rollback; the driver counts it separately.
            return Err(Error::abort(ssi_common::AbortKind::UserRequested, txn.id()));
        }
        self.write_balance(txn, &self.savings, id, balance + amount)
    }

    /// Amalgamate(N1, N2): move all funds of N1 into N2's checking account.
    fn op_amalgamate(
        &self,
        txn: &mut Transaction,
        customer1: u64,
        customer2: u64,
    ) -> Result<(), Error> {
        let id1 = self.lookup_customer(txn, customer1)?;
        let id2 = self.lookup_customer(txn, customer2)?;
        let total = self.read_balance(txn, &self.savings, id1)?
            + self.read_balance(txn, &self.checking, id1)?;
        let dest = self.read_balance(txn, &self.checking, id2)?;
        self.write_balance(txn, &self.checking, id2, dest + total)?;
        self.write_balance(txn, &self.savings, id1, 0)?;
        self.write_balance(txn, &self.checking, id1, 0)
    }

    /// WriteCheck(N, V): deduct V from checking, charging a $1 penalty if the
    /// combined balance is insufficient. This is the pivot of SmallBank's
    /// dangerous structure.
    fn op_write_check(
        &self,
        txn: &mut Transaction,
        customer: u64,
        amount: i64,
    ) -> Result<(), Error> {
        let id = self.lookup_customer(txn, customer)?;
        match self.config.mitigation {
            // Break the vulnerable WC → TS edge (Sec. 2.8.5): either both
            // programs write the conflict row, or WriteCheck promotes its
            // read of the savings row to an (identity) write.
            Mitigation::MaterializeWriteCheckTransact
            | Mitigation::MaterializeBalanceWriteCheck => self.touch_conflict_row(txn, id)?,
            Mitigation::PromoteWriteCheckTransact => self.promote_row(txn, &self.savings, id)?,
            _ => {}
        }
        let combined = self.read_balance(txn, &self.savings, id)?
            + self.read_balance(txn, &self.checking, id)?;
        let checking = self.read_balance(txn, &self.checking, id)?;
        if combined < amount {
            self.write_balance(txn, &self.checking, id, checking - amount - 100)
        } else {
            self.write_balance(txn, &self.checking, id, checking - amount)
        }
    }

    /// Runs one randomly chosen SmallBank operation inside an already-open
    /// transaction; returns the operation's type index.
    fn run_random_op(&self, txn: &mut Transaction, rng: &mut WorkloadRng) -> Result<usize, Error> {
        let customer = rng.uniform(0, self.config.customers - 1);
        let amount = rng.uniform(1, 100) as i64;
        let ty = rng.index(5);
        match ty {
            TXN_BALANCE => self.op_balance(txn, customer)?,
            TXN_DEPOSIT_CHECKING => self.op_deposit_checking(txn, customer, amount)?,
            TXN_TRANSACT_SAVINGS => {
                // Mix deposits and withdrawals; withdrawals may be refused.
                let signed = if rng.chance(0.5) { amount } else { -amount };
                self.op_transact_savings(txn, customer, signed)?
            }
            TXN_AMALGAMATE => {
                let other = rng.uniform(0, self.config.customers - 1);
                self.op_amalgamate(txn, customer, other)?
            }
            _ => self.op_write_check(txn, customer, amount)?,
        }
        Ok(ty)
    }
}

impl Workload for SmallBank {
    fn name(&self) -> &str {
        "smallbank"
    }

    fn transaction_types(&self) -> usize {
        5
    }

    fn transaction_type_name(&self, ty: usize) -> &'static str {
        match ty {
            TXN_BALANCE => "Balance",
            TXN_DEPOSIT_CHECKING => "DepositChecking",
            TXN_TRANSACT_SAVINGS => "TransactSavings",
            TXN_AMALGAMATE => "Amalgamate",
            TXN_WRITE_CHECK => "WriteCheck",
            _ => "unknown",
        }
    }

    fn execute_one(&self, db: &Database, rng: &mut WorkloadRng) -> (usize, Result<(), Error>) {
        // The "complex transactions" workload groups several SmallBank
        // operations into one database transaction (Sec. 6.1.4). A purely
        // read-only transaction (all operations are Balance) is begun via
        // `begin_read_only` so the mixed SI/SSI mode of Sec. 3.8 can apply.
        let mut txn = db.begin();
        let mut first_type = TXN_BALANCE;
        let result = (|| {
            for i in 0..self.config.ops_per_txn.max(1) {
                let ty = self.run_random_op(&mut txn, rng)?;
                if i == 0 {
                    first_type = ty;
                }
            }
            Ok(())
        })();
        match result {
            Ok(()) => (first_type, txn.commit()),
            Err(e) => (first_type, Err(e)),
        }
    }

    fn check_consistency(&self, db: &Database) -> Option<String> {
        let negative = self.negative_savings_accounts(db);
        if negative > 0 {
            Some(format!("{negative} savings accounts are negative"))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_workload, RunConfig};
    use ssi_core::Options;
    use std::time::Duration;

    fn small_config() -> SmallBankConfig {
        SmallBankConfig {
            customers: 50,
            ops_per_txn: 1,
            initial_balance: 1_000,
            mitigation: Mitigation::None,
        }
    }

    #[test]
    fn setup_loads_all_customers() {
        let db = Database::open(Options::default());
        let bank = SmallBank::setup(&db, small_config());
        assert_eq!(bank.account.key_count(), 50);
        assert_eq!(bank.savings.key_count(), 50);
        assert_eq!(bank.checking.key_count(), 50);
        assert_eq!(bank.total_balance(&db), 50 * 2 * 1_000);
        assert_eq!(bank.negative_savings_accounts(&db), 0);
    }

    #[test]
    fn operations_have_expected_effects() {
        let db = Database::open(Options::default());
        let bank = SmallBank::setup(&db, small_config());

        // Deposit 500 into customer 3's checking.
        let mut txn = db.begin();
        bank.op_deposit_checking(&mut txn, 3, 500).unwrap();
        txn.commit().unwrap();

        // Amalgamate customer 3 into customer 4.
        let mut txn = db.begin();
        bank.op_amalgamate(&mut txn, 3, 4).unwrap();
        txn.commit().unwrap();

        let mut txn = db.begin();
        let s3 = bank.read_balance(&mut txn, &bank.savings, 3).unwrap();
        let c3 = bank.read_balance(&mut txn, &bank.checking, 3).unwrap();
        let c4 = bank.read_balance(&mut txn, &bank.checking, 4).unwrap();
        txn.commit().unwrap();
        assert_eq!((s3, c3), (0, 0));
        assert_eq!(c4, 1_000 + 1_000 + 500 + 1_000);
        // Money is conserved by these two operations.
        assert_eq!(bank.total_balance(&db), 50 * 2 * 1_000 + 500);
    }

    #[test]
    fn transact_savings_refuses_overdraft() {
        let db = Database::open(Options::default());
        let bank = SmallBank::setup(&db, small_config());
        let mut txn = db.begin();
        let err = bank.op_transact_savings(&mut txn, 1, -5_000).unwrap_err();
        assert_eq!(err.abort_kind(), Some(ssi_common::AbortKind::UserRequested));
    }

    #[test]
    fn write_check_applies_penalty_on_overdraft() {
        let db = Database::open(Options::default());
        let bank = SmallBank::setup(&db, small_config());
        let mut txn = db.begin();
        bank.op_write_check(&mut txn, 2, 5_000).unwrap();
        txn.commit().unwrap();
        let mut txn = db.begin();
        let checking = bank.read_balance(&mut txn, &bank.checking, 2).unwrap();
        txn.commit().unwrap();
        // 1000 - 5000 - 100 penalty.
        assert_eq!(checking, -4_100);
    }

    #[test]
    fn mitigation_metadata() {
        assert_eq!(Mitigation::ALL.len(), 5);
        assert!(Mitigation::MaterializeWriteCheckTransact.needs_conflict_table());
        assert!(Mitigation::MaterializeBalanceWriteCheck.needs_conflict_table());
        assert!(!Mitigation::PromoteWriteCheckTransact.needs_conflict_table());
        assert!(!Mitigation::None.needs_conflict_table());
        let labels: std::collections::HashSet<&str> =
            Mitigation::ALL.iter().map(|m| m.label()).collect();
        assert_eq!(labels.len(), 5);
    }

    /// Sec. 2.8.5: each application-level technique must stop WriteCheck and
    /// TransactSavings from running concurrently on the same customer under
    /// plain SI — either through a write-write (first-committer-wins)
    /// conflict on the materialized row, or by blocking on the promoted
    /// row. Without a technique, the same interleaving commits on both
    /// sides (that is the dangerous structure).
    #[test]
    fn wt_mitigations_serialize_writecheck_and_transactsavings_under_si() {
        use ssi_common::IsolationLevel;

        let run = |mitigation: Mitigation| -> bool {
            let mut options = Options::default().with_isolation(IsolationLevel::SnapshotIsolation);
            // The single-threaded interleaving cannot release blocking
            // locks, so a short timeout stands in for "the technique forced
            // the programs to serialize".
            options.lock.wait_timeout = std::time::Duration::from_millis(50);
            let db = Database::open(options);
            let bank = SmallBank::setup(
                &db,
                SmallBankConfig {
                    customers: 4,
                    ops_per_txn: 1,
                    initial_balance: 1_000,
                    mitigation,
                },
            );
            let mut wc = db.begin();
            let mut ts = db.begin();
            // Pin both snapshots first, as in the anomaly.
            let _ = bank.op_balance(&mut wc, 0);
            let _ = bank.op_balance(&mut ts, 0);
            let r1 = bank
                .op_write_check(&mut wc, 0, 100)
                .and_then(|_| wc.commit());
            let r2 = bank
                .op_transact_savings(&mut ts, 0, -100)
                .and_then(|_| ts.commit());
            r1.is_ok() && r2.is_ok()
        };

        assert!(
            run(Mitigation::None),
            "without a technique both programs commit under SI"
        );
        assert!(
            !run(Mitigation::MaterializeWriteCheckTransact),
            "materializing the WC/TS conflict must stop one of them"
        );
        assert!(
            !run(Mitigation::PromoteWriteCheckTransact),
            "promoting WriteCheck's savings read must stop one of them"
        );
    }

    /// The BW techniques break the Balance → WriteCheck edge instead: a
    /// Balance and a WriteCheck for the same customer can no longer overlap.
    #[test]
    fn bw_mitigations_serialize_balance_and_writecheck_under_si() {
        use ssi_common::IsolationLevel;

        let run = |mitigation: Mitigation| -> bool {
            let mut options = Options::default().with_isolation(IsolationLevel::SnapshotIsolation);
            options.lock.wait_timeout = std::time::Duration::from_millis(50);
            let db = Database::open(options);
            let bank = SmallBank::setup(
                &db,
                SmallBankConfig {
                    customers: 4,
                    ops_per_txn: 1,
                    initial_balance: 1_000,
                    mitigation,
                },
            );
            let mut wc = db.begin();
            let mut bal = db.begin();
            let r1 = bank
                .op_write_check(&mut wc, 0, 100)
                .and_then(|_| wc.commit());
            let r2 = bank.op_balance(&mut bal, 0).and_then(|_| bal.commit());
            r1.is_ok() && r2.is_ok()
        };

        // Sequentially ordered calls never conflict without a technique…
        assert!(run(Mitigation::None));
        // …but the interleaved versions do once the conflict is introduced.
        let run_interleaved = |mitigation: Mitigation| -> bool {
            let mut options = Options::default().with_isolation(IsolationLevel::SnapshotIsolation);
            options.lock.wait_timeout = std::time::Duration::from_millis(50);
            let db = Database::open(options);
            let bank = SmallBank::setup(
                &db,
                SmallBankConfig {
                    customers: 4,
                    ops_per_txn: 1,
                    initial_balance: 1_000,
                    mitigation,
                },
            );
            let mut wc = db.begin();
            let mut bal = db.begin();
            // Balance performs its (possibly promoted/materialized) reads
            // first, then WriteCheck runs and commits, then Balance commits.
            let r_bal_ops = bank.op_balance(&mut bal, 0);
            let r1 = bank
                .op_write_check(&mut wc, 0, 100)
                .and_then(|_| wc.commit());
            let r2 = r_bal_ops.and_then(|_| bal.commit());
            r1.is_ok() && r2.is_ok()
        };
        assert!(run_interleaved(Mitigation::None));
        assert!(!run_interleaved(Mitigation::MaterializeBalanceWriteCheck));
        assert!(!run_interleaved(Mitigation::PromoteBalanceWriteCheck));
    }

    #[test]
    fn driver_run_is_consistent_under_ssi() {
        let db = Database::open(Options::default());
        let bank = SmallBank::setup(
            &db,
            SmallBankConfig {
                customers: 20,
                ops_per_txn: 1,
                initial_balance: 1_000,
                mitigation: Mitigation::None,
            },
        );
        let stats = run_workload(
            &db,
            &bank,
            &RunConfig {
                mpl: 4,
                warmup: Duration::from_millis(20),
                duration: Duration::from_millis(300),
                seed: 3,
            },
        );
        assert!(stats.commits > 0);
        assert_eq!(bank.check_consistency(&db), None);
    }
}
