//! Regression test distilled from a proptest-discovered schedule: three
//! transactions whose committed subset must stay serializable under
//! Serializable SI. Kept as a named test (rather than only a proptest seed)
//! because it exercises a subtle combination of scans, deletes and
//! committed-suspended readers.

use serializable_si::{Database, IsolationLevel, Options};

/// A pivot whose outgoing neighbour is a pure (blind) writer that commits
/// and is retired before the pivot reads: the pivot's outgoing conflict can
/// then only be discovered through the ignored newer version, whose creator
/// is no longer registered. The engine must still record the pivot's
/// outgoing conflict (conservatively) or this read-only-anomaly-shaped
/// schedule commits non-serializably.
#[test]
fn proptest_regression_retired_blind_writer_schedule() {
    let db = Database::open(
        Options::default()
            .with_isolation(IsolationLevel::SerializableSnapshotIsolation)
            .with_history(),
    );
    let table = db.create_table("t").unwrap();
    let mut setup = db.begin();
    for k in 0u8..8 {
        setup.put(&table, &[k], &[0]).unwrap();
    }
    setup.commit().unwrap();

    // T2: blind Put(1); T1: Delete(3) then ScanAll; T0: ScanAll.
    // Order: T2.put, T1.delete, T2.commit, T1.scan, T0.scan, T0.commit,
    // T1.commit.
    let mut t0 = Some(db.begin());
    let mut t1 = Some(db.begin());
    let mut t2 = Some(db.begin());
    let mut committed = 0usize;

    let run = |slot: &mut Option<serializable_si::Transaction>,
               op: &mut dyn FnMut(&mut serializable_si::Transaction) -> bool| {
        if let Some(handle) = slot.as_mut() {
            if !op(handle) {
                *slot = None;
            }
        }
    };
    run(&mut t2, &mut |h| h.put(&table, &[1], &[47]).is_ok());
    run(&mut t1, &mut |h| h.delete(&table, &[3]).is_ok());
    if let Some(h) = t2.take() {
        if h.commit().is_ok() {
            committed += 1;
        }
    }
    run(&mut t1, &mut |h| h.scan_prefix(&table, &[]).is_ok());
    run(&mut t0, &mut |h| h.scan_prefix(&table, &[]).is_ok());
    if let Some(h) = t0.take() {
        if h.commit().is_ok() {
            committed += 1;
        }
    }
    if let Some(h) = t1.take() {
        if h.commit().is_ok() {
            committed += 1;
        }
    }

    let report = db.history().unwrap().analyze();
    assert!(
        report.is_serializable(),
        "{committed} transactions committed into a cycle: {:?}",
        report.cycle
    );
    // The blind writer and the read-only scan can always commit; only the
    // pivot (T1) may need to abort.
    assert!(committed >= 2);
}

#[test]
fn proptest_regression_scan_delete_schedule() {
    let db = Database::open(
        Options::default()
            .with_isolation(IsolationLevel::SerializableSnapshotIsolation)
            .with_history(),
    );
    let table = db.create_table("t").unwrap();
    let mut setup = db.begin();
    for k in 0u8..8 {
        setup.put(&table, &[k], &[0]).unwrap();
    }
    setup.commit().unwrap();

    // T0: Delete(7), Get(0), Put(7,92); T1: ScanAll, Delete(5);
    // T2: Get(6), Delete(6), Get(5), Get(1).
    // Order: 2,1,2,2,2,2(commit),0,1,0,1(commit),0,0(commit).
    let mut t0 = Some(db.begin());
    let mut t1 = Some(db.begin());
    let mut t2 = Some(db.begin());

    let mut log: Vec<(&str, bool)> = Vec::new();
    macro_rules! step {
        ($name:expr, $txn:ident, $op:expr) => {
            if let Some(handle) = $txn.as_mut() {
                #[allow(clippy::redundant_closure_call)]
                let ok = ($op)(handle).is_ok();
                log.push(($name, ok));
                if !ok {
                    $txn = None;
                }
            }
        };
    }
    macro_rules! commit {
        ($name:expr, $txn:ident) => {
            if let Some(handle) = $txn.take() {
                let ok = handle.commit().is_ok();
                log.push(($name, ok));
            }
        };
    }

    type T<'a> = &'a mut serializable_si::Transaction;
    step!("t2.get6", t2, |h: T| h.get(&table, &[6]));
    step!("t1.scan", t1, |h: T| h.scan_prefix(&table, &[]));
    step!("t2.del6", t2, |h: T| h.delete(&table, &[6]));
    step!("t2.get5", t2, |h: T| h.get(&table, &[5]));
    step!("t2.get1", t2, |h: T| h.get(&table, &[1]));
    commit!("t2.commit", t2);
    step!("t0.del7", t0, |h: T| h.delete(&table, &[7]));
    step!("t1.del5", t1, |h: T| h.delete(&table, &[5]));
    step!("t0.get0", t0, |h: T| h.get(&table, &[0]));
    commit!("t1.commit", t1);
    step!("t0.put7", t0, |h: T| h.put(&table, &[7], &[92]));
    commit!("t0.commit", t0);

    let report = db.history().unwrap().analyze();
    assert!(
        report.is_serializable(),
        "non-serializable history committed; steps: {log:?}; cycle: {:?}; edges: {:?}",
        report.cycle,
        report.edges
    );
}
