//! Write-ahead log with group commit and simulated flush latency.
//!
//! The Berkeley DB evaluation (Sec. 6.1) distinguishes two regimes:
//!
//! * **no flush at commit** — commits return as soon as the log record is in
//!   memory; transactions take ~100 µs and the system is CPU bound;
//! * **flush at commit** — every commit waits for its log record to reach
//!   stable storage (~10 ms on the 2008 hardware); throughput then *grows*
//!   with MPL because group commit lets many transactions share one flush.
//!
//! Real disks are replaced by a configurable per-flush latency. Committers
//! append a record, then wait until a flush that covers their LSN has
//! completed; whichever committer finds no flush in progress becomes the
//! flusher for everything appended so far (classic group commit). This
//! preserves the shape of the paper's figures without requiring actual I/O.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use ssi_common::{Timestamp, TxnId};

/// Configuration of the write-ahead log.
#[derive(Clone, Debug, Default)]
pub struct WalConfig {
    /// Simulated device latency per flush. `None` means commits do not wait
    /// for durability (the "no flush" regime).
    pub flush_latency: Option<Duration>,
}

#[derive(Default)]
struct WalState {
    /// LSN of the last appended record.
    appended_lsn: u64,
    /// LSN up to which records are durable.
    durable_lsn: u64,
    /// True while some thread is performing a flush.
    flush_in_progress: bool,
}

/// In-memory write-ahead log.
pub struct WriteAheadLog {
    config: WalConfig,
    state: Mutex<WalState>,
    flushed: Condvar,
    /// Total commit records appended.
    records: AtomicU64,
    /// Total bytes accounted to appended records.
    bytes: AtomicU64,
    /// Number of physical (simulated) flushes performed.
    flushes: AtomicU64,
}

impl WriteAheadLog {
    /// Creates a log with the given configuration.
    pub fn new(config: WalConfig) -> Self {
        WriteAheadLog {
            config,
            state: Mutex::new(WalState::default()),
            flushed: Condvar::new(),
            records: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
        }
    }

    /// True if commits wait for a (simulated) flush.
    pub fn flushes_on_commit(&self) -> bool {
        self.config.flush_latency.is_some()
    }

    /// Appends a commit record for `txn` covering `payload_bytes` bytes of
    /// redo information and, if the log is configured with a flush latency,
    /// blocks until the record is durable. Returns the record's LSN.
    pub fn commit_record(&self, txn: TxnId, commit_ts: Timestamp, payload_bytes: usize) -> u64 {
        let _ = (txn, commit_ts);
        self.records.fetch_add(1, Ordering::Relaxed);
        self.bytes
            .fetch_add(payload_bytes as u64 + 32, Ordering::Relaxed);

        let mut state = self.state.lock();
        state.appended_lsn += 1;
        let my_lsn = state.appended_lsn;

        let Some(latency) = self.config.flush_latency else {
            state.durable_lsn = my_lsn;
            return my_lsn;
        };

        loop {
            if state.durable_lsn >= my_lsn {
                return my_lsn;
            }
            if !state.flush_in_progress {
                // Become the flusher for everything appended so far.
                state.flush_in_progress = true;
                let flush_to = state.appended_lsn;
                drop(state);

                // Simulated device write.
                std::thread::sleep(latency);
                self.flushes.fetch_add(1, Ordering::Relaxed);

                state = self.state.lock();
                state.durable_lsn = state.durable_lsn.max(flush_to);
                state.flush_in_progress = false;
                self.flushed.notify_all();
            } else {
                self.flushed.wait(&mut state);
            }
        }
    }

    /// Number of commit records appended so far.
    pub fn record_count(&self) -> u64 {
        self.records.load(Ordering::Relaxed)
    }

    /// Number of simulated device flushes performed so far.
    pub fn flush_count(&self) -> u64 {
        self.flushes.load(Ordering::Relaxed)
    }

    /// Total bytes accounted to the log.
    pub fn byte_count(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

impl Default for WriteAheadLog {
    fn default() -> Self {
        Self::new(WalConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    fn t(id: u64) -> TxnId {
        TxnId(id)
    }

    #[test]
    fn no_flush_mode_is_immediate() {
        let wal = WriteAheadLog::new(WalConfig {
            flush_latency: None,
        });
        let start = Instant::now();
        for i in 0..100 {
            wal.commit_record(t(i), i + 1, 64);
        }
        assert!(start.elapsed() < Duration::from_millis(50));
        assert_eq!(wal.record_count(), 100);
        assert_eq!(wal.flush_count(), 0);
        assert!(!wal.flushes_on_commit());
    }

    #[test]
    fn lsns_are_monotonic() {
        let wal = WriteAheadLog::default();
        let a = wal.commit_record(t(1), 1, 10);
        let b = wal.commit_record(t(2), 2, 10);
        let c = wal.commit_record(t(3), 3, 10);
        assert!(a < b && b < c);
    }

    #[test]
    fn flush_mode_waits_for_durability() {
        let latency = Duration::from_millis(20);
        let wal = WriteAheadLog::new(WalConfig {
            flush_latency: Some(latency),
        });
        let start = Instant::now();
        wal.commit_record(t(1), 1, 64);
        assert!(start.elapsed() >= latency);
        assert_eq!(wal.flush_count(), 1);
        assert!(wal.flushes_on_commit());
    }

    #[test]
    fn group_commit_shares_flushes() {
        // 8 threads each commit 5 records with a 10 ms flush. Without group
        // commit that would need 40 flushes (>=400 ms of device time); with
        // group commit concurrent committers share flushes, so the flush
        // count must be clearly smaller than the record count.
        let wal = Arc::new(WriteAheadLog::new(WalConfig {
            flush_latency: Some(Duration::from_millis(10)),
        }));
        std::thread::scope(|s| {
            for i in 0..8u64 {
                let wal = wal.clone();
                s.spawn(move || {
                    for j in 0..5u64 {
                        wal.commit_record(t(i * 10 + j), j + 1, 128);
                    }
                });
            }
        });
        assert_eq!(wal.record_count(), 40);
        assert!(
            wal.flush_count() < 40,
            "expected group commit to batch flushes, got {}",
            wal.flush_count()
        );
        assert!(wal.byte_count() >= 40 * 128);
    }
}
