//! Command-line harness that regenerates the evaluation figures of the
//! thesis (Chapter 6). See EXPERIMENTS.md for the mapping and for recorded
//! results.
//!
//! ```bash
//! # list experiments
//! cargo run --release -p ssi-bench --bin experiments -- list
//!
//! # run one figure (quick mode)
//! cargo run --release -p ssi-bench --bin experiments -- fig6_7
//!
//! # run everything the thesis reports, with longer measurements
//! cargo run --release -p ssi-bench --bin experiments -- all --duration 5
//!
//! # full data scale (TPC-C standard row counts, longer MPL sweep)
//! cargo run --release -p ssi-bench --bin experiments -- fig6_13 --full --duration 10
//! ```

use std::time::Duration;

use ssi_bench::{all_experiments, find_experiment, format_table, run_experiment, HarnessConfig};

fn print_usage() {
    println!(
        "usage: experiments <list | all | fig6_N ...> [--full] [--duration SECONDS] \
         [--warmup SECONDS] [--seed N]"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        print_usage();
        return;
    }

    let mut harness = HarnessConfig::default();
    let mut selected: Vec<String> = Vec::new();
    let mut run_all = false;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "list" => {
                for def in all_experiments() {
                    println!("{:<9} {:<12} {}", def.id, def.figure, def.title);
                }
                return;
            }
            "all" => run_all = true,
            "--full" => harness.full = true,
            "--duration" => {
                let value = iter.next().expect("--duration requires a value");
                harness.duration = Duration::from_secs_f64(value.parse().expect("seconds"));
            }
            "--warmup" => {
                let value = iter.next().expect("--warmup requires a value");
                harness.warmup = Duration::from_secs_f64(value.parse().expect("seconds"));
            }
            "--seed" => {
                let value = iter.next().expect("--seed requires a value");
                harness.seed = value.parse().expect("seed");
            }
            "--help" | "-h" => {
                print_usage();
                return;
            }
            other => selected.push(other.to_string()),
        }
    }

    let experiments = if run_all {
        all_experiments()
    } else {
        let mut chosen = Vec::new();
        for id in &selected {
            match find_experiment(id) {
                Some(def) => chosen.push(def),
                None => {
                    eprintln!("unknown experiment '{id}' (use 'list' to see the catalogue)");
                    std::process::exit(1);
                }
            }
        }
        if chosen.is_empty() {
            print_usage();
            return;
        }
        chosen
    };

    println!(
        "# Serializable SI reproduction — experiment harness\n\
         # mode: {}, duration/point: {:?}, warmup: {:?}, seed: {}\n",
        if harness.full { "full" } else { "quick" },
        harness.duration,
        harness.warmup,
        harness.seed
    );

    for def in experiments {
        eprintln!("running {} ({}) ...", def.id, def.figure);
        let started = std::time::Instant::now();
        let points = run_experiment(&def, &harness);
        println!("{}", format_table(&def, &points));
        eprintln!("  done in {:.1?}\n", started.elapsed());
    }
}
