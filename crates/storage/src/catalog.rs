//! The catalog: named tables (and secondary indexes) of one database
//! instance. Indexes draw their ids from the same counter as tables, so a
//! [`TableId`] addresses either a table's row space or an index's entry
//! space — which is what lets lock keys and history records cover index
//! reads without a second key type.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use ssi_common::{Error, Result, TableId, Timestamp};

use crate::index::{Index, IndexDef, IndexKeySpec};
use crate::table::{PurgeStats, Table};

/// Set of tables addressable by name or by [`TableId`].
#[derive(Default)]
pub struct Catalog {
    by_name: RwLock<HashMap<String, Arc<Table>>>,
    by_id: RwLock<HashMap<TableId, Arc<Table>>>,
    indexes_by_name: RwLock<HashMap<String, Arc<Index>>>,
    indexes_by_id: RwLock<HashMap<TableId, Arc<Index>>>,
    next_id: AtomicU32,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog {
            by_name: RwLock::new(HashMap::new()),
            by_id: RwLock::new(HashMap::new()),
            indexes_by_name: RwLock::new(HashMap::new()),
            indexes_by_id: RwLock::new(HashMap::new()),
            next_id: AtomicU32::new(1),
        }
    }

    /// Creates a new empty table, failing if the name is taken.
    pub fn create_table(&self, name: &str) -> Result<Arc<Table>> {
        let mut by_name = self.by_name.write();
        if by_name.contains_key(name) {
            return Err(Error::TableExists(name.to_string()));
        }
        let id = TableId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let table = Arc::new(Table::new(id, name));
        by_name.insert(name.to_string(), table.clone());
        self.by_id.write().insert(id, table.clone());
        Ok(table)
    }

    /// Creates a table with an explicit id (crash recovery rebuilding a
    /// persisted catalog). Idempotent for a matching `(id, name)` pair —
    /// the existing handle is returned — and an error when either the name
    /// or the id is already bound differently. `next_id` is advanced past
    /// `id` so later dynamic creates never collide with recovered tables.
    pub fn create_table_with_id(&self, id: TableId, name: &str) -> Result<Arc<Table>> {
        let mut by_name = self.by_name.write();
        let mut by_id = self.by_id.write();
        match (by_name.get(name), by_id.get(&id)) {
            (Some(existing), _) if existing.id() == id => return Ok(existing.clone()),
            (Some(_), _) | (_, Some(_)) => return Err(Error::TableExists(name.to_string())),
            (None, None) => {}
        }
        self.next_id.fetch_max(id.0 + 1, Ordering::Relaxed);
        let table = Arc::new(Table::new(id, name));
        by_name.insert(name.to_string(), table.clone());
        by_id.insert(id, table.clone());
        Ok(table)
    }

    /// The id the next [`Catalog::create_table`] will assign, for callers
    /// that must write the id somewhere (a redo log) *before* publishing
    /// the table. Only meaningful while the caller serializes creates.
    pub fn next_table_id(&self) -> TableId {
        TableId(self.next_id.load(Ordering::Relaxed))
    }

    /// Creates a secondary index on `table` and backfills it from the
    /// table's resident versions (atomic with respect to concurrent writes
    /// — see [`Table::register_index`]). Index names live in their own
    /// namespace; the id comes from the shared table-id counter.
    pub fn create_index(
        &self,
        name: &str,
        table: &Arc<Table>,
        unique: bool,
        spec: IndexKeySpec,
    ) -> Result<Arc<Index>> {
        let mut by_name = self.indexes_by_name.write();
        if by_name.contains_key(name) {
            return Err(Error::TableExists(name.to_string()));
        }
        let id = TableId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let index = Arc::new(Index::new(IndexDef {
            id,
            name: name.to_string(),
            table: table.id(),
            unique,
            spec,
        }));
        table.register_index(index.clone());
        by_name.insert(name.to_string(), index.clone());
        self.indexes_by_id.write().insert(id, index.clone());
        Ok(index)
    }

    /// Creates an index with an explicit id (crash recovery replaying a
    /// logged create-index record). Idempotent for a matching `(id, name)`
    /// pair — the existing handle is returned *without* a second backfill —
    /// and an error when either is already bound differently. `next_id` is
    /// advanced past `id` like [`Catalog::create_table_with_id`].
    pub fn create_index_with_id(
        &self,
        id: TableId,
        name: &str,
        table: &Arc<Table>,
        unique: bool,
        spec: IndexKeySpec,
    ) -> Result<Arc<Index>> {
        let mut by_name = self.indexes_by_name.write();
        let mut by_id = self.indexes_by_id.write();
        match (by_name.get(name), by_id.get(&id)) {
            (Some(existing), _) if existing.id() == id => return Ok(existing.clone()),
            (Some(_), _) | (_, Some(_)) => return Err(Error::TableExists(name.to_string())),
            (None, None) => {}
        }
        self.next_id.fetch_max(id.0 + 1, Ordering::Relaxed);
        let index = Arc::new(Index::new(IndexDef {
            id,
            name: name.to_string(),
            table: table.id(),
            unique,
            spec,
        }));
        table.register_index(index.clone());
        by_name.insert(name.to_string(), index.clone());
        by_id.insert(id, index.clone());
        Ok(index)
    }

    /// Looks an index up by name.
    pub fn index(&self, name: &str) -> Result<Arc<Index>> {
        self.indexes_by_name
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| Error::NoSuchTable(name.to_string()))
    }

    /// Looks an index up by id.
    pub fn index_by_id(&self, id: TableId) -> Result<Arc<Index>> {
        self.indexes_by_id
            .read()
            .get(&id)
            .cloned()
            .ok_or_else(|| Error::NoSuchTable(format!("{id:?}")))
    }

    /// All indexes (checkpointing re-logs their create records; tests
    /// inspect them). Sorted by id so the order is deterministic.
    pub fn indexes(&self) -> Vec<Arc<Index>> {
        let mut all: Vec<Arc<Index>> = self.indexes_by_id.read().values().cloned().collect();
        all.sort_by_key(|i| i.id().0);
        all
    }

    /// Looks a table up by name.
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        self.by_name
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| Error::NoSuchTable(name.to_string()))
    }

    /// Looks a table up by id.
    pub fn table_by_id(&self, id: TableId) -> Result<Arc<Table>> {
        self.by_id
            .read()
            .get(&id)
            .cloned()
            .ok_or_else(|| Error::NoSuchTable(format!("{id:?}")))
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.by_name.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// All tables (used by garbage collection sweeps).
    pub fn tables(&self) -> Vec<Arc<Table>> {
        self.by_id.read().values().cloned().collect()
    }

    /// Garbage-collects every table at the given reclamation horizon (see
    /// [`Table::purge_old_versions`] for the safety contract the horizon
    /// must satisfy) and returns the combined result.
    pub fn purge_old_versions(&self, horizon: Timestamp) -> PurgeStats {
        let mut stats = PurgeStats::at(horizon);
        for table in self.tables() {
            stats.merge(&table.purge_old_versions(horizon));
        }
        stats
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.by_name.read().len()
    }

    /// True if the catalog has no tables.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_lookup() {
        let cat = Catalog::new();
        assert!(cat.is_empty());
        let t = cat.create_table("accounts").unwrap();
        assert_eq!(t.name(), "accounts");
        assert_eq!(cat.table("accounts").unwrap().id(), t.id());
        assert_eq!(cat.table_by_id(t.id()).unwrap().name(), "accounts");
        assert_eq!(cat.len(), 1);
    }

    #[test]
    fn duplicate_names_rejected() {
        let cat = Catalog::new();
        cat.create_table("x").unwrap();
        assert!(matches!(
            cat.create_table("x"),
            Err(Error::TableExists(name)) if name == "x"
        ));
    }

    #[test]
    fn missing_table_errors() {
        let cat = Catalog::new();
        assert!(matches!(
            cat.table("nope"),
            Err(Error::NoSuchTable(name)) if name == "nope"
        ));
        assert!(cat.table_by_id(TableId(99)).is_err());
    }

    #[test]
    fn create_with_explicit_id_is_idempotent_and_reserves_ids() {
        let cat = Catalog::new();
        let t = cat.create_table_with_id(TableId(7), "recovered").unwrap();
        assert_eq!(t.id(), TableId(7));
        // Same (id, name): idempotent.
        let again = cat.create_table_with_id(TableId(7), "recovered").unwrap();
        assert!(Arc::ptr_eq(&t, &again));
        // Conflicting bindings are rejected.
        assert!(cat.create_table_with_id(TableId(8), "recovered").is_err());
        assert!(cat.create_table_with_id(TableId(7), "other").is_err());
        // Dynamic creates continue past the reserved id.
        let next = cat.create_table("fresh").unwrap();
        assert!(next.id().0 > 7);
    }

    #[test]
    fn next_table_id_peeks_the_upcoming_assignment() {
        let cat = Catalog::new();
        let peeked = cat.next_table_id();
        let t = cat.create_table("x").unwrap();
        assert_eq!(t.id(), peeked);
        assert_ne!(cat.next_table_id(), peeked);
    }

    #[test]
    fn purge_aggregates_across_tables() {
        use ssi_common::TxnId;
        let cat = Catalog::new();
        for name in ["a", "b"] {
            let t = cat.create_table(name).unwrap();
            let v1 = t.install_version(b"k", TxnId(1), Some(vec![1]));
            v1.mark_committed(10);
            let v2 = t.install_version(b"k", TxnId(2), Some(vec![2]));
            v2.mark_committed(20);
        }
        let stats = cat.purge_old_versions(25);
        assert_eq!(stats.horizon, 25);
        assert_eq!(stats.versions, 2, "one stale version per table");
        assert_eq!(stats.chains, 0);
    }

    #[test]
    fn ids_are_unique_and_names_sorted() {
        let cat = Catalog::new();
        let a = cat.create_table("b_table").unwrap();
        let b = cat.create_table("a_table").unwrap();
        assert_ne!(a.id(), b.id());
        assert_eq!(cat.table_names(), vec!["a_table", "b_table"]);
        assert_eq!(cat.tables().len(), 2);
    }
}
