//! Network service layer for the SSI engine: a TCP server speaking a
//! length-framed binary protocol, and a blocking client SDK.
//!
//! Built entirely on `std::net` + worker threads — no async runtime. The
//! engine's concurrency control (SSI conflict detection, group-commit
//! durability) lives below this layer; the server contributes session
//! lifecycle, admission control, and the wire format.
//!
//! # Architecture
//!
//! - One **acceptor** thread owns the listener; each accepted connection
//!   gets a dedicated **worker** thread (capped at
//!   [`ServerOptions::max_connections`]; excess connections are refused
//!   with a typed `busy` error frame).
//! - Each connection is a **session** holding a map from transaction
//!   handle to an open engine [`Transaction`](ssi_core::Transaction), so
//!   one interactive transaction spans many request frames.
//! - A **reaper** thread rolls back transactions of sessions idle past
//!   [`ServerOptions::idle_timeout`] and closes their connections: a
//!   silently dead client must not pin the GC horizon or hold SIREAD/row
//!   locks indefinitely. Disconnects (clean or torn) roll back the
//!   session's open transactions immediately on every worker exit path.
//! - **Admission control**: at most
//!   [`ServerOptions::max_inflight_commits`] requests may be executing a
//!   commit at once. Beyond that, commit-carrying requests are shed with
//!   `busy` — under group-commit durability, commits block on fsync, so
//!   this cap is the backpressure valve for a saturated flush pipeline.
//! - **Graceful drain** ([`Server::shutdown`], also run on drop): stop
//!   accepting, harvest idle sessions, let in-flight requests finish —
//!   a commit whose acknowledgement has been written is never abandoned —
//!   then join every thread before returning. The server's `Database`
//!   handle outlives all workers, so engine maintenance teardown cannot
//!   race server threads.
//!
//! # Framing
//!
//! Every message (both directions) is one frame:
//!
//! ```text
//! +----------------+---------------------+
//! | len: u32 LE    | payload (len bytes) |
//! +----------------+---------------------+
//! ```
//!
//! The length prefix is bounds-checked against a configurable cap
//! ([`ServerOptions::max_frame_bytes`], default 4 MiB) *before* any
//! allocation; an oversized prefix earns one `frame-too-large` error frame
//! and connection close (the stream cannot be re-synchronized once the
//! prefix is distrusted). Reads and writes loop until the full frame is
//! transferred. A payload that arrives whole but fails to decode earns a
//! `bad-request` error and the connection stays usable.
//!
//! Clients may **pipeline**: any number of request frames may be on the
//! wire before the first response is read. The server processes one
//! connection's frames serially and answers strictly in request order.
//!
//! # Request payloads
//!
//! First byte is the opcode; multi-byte integers are little-endian;
//! strings are `u16 len + UTF-8 bytes`; byte strings are `u32 len + bytes`;
//! range bounds are `tag u8 (0 unbounded / 1 included / 2 excluded)
//! [+ bytes]`. Trailing bytes after a well-formed body are rejected.
//!
//! | op | name | body | response |
//! |------|--------------|------|----------|
//! | 0x01 | begin        | `iso u8 (0xff = server default), read_only u8` | `handle(u64)` |
//! | 0x02 | get          | `handle u64, table str, key bytes` | `value(opt bytes)` |
//! | 0x03 | put          | `handle u64, table str, key bytes, value bytes` | `ok` |
//! | 0x04 | delete       | `handle u64, table str, key bytes` | `ok` |
//! | 0x05 | scan         | `handle u64, table str, lower bound, upper bound, limit u32 (0 = all)` | `rows` |
//! | 0x06 | commit       | `handle u64` | `ok` (= durable under group commit) |
//! | 0x07 | rollback     | `handle u64` | `ok` |
//! | 0x08 | create_table | `name str` | `ok` |
//! | 0x09 | metrics      | — | `text` (Prometheus exposition) |
//! | 0x0a | ping         | — | `ok` |
//!
//! Isolation wire codes: `0` read committed, `1` snapshot isolation,
//! `2` strict two-phase locking, `3` serializable SI, `0xff` server
//! default.
//!
//! Handle `0` ([`proto::AUTOCOMMIT`]) on get/put/delete/scan runs the
//! operation in a one-shot transaction (begin + op + commit server-side).
//!
//! # Response payloads
//!
//! First byte is a status (`0` = ok); errors carry a code byte and a
//! `u16`-prefixed message. Ok responses carry a kind tag:
//! `0` empty, `1` handle (`u64`), `2` value (`present u8 [+ bytes]`),
//! `3` rows (`count u32, (key bytes, value bytes)*`), `4` text (`u32 len +
//! UTF-8`).
//!
//! Error codes ([`proto::ErrorCode`]): `1` aborted (SSI/deadlock victim —
//! retry the transaction), `2` txn-closed, `3` no-such-table,
//! `4` table-exists, `5` lock-timeout, `6` internal, `7` durability,
//! `8` degraded, `9` closed, `10` busy (admission shed — back off and
//! retry), `11` bad-request, `12` frame-too-large. `aborted`,
//! `lock-timeout` and `busy` are retryable; the rest are not.
//!
//! # Connection-lifecycle contract
//!
//! Every transaction opened over the wire is owned by exactly one
//! session's handle map, and every way a session can end — clean
//! disconnect, torn connection, decode-poisoned stream, idle reaping,
//! server drain — drains that map, rolling back the survivors. Combined
//! with the engine's own `Transaction: Drop` rollback, no network event
//! can leak an active transaction that would pin the transaction
//! registry's GC horizon or strand row/SIREAD locks.

pub mod client;
pub mod proto;
mod server;

pub use client::{Client, ClientError, ClientResult, ClientTxn};
pub use proto::{ErrorCode, Request, Response, AUTOCOMMIT, DEFAULT_MAX_FRAME_BYTES};
pub use server::{Server, ServerOptions};
