//! Multiversion serialization graph (MVSG) construction and checking.
//!
//! The thesis validates its InnoDB prototype by exhaustively interleaving
//! small transaction sets and manually checking that no non-serializable
//! execution commits (Sec. 4.7). We automate that check: when a database is
//! opened with [`crate::Options::record_history`], every committed
//! transaction's read and write sets are recorded, and [`MvsgReport`] can be
//! built after the run to ask:
//!
//! * is the execution conflict-serializable (is the MVSG acyclic)?
//! * does it contain the *dangerous structure* of Theorem 2 (two consecutive
//!   rw-antidependencies with the outgoing transaction committing first)?
//!
//! The graph is built exactly as in Sec. 2.5.1: ww-edges between writers of
//! the same item in version order, wr-edges from a version's creator to its
//! readers, and rw-antidependencies from a reader of a version to the writer
//! of any later version of the same item.
//!
//! Secondary-index predicates need no special casing here: index scans
//! record their reads (present entries with the claiming row's version
//! timestamp, absences with `version_ts: None`) under the *index's* id, and
//! index maintenance records entry installs/retirements as writes under the
//! same id. An index entry is thus just another item, and a phantom slipping
//! past the entry-space gap locks shows up as an ordinary rw-antidependency
//! cycle.

use std::collections::{HashMap, HashSet};

use parking_lot::Mutex;

use ssi_common::{TableId, Timestamp, TxnId};

/// One recorded read: which version of which item was observed.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ReadRecord {
    /// Table of the item.
    pub table: TableId,
    /// Item key.
    pub key: Vec<u8>,
    /// Commit timestamp of the version read; `None` means the item did not
    /// exist (or only the transaction's own write was visible).
    pub version_ts: Option<Timestamp>,
    /// True if the version was provisionally stamped when read — its
    /// creator was still in its commit window, and the reader registered a
    /// commit dependency instead of waiting for publication. By the time
    /// the reader committed, the creator must have committed too; the
    /// verifier checks exactly that (see
    /// [`MvsgReport::dangling_speculative_reads`]).
    pub speculative: bool,
}

/// One recorded write: a version this transaction created.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct WriteRecordEntry {
    /// Table of the item.
    pub table: TableId,
    /// Item key.
    pub key: Vec<u8>,
    /// True if the version was a deletion tombstone. Lets the verifier
    /// decide whether a later read of *absence* is consistent (the newest
    /// version at the reader's snapshot was a tombstone) or a lost read
    /// (it was a live value the reader should have seen).
    pub tombstone: bool,
}

/// Read/write footprint of one committed transaction.
#[derive(Clone, Debug)]
pub struct CommittedTxn {
    /// Transaction id.
    pub id: TxnId,
    /// Snapshot timestamp.
    pub begin_ts: Timestamp,
    /// Commit timestamp.
    pub commit_ts: Timestamp,
    /// Items read, with the version observed.
    pub reads: Vec<ReadRecord>,
    /// Items written.
    pub writes: Vec<WriteRecordEntry>,
}

/// Collects committed-transaction footprints during a run.
#[derive(Default)]
pub struct HistoryRecorder {
    committed: Mutex<Vec<CommittedTxn>>,
}

impl HistoryRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a committed transaction.
    pub fn record(&self, txn: CommittedTxn) {
        self.committed.lock().push(txn);
    }

    /// Number of committed transactions recorded.
    pub fn len(&self) -> usize {
        self.committed.lock().len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the recorded history.
    pub fn snapshot(&self) -> Vec<CommittedTxn> {
        self.committed.lock().clone()
    }

    /// Builds and analyses the MVSG of the recorded history.
    pub fn analyze(&self) -> MvsgReport {
        MvsgReport::build(&self.snapshot())
    }
}

/// Kind of dependency edge in the MVSG.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EdgeKind {
    /// Write-write dependency (version order).
    Ww,
    /// Write-read dependency (reads-from).
    Wr,
    /// Read-write antidependency (the vulnerable kind under SI).
    Rw,
}

/// A dependency edge between two committed transactions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Edge {
    /// Source transaction.
    pub from: TxnId,
    /// Destination transaction.
    pub to: TxnId,
    /// Edge kind.
    pub kind: EdgeKind,
}

/// A read that observed *absence* although the newest version committed at
/// or before the reader's snapshot was a live value — the reader should
/// have seen it. In a correct engine this cannot happen (version GC never
/// reclaims the newest version at or below any snapshot); it is the
/// signature of a purged-too-early chain or a broken visibility check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LostRead {
    /// The reader.
    pub reader: TxnId,
    /// Table of the item.
    pub table: TableId,
    /// Item key.
    pub key: Vec<u8>,
    /// Commit timestamp of the live version the reader failed to observe.
    pub missed_ts: Timestamp,
}

/// A committed speculative read whose observed version never committed.
/// The reader consumed a provisionally stamped value; its commit dependency
/// on the creator should have either confirmed the version (creator
/// committed, so the version appears in the history) or doomed the reader
/// (creator aborted). A committed reader of a version absent from the
/// history means the dependency was lost — dirty data escaped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DanglingSpeculativeRead {
    /// The reader.
    pub reader: TxnId,
    /// Table of the item.
    pub table: TableId,
    /// Item key.
    pub key: Vec<u8>,
    /// The provisional commit timestamp the reader observed.
    pub version_ts: Timestamp,
}

/// Result of analysing a recorded history.
#[derive(Clone, Debug)]
pub struct MvsgReport {
    /// All edges of the graph.
    pub edges: Vec<Edge>,
    /// A cycle, if one exists (transaction ids in order).
    pub cycle: Option<Vec<TxnId>>,
    /// Pivots of dangerous structures: transactions with an incoming and an
    /// outgoing rw-antidependency from/to concurrent transactions.
    pub pivots: Vec<TxnId>,
    /// Reads of absence that should have observed a live value (see
    /// [`LostRead`]).
    pub lost_reads: Vec<LostRead>,
    /// Speculative reads of versions that never committed (see
    /// [`DanglingSpeculativeRead`]).
    pub dangling_speculative_reads: Vec<DanglingSpeculativeRead>,
}

impl MvsgReport {
    /// True if the history is conflict-serializable: the MVSG is acyclic,
    /// no read lost a value it was entitled to see, and every speculative
    /// read was confirmed by its creator's commit.
    pub fn is_serializable(&self) -> bool {
        self.cycle.is_none()
            && self.lost_reads.is_empty()
            && self.dangling_speculative_reads.is_empty()
    }

    /// Builds the MVSG for a set of committed transactions and analyses it.
    pub fn build(history: &[CommittedTxn]) -> MvsgReport {
        let by_id: HashMap<TxnId, &CommittedTxn> = history.iter().map(|t| (t.id, t)).collect();

        // Index versions per item: (table, key) -> sorted list of
        // (commit_ts, writer, tombstone).
        type VersionIndex<'a> = HashMap<(TableId, &'a [u8]), Vec<(Timestamp, TxnId, bool)>>;
        let mut versions: VersionIndex = HashMap::new();
        for txn in history {
            for w in &txn.writes {
                let entry = versions.entry((w.table, w.key.as_slice())).or_default();
                // A transaction overwriting the same key several times only
                // produces one externally visible version — the last write
                // (the write set is recorded in install order) decides
                // whether it is a tombstone.
                match entry
                    .iter_mut()
                    .find(|(ts, id, _)| (*ts, *id) == (txn.commit_ts, txn.id))
                {
                    Some(existing) => existing.2 = w.tombstone,
                    None => entry.push((txn.commit_ts, txn.id, w.tombstone)),
                }
            }
        }
        for list in versions.values_mut() {
            list.sort_unstable();
        }

        let mut edges: HashSet<Edge> = HashSet::new();
        let mut lost_reads: Vec<LostRead> = Vec::new();
        let mut dangling_speculative_reads: Vec<DanglingSpeculativeRead> = Vec::new();

        // ww edges: consecutive writers in version order.
        for list in versions.values() {
            for pair in list.windows(2) {
                if pair[0].1 != pair[1].1 {
                    edges.insert(Edge {
                        from: pair[0].1,
                        to: pair[1].1,
                        kind: EdgeKind::Ww,
                    });
                }
            }
        }

        // wr and rw edges from reads.
        for txn in history {
            for r in &txn.reads {
                let item_versions = versions.get(&(r.table, r.key.as_slice()));
                // A speculative read must have been confirmed: the observed
                // (then-provisional) version has to appear in the committed
                // history. Otherwise the reader committed on dirty data.
                if r.speculative {
                    let confirmed = r.version_ts.is_some_and(|ts| {
                        item_versions
                            .into_iter()
                            .flatten()
                            .any(|&(vts, _, _)| vts == ts)
                    });
                    if !confirmed {
                        dangling_speculative_reads.push(DanglingSpeculativeRead {
                            reader: txn.id,
                            table: r.table,
                            key: r.key.clone(),
                            version_ts: r.version_ts.unwrap_or(0),
                        });
                    }
                }
                // The version this read observed. A read of *absence*
                // (`version_ts: None`) is pinned to the newest version
                // committed at or before the reader's snapshot, if any:
                // under snapshot reads, absence means exactly that this
                // version was a deletion tombstone. Usually the engine
                // records the tombstone's timestamp itself; `None` with an
                // earlier writer present happens when version GC removed
                // the dead tombstone chain before the read. Treating such a
                // read as "initial state" (the old behaviour) would add rw
                // edges from the reader *backwards* to every long-committed
                // writer of the key and manufacture cycles in histories
                // that are perfectly serializable. With no writer at or
                // before the snapshot the read really did see the initial
                // state (0). And if that newest version was a *live* value,
                // the read is flagged as lost — a correct engine can never
                // return absence over a visible live version, so pinning
                // silently would launder exactly the purged-too-early bugs
                // this verifier exists to catch.
                let read_ts = r.version_ts.unwrap_or_else(|| {
                    let newest_at_snapshot = item_versions
                        .into_iter()
                        .flatten()
                        .filter(|&&(ts, _, _)| ts <= txn.begin_ts)
                        .max_by_key(|&&(ts, _, _)| ts);
                    match newest_at_snapshot {
                        None => 0,
                        Some(&(ts, _, tombstone)) => {
                            if !tombstone {
                                lost_reads.push(LostRead {
                                    reader: txn.id,
                                    table: r.table,
                                    key: r.key.clone(),
                                    missed_ts: ts,
                                });
                            }
                            ts
                        }
                    }
                });
                // wr: the creator of the version read precedes the reader.
                if read_ts != 0 {
                    if let Some(list) = item_versions {
                        if let Some((_, writer, _)) = list.iter().find(|(ts, _, _)| *ts == read_ts)
                        {
                            if *writer != txn.id {
                                edges.insert(Edge {
                                    from: *writer,
                                    to: txn.id,
                                    kind: EdgeKind::Wr,
                                });
                            }
                        }
                    }
                }
                // rw: the reader precedes the writer of any later version.
                if let Some(list) = item_versions {
                    for (ts, writer, _) in list {
                        if *ts > read_ts && *writer != txn.id {
                            edges.insert(Edge {
                                from: txn.id,
                                to: *writer,
                                kind: EdgeKind::Rw,
                            });
                        }
                    }
                }
            }
        }

        let edge_vec: Vec<Edge> = edges.into_iter().collect();
        let cycle = find_cycle(&edge_vec);
        let pivots = find_pivots(&edge_vec, &by_id);
        MvsgReport {
            edges: edge_vec,
            cycle,
            pivots,
            lost_reads,
            dangling_speculative_reads,
        }
    }
}

/// Finds a cycle in the edge set (ignoring edge kinds), if any.
fn find_cycle(edges: &[Edge]) -> Option<Vec<TxnId>> {
    let mut adj: HashMap<TxnId, Vec<TxnId>> = HashMap::new();
    let mut nodes: HashSet<TxnId> = HashSet::new();
    for e in edges {
        adj.entry(e.from).or_default().push(e.to);
        nodes.insert(e.from);
        nodes.insert(e.to);
    }

    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color: HashMap<TxnId, Color> = nodes.iter().map(|n| (*n, Color::White)).collect();
    let mut stack_path: Vec<TxnId> = Vec::new();

    fn dfs(
        node: TxnId,
        adj: &HashMap<TxnId, Vec<TxnId>>,
        color: &mut HashMap<TxnId, Color>,
        path: &mut Vec<TxnId>,
    ) -> Option<Vec<TxnId>> {
        color.insert(node, Color::Gray);
        path.push(node);
        if let Some(succs) = adj.get(&node) {
            for &next in succs {
                match color.get(&next).copied().unwrap_or(Color::White) {
                    Color::Gray => {
                        // Found a cycle: slice the path from `next` onwards.
                        let start = path.iter().position(|n| *n == next).unwrap_or(0);
                        return Some(path[start..].to_vec());
                    }
                    Color::White => {
                        if let Some(cycle) = dfs(next, adj, color, path) {
                            return Some(cycle);
                        }
                    }
                    Color::Black => {}
                }
            }
        }
        path.pop();
        color.insert(node, Color::Black);
        None
    }

    let node_list: Vec<TxnId> = nodes.into_iter().collect();
    for node in node_list {
        if color[&node] == Color::White {
            if let Some(cycle) = dfs(node, &adj, &mut color, &mut stack_path) {
                return Some(cycle);
            }
        }
    }
    None
}

/// Finds pivot transactions: an incoming and an outgoing rw-antidependency,
/// each between transactions that were concurrent (Theorem 2).
fn find_pivots(edges: &[Edge], by_id: &HashMap<TxnId, &CommittedTxn>) -> Vec<TxnId> {
    let concurrent = |a: TxnId, b: TxnId| -> bool {
        match (by_id.get(&a), by_id.get(&b)) {
            (Some(x), Some(y)) => x.begin_ts < y.commit_ts && y.begin_ts < x.commit_ts,
            _ => false,
        }
    };
    let mut has_in: HashSet<TxnId> = HashSet::new();
    let mut has_out: HashSet<TxnId> = HashSet::new();
    for e in edges {
        if e.kind == EdgeKind::Rw && concurrent(e.from, e.to) {
            has_out.insert(e.from);
            has_in.insert(e.to);
        }
    }
    let mut pivots: Vec<TxnId> = has_in.intersection(&has_out).copied().collect();
    pivots.sort();
    pivots
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txn(
        id: u64,
        begin: Timestamp,
        commit: Timestamp,
        reads: Vec<(&[u8], Option<Timestamp>)>,
        writes: Vec<&[u8]>,
    ) -> CommittedTxn {
        CommittedTxn {
            id: TxnId(id),
            begin_ts: begin,
            commit_ts: commit,
            reads: reads
                .into_iter()
                .map(|(k, ts)| ReadRecord {
                    table: TableId(1),
                    key: k.to_vec(),
                    version_ts: ts,
                    speculative: false,
                })
                .collect(),
            writes: writes
                .into_iter()
                .map(|k| WriteRecordEntry {
                    table: TableId(1),
                    key: k.to_vec(),
                    tombstone: false,
                })
                .collect(),
        }
    }

    /// Marks every write of `txn` as a deletion tombstone.
    fn as_delete(mut txn: CommittedTxn) -> CommittedTxn {
        for w in &mut txn.writes {
            w.tombstone = true;
        }
        txn
    }

    #[test]
    fn serial_history_is_serializable() {
        // T1 writes x at 10; T2 reads that version and writes y at 20.
        let history = vec![
            txn(1, 5, 10, vec![], vec![b"x"]),
            txn(2, 15, 20, vec![(b"x", Some(10))], vec![b"y"]),
        ];
        let report = MvsgReport::build(&history);
        assert!(report.is_serializable());
        assert!(report.pivots.is_empty());
        assert!(report.edges.contains(&Edge {
            from: TxnId(1),
            to: TxnId(2),
            kind: EdgeKind::Wr
        }));
    }

    #[test]
    fn write_skew_produces_cycle_and_pivots() {
        // Classic write skew (Example 2): both read x and y from the initial
        // state (version_ts None ≈ initial), T1 writes x, T2 writes y, both
        // concurrent.
        let history = vec![
            txn(1, 5, 20, vec![(b"x", None), (b"y", None)], vec![b"x"]),
            txn(2, 6, 21, vec![(b"x", None), (b"y", None)], vec![b"y"]),
        ];
        let report = MvsgReport::build(&history);
        assert!(!report.is_serializable());
        // Both transactions have an incoming and an outgoing rw edge.
        assert_eq!(report.pivots, vec![TxnId(1), TxnId(2)]);
    }

    #[test]
    fn rw_edge_requires_later_version() {
        // Reader observed the latest version: no antidependency.
        let history = vec![
            txn(1, 1, 10, vec![], vec![b"x"]),
            txn(2, 12, 15, vec![(b"x", Some(10))], vec![]),
        ];
        let report = MvsgReport::build(&history);
        assert!(report.edges.iter().all(|e| e.kind != EdgeKind::Rw));
        assert!(report.is_serializable());
    }

    #[test]
    fn read_only_anomaly_graph_has_cycle() {
        // Example 3 / Fig. 2.3(a): Tpivot r(y) w(x); Tout w(y) w(z);
        // Tin r(x) r(z). Tout commits first; Tin reads z from Tout but x
        // from the initial state.
        let history = vec![
            // Tout: writes y and z, commits at 10.
            txn(3, 1, 10, vec![], vec![b"y", b"z"]),
            // Tpivot: read y from initial state (None), wrote x, commit 20.
            txn(1, 2, 20, vec![(b"y", None)], vec![b"x"]),
            // Tin: read x initial (None), read z from Tout (10), commit 15.
            txn(2, 11, 15, vec![(b"x", None), (b"z", Some(10))], vec![]),
        ];
        let report = MvsgReport::build(&history);
        assert!(!report.is_serializable());
        // The pivot (T1 here) must be flagged.
        assert!(report.pivots.contains(&TxnId(1)));
    }

    #[test]
    fn read_of_absence_after_purged_tombstone_orders_after_the_deleter() {
        // T1 writes k at 10, T2 deletes k at 20 (version GC later removed
        // the dead tombstone chain), T3 with snapshot 25 reads k as absent —
        // recorded as `version_ts: None` because no version is left to
        // observe. T3 must order AFTER the deleter (wr), with no rw edge
        // back to T1 or T2: the old initial-state treatment produced
        // exactly those backward edges and false cycles under GC churn.
        let history = vec![
            txn(1, 1, 10, vec![], vec![b"k"]),
            as_delete(txn(2, 11, 20, vec![], vec![b"k"])),
            txn(3, 25, 30, vec![(b"k", None)], vec![]),
        ];
        let report = MvsgReport::build(&history);
        assert!(report.is_serializable());
        assert!(report.edges.contains(&Edge {
            from: TxnId(2),
            to: TxnId(3),
            kind: EdgeKind::Wr
        }));
        assert!(
            report
                .edges
                .iter()
                .all(|e| !(e.from == TxnId(3) && e.kind == EdgeKind::Rw)),
            "a read of post-delete absence must not antidepend on earlier writers"
        );
        // But an insert the reader's snapshot could not see still gets the
        // forward rw edge.
        let history = vec![
            as_delete(txn(2, 11, 20, vec![], vec![b"k"])),
            txn(3, 25, 30, vec![(b"k", None)], vec![]),
            txn(4, 26, 40, vec![], vec![b"k"]),
        ];
        let report = MvsgReport::build(&history);
        assert!(report.edges.contains(&Edge {
            from: TxnId(3),
            to: TxnId(4),
            kind: EdgeKind::Rw
        }));
    }

    #[test]
    fn read_of_absence_over_a_live_version_is_a_lost_read() {
        // T1 commits a live value of k at 10; T3 with snapshot 25 reads k
        // as absent. No correct engine can produce this (the newest version
        // at the snapshot is live and must be visible) — it is the
        // signature of a purged-too-early chain, and the verifier must fail
        // the history rather than pin the absence and launder the bug.
        let history = vec![
            txn(1, 1, 10, vec![], vec![b"k"]),
            txn(3, 25, 30, vec![(b"k", None)], vec![]),
        ];
        let report = MvsgReport::build(&history);
        assert_eq!(
            report.lost_reads,
            vec![LostRead {
                reader: TxnId(3),
                table: TableId(1),
                key: b"k".to_vec(),
                missed_ts: 10,
            }]
        );
        assert!(
            !report.is_serializable(),
            "a lost read must fail the oracle"
        );

        // A put-then-delete inside one transaction counts as a delete (the
        // last write decides): absence over it is consistent.
        let mut deleter = txn(2, 11, 20, vec![], vec![b"k", b"k"]);
        deleter.writes[1].tombstone = true;
        let history = vec![
            txn(1, 1, 10, vec![], vec![b"k"]),
            deleter,
            txn(3, 25, 30, vec![(b"k", None)], vec![]),
        ];
        let report = MvsgReport::build(&history);
        assert!(report.lost_reads.is_empty());
        assert!(report.is_serializable());
    }

    #[test]
    fn ww_edges_follow_version_order() {
        let history = vec![
            txn(1, 1, 10, vec![], vec![b"x"]),
            txn(2, 11, 20, vec![], vec![b"x"]),
            txn(3, 21, 30, vec![], vec![b"x"]),
        ];
        let report = MvsgReport::build(&history);
        assert!(report.is_serializable());
        assert!(report.edges.contains(&Edge {
            from: TxnId(1),
            to: TxnId(2),
            kind: EdgeKind::Ww
        }));
        assert!(report.edges.contains(&Edge {
            from: TxnId(2),
            to: TxnId(3),
            kind: EdgeKind::Ww
        }));
    }

    #[test]
    fn repeated_writes_of_one_key_by_one_txn_do_not_create_self_edges() {
        // A transaction that overwrites the same item twice (and a second
        // one that does so later) must not produce self-loops.
        let mut t1 = txn(1, 1, 10, vec![], vec![b"x"]);
        t1.writes.push(WriteRecordEntry {
            table: TableId(1),
            key: b"x".to_vec(),
            tombstone: false,
        });
        let history = vec![t1, txn(2, 11, 20, vec![], vec![b"x"])];
        let report = MvsgReport::build(&history);
        assert!(report.edges.iter().all(|e| e.from != e.to));
        assert!(report.is_serializable());
    }

    #[test]
    fn speculative_reads_must_be_confirmed_by_the_creators_commit() {
        // T1 commits x at 10; T2 read it while T1 was still in its commit
        // window (speculative) and committed later. The creator's version
        // is in the history, so the speculation was confirmed.
        let mut t2 = txn(2, 5, 20, vec![], vec![]);
        t2.reads.push(ReadRecord {
            table: TableId(1),
            key: b"x".to_vec(),
            version_ts: Some(10),
            speculative: true,
        });
        let history = vec![txn(1, 1, 10, vec![], vec![b"x"]), t2.clone()];
        let report = MvsgReport::build(&history);
        assert!(report.dangling_speculative_reads.is_empty());
        assert!(report.is_serializable());

        // Same read with the creator's commit missing from the history:
        // the reader committed on data that never committed — the
        // dependency machinery lost an abort.
        let history = vec![t2];
        let report = MvsgReport::build(&history);
        assert_eq!(
            report.dangling_speculative_reads,
            vec![DanglingSpeculativeRead {
                reader: TxnId(2),
                table: TableId(1),
                key: b"x".to_vec(),
                version_ts: 10,
            }]
        );
        assert!(!report.is_serializable());
    }

    #[test]
    fn recorder_accumulates() {
        let rec = HistoryRecorder::new();
        assert!(rec.is_empty());
        rec.record(txn(1, 1, 2, vec![], vec![b"a"]));
        rec.record(txn(2, 3, 4, vec![(b"a", Some(2))], vec![]));
        assert_eq!(rec.len(), 2);
        let report = rec.analyze();
        assert!(report.is_serializable());
    }
}
