//! The heart of the paper: rw-antidependency tracking and the unsafe-structure
//! test of Serializable Snapshot Isolation (Chapter 3).
//!
//! Two entry points matter:
//!
//! * [`mark_conflict`] — called whenever a read-write dependency between two
//!   concurrent transactions is discovered, either through the lock table
//!   (SIREAD vs EXCLUSIVE) or through the existence of a newer row version.
//!   It implements Fig. 3.3 (basic variant) and Fig. 3.9 (enhanced variant),
//!   plus the abort-early and victim-selection refinements of Sec. 3.7.
//! * [`commit_check`] — called at the beginning of commit processing, under
//!   the serialization mutex, implementing Fig. 3.2 / Fig. 3.10.
//!
//! Both operate purely on [`TxnShared`] records; they know nothing about
//! tables or locks.

use std::sync::Arc;

use ssi_common::{Error, Result, TxnId};

use crate::manager::TransactionManager;
use crate::options::{SsiOptions, SsiVariant, VictimPolicy};
use crate::txn_shared::{ConflictEdge, TxnShared};

/// Which of the two parties of a conflict is executing the current
/// operation. The paper's `markConflict` aborts "the reader" or "the
/// writer"; in every reachable case that transaction is the caller, but the
/// caller role determines which side that is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CallerRole {
    /// The currently executing transaction is the reader of the
    /// rw-dependency (it called `read`/`scan`).
    Reader,
    /// The currently executing transaction is the writer (it called
    /// `write`/`insert`/`delete`).
    Writer,
}

/// Evaluates the "dangerous structure" condition for `txn` given its current
/// conflict edges: both edges present, and — in the enhanced variant — the
/// outgoing neighbour did not demonstrably commit after the incoming one
/// (Fig. 3.10 line 3–4). Running transactions count as "commit at infinity".
pub(crate) fn unsafe_now(opts: &SsiOptions, txn: &TxnShared) -> bool {
    let conflicts = txn.conflicts.lock();
    if !(conflicts.in_edge.is_set() && conflicts.out_edge.is_set()) {
        return false;
    }
    match opts.variant {
        SsiVariant::Basic => true,
        SsiVariant::Enhanced => {
            let out_commit = conflicts.out_edge.outgoing_commit_bound(txn);
            let in_commit = conflicts.in_edge.incoming_commit_bound(txn);
            out_commit <= in_commit
        }
    }
}

/// Records the edge `from_reader -> to_writer` on both transaction records.
///
/// The enhanced variant keeps the identity of the single conflicting
/// transaction and degrades to a self-loop once a second, different
/// counterpart shows up (Sec. 3.6); the basic variant keeps booleans, which
/// we represent as an immediate self-loop.
fn record_edge(opts: &SsiOptions, reader: &Arc<TxnShared>, writer: &Arc<TxnShared>) {
    match opts.variant {
        SsiVariant::Basic => {
            reader.conflicts.lock().out_edge = ConflictEdge::SelfLoop;
            writer.conflicts.lock().in_edge = ConflictEdge::SelfLoop;
        }
        SsiVariant::Enhanced => {
            {
                let mut rc = reader.conflicts.lock();
                rc.out_edge = match &rc.out_edge {
                    ConflictEdge::None => ConflictEdge::Txn(writer.clone()),
                    ConflictEdge::Txn(existing) if existing.id() == writer.id() => {
                        ConflictEdge::Txn(writer.clone())
                    }
                    _ => ConflictEdge::SelfLoop,
                };
            }
            {
                let mut wc = writer.conflicts.lock();
                wc.in_edge = match &wc.in_edge {
                    ConflictEdge::None => ConflictEdge::Txn(reader.clone()),
                    ConflictEdge::Txn(existing) if existing.id() == reader.id() => {
                        ConflictEdge::Txn(reader.clone())
                    }
                    _ => ConflictEdge::SelfLoop,
                };
            }
        }
    }
}

/// Chooses the victim among the active pivots according to the configured
/// policy. Returns `None` when nothing needs to be aborted right now.
fn choose_victim(
    opts: &SsiOptions,
    reader: &Arc<TxnShared>,
    writer: &Arc<TxnShared>,
    caller: CallerRole,
) -> Option<TxnId> {
    if !opts.abort_early {
        return None;
    }
    let caller_txn = match caller {
        CallerRole::Reader => reader,
        CallerRole::Writer => writer,
    };
    let mut pivots: Vec<&Arc<TxnShared>> = Vec::new();
    for t in [reader, writer] {
        if t.is_active() && !t.is_doomed() && unsafe_now(opts, t) {
            pivots.push(t);
        }
    }
    if pivots.is_empty() {
        return None;
    }
    let victim = match opts.victim {
        VictimPolicy::PreferPivot => {
            // Abort the pivot; when both are pivots (classic write skew with
            // mutual edges) prefer the caller so no cross-thread signalling
            // is needed.
            if pivots.iter().any(|t| t.id() == caller_txn.id()) {
                caller_txn.id()
            } else {
                pivots[0].id()
            }
        }
        VictimPolicy::PreferCaller => caller_txn.id(),
        VictimPolicy::PreferYounger => {
            // Larger id = started later = younger. Only consider the two
            // parties, and only active ones.
            let mut candidates: Vec<TxnId> = [reader, writer]
                .iter()
                .filter(|t| t.is_active())
                .map(|t| t.id())
                .collect();
            candidates.sort();
            *candidates.last().unwrap_or(&caller_txn.id())
        }
    };
    Some(victim)
}

/// Marks a read-write dependency from `reader` to `writer` (Figs. 3.3/3.9),
/// applying abort-early victim selection (Sec. 3.7.1, 3.7.2).
///
/// Returns an `Unsafe` abort error if the **caller** must abort; if the other
/// party is selected as the victim it is doomed instead (it will observe the
/// flag at its next operation or at commit) and `Ok(())` is returned.
pub(crate) fn mark_conflict(
    mgr: &TransactionManager,
    opts: &SsiOptions,
    reader: &Arc<TxnShared>,
    writer: &Arc<TxnShared>,
    caller: CallerRole,
) -> Result<()> {
    if reader.id() == writer.id() {
        return Ok(());
    }

    let _guard = mgr.serialization_lock();

    let caller_txn = match caller {
        CallerRole::Reader => reader,
        CallerRole::Writer => writer,
    };
    let other = match caller {
        CallerRole::Reader => writer,
        CallerRole::Writer => reader,
    };

    // A transaction that already aborted — or that is already doomed to —
    // cannot be part of a cycle of committed transactions, so no conflict is
    // recorded against it (Sec. 3.7.1).
    if matches!(other.status(), crate::txn_shared::TxnStatus::Aborted) || other.is_doomed() {
        return Ok(());
    }
    if caller_txn.is_doomed() {
        return Err(Error::unsafe_abort(caller_txn.id()));
    }

    // Committed-counterpart checks: if the other side has already committed
    // with the complementary conflict present, aborting the caller is the
    // only way to break the potential cycle.
    match opts.variant {
        SsiVariant::Basic => {
            if writer.is_committed() && writer.conflicts.lock().out_edge.is_set() {
                debug_assert_eq!(caller, CallerRole::Reader);
                return Err(Error::unsafe_abort(caller_txn.id()));
            }
            if reader.is_committed() && reader.conflicts.lock().in_edge.is_set() {
                debug_assert_eq!(caller, CallerRole::Writer);
                return Err(Error::unsafe_abort(caller_txn.id()));
            }
        }
        SsiVariant::Enhanced => {
            // Fig. 3.9: only the committed-writer case can require an abort;
            // if the reader has committed, the writer (still running) is the
            // outgoing transaction of that pivot and cannot have committed
            // first, so no abort is needed.
            if writer.is_committed() {
                let commit = writer.commit_ts().unwrap_or(u64::MAX);
                let out_commit = {
                    let wc = writer.conflicts.lock();
                    if wc.out_edge.is_set() {
                        Some(wc.out_edge.outgoing_commit_bound(writer))
                    } else {
                        None
                    }
                };
                if let Some(out_commit) = out_commit {
                    if out_commit <= commit {
                        return Err(Error::unsafe_abort(caller_txn.id()));
                    }
                }
            }
        }
    }

    record_edge(opts, reader, writer);

    if let Some(victim) = choose_victim(opts, reader, writer, caller) {
        if victim == caller_txn.id() {
            return Err(Error::unsafe_abort(victim));
        }
        // Doom the other party: it aborts at its next operation or commit.
        if other.id() == victim {
            other.doom();
        }
    }
    Ok(())
}

/// Records an outgoing rw-dependency from `reader` to a writer whose
/// transaction record has already been retired (a pure update that committed
/// and was cleaned up before the reader noticed its newer version).
///
/// The writer's own flags no longer matter — it has committed and nobody
/// will consult them again — but the *reader's* outgoing conflict must still
/// be recorded or a dangerous structure whose outgoing transaction is such a
/// pure writer would go undetected (the reader may be the pivot). Because
/// the retired writer's commit time is no longer known precisely, the edge
/// is recorded as a self-loop, whose conservative "commits as early as
/// possible" bound keeps the unsafe test sound at the cost of occasional
/// extra aborts.
pub(crate) fn mark_conflict_with_retired_writer(
    mgr: &TransactionManager,
    opts: &SsiOptions,
    reader: &Arc<TxnShared>,
) -> Result<()> {
    let _guard = mgr.serialization_lock();
    if reader.is_doomed() {
        return Err(Error::unsafe_abort(reader.id()));
    }
    {
        let mut conflicts = reader.conflicts.lock();
        conflicts.out_edge = crate::txn_shared::ConflictEdge::SelfLoop;
    }
    if opts.abort_early && reader.is_active() && unsafe_now(opts, reader) {
        return Err(Error::unsafe_abort(reader.id()));
    }
    Ok(())
}

/// Commit-time unsafe check (Fig. 3.2 / Fig. 3.10). Must be called under the
/// serialization mutex *before* the transaction is marked committed.
///
/// On success, for the enhanced variant, conflict references to transactions
/// that have already committed are replaced with self-loops so that the
/// cleanup invariant of Sec. 3.6 (suspended transactions only reference
/// transactions with an equal or later commit) holds.
pub(crate) fn commit_check(opts: &SsiOptions, txn: &Arc<TxnShared>) -> Result<()> {
    if txn.is_doomed() {
        return Err(Error::unsafe_abort(txn.id()));
    }
    if unsafe_now(opts, txn) {
        return Err(Error::unsafe_abort(txn.id()));
    }
    if opts.variant == SsiVariant::Enhanced {
        let mut c = txn.conflicts.lock();
        if let ConflictEdge::Txn(other) = &c.in_edge {
            if other.is_committed() {
                c.in_edge = ConflictEdge::SelfLoop;
            }
        }
        if let ConflictEdge::Txn(other) = &c.out_edge {
            if other.is_committed() {
                c.out_edge = ConflictEdge::SelfLoop;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssi_common::{AbortKind, IsolationLevel};

    fn setup() -> (TransactionManager, SsiOptions) {
        (TransactionManager::new(), SsiOptions::default())
    }

    fn basic() -> SsiOptions {
        SsiOptions {
            variant: SsiVariant::Basic,
            ..SsiOptions::default()
        }
    }

    fn begin(mgr: &TransactionManager) -> Arc<TxnShared> {
        let t = mgr.begin(IsolationLevel::SerializableSnapshotIsolation);
        mgr.ensure_snapshot(&t);
        t
    }

    #[test]
    fn single_conflict_sets_flags_but_aborts_nobody() {
        let (mgr, opts) = setup();
        let reader = begin(&mgr);
        let writer = begin(&mgr);
        mark_conflict(&mgr, &opts, &reader, &writer, CallerRole::Writer).unwrap();
        assert_eq!(reader.conflict_flags(), (false, true));
        assert_eq!(writer.conflict_flags(), (true, false));
        assert!(!reader.is_doomed());
        assert!(!writer.is_doomed());
        assert!(commit_check(&opts, &reader).is_ok());
        assert!(commit_check(&opts, &writer).is_ok());
    }

    #[test]
    fn self_conflict_is_ignored() {
        let (mgr, opts) = setup();
        let t = begin(&mgr);
        mark_conflict(&mgr, &opts, &t, &t, CallerRole::Reader).unwrap();
        assert_eq!(t.conflict_flags(), (false, false));
    }

    #[test]
    fn pivot_with_both_edges_is_aborted_early_when_caller() {
        let (mgr, opts) = setup();
        let t_in = begin(&mgr);
        let pivot = begin(&mgr);
        let t_out = begin(&mgr);
        // Pivot already has an outgoing edge (it read something t_out wrote
        // over)...
        mark_conflict(&mgr, &opts, &pivot, &t_out, CallerRole::Reader).unwrap();
        // ... and now, as the caller, discovers an incoming edge: it becomes
        // a pivot and is chosen as the victim.
        let err = mark_conflict(&mgr, &opts, &t_in, &pivot, CallerRole::Writer).unwrap_err();
        assert_eq!(err.abort_kind(), Some(AbortKind::Unsafe));
        match err {
            Error::Aborted { victim, .. } => assert_eq!(victim, pivot.id()),
            _ => unreachable!(),
        }
    }

    #[test]
    fn pivot_is_doomed_when_not_the_caller() {
        let (mgr, opts) = setup();
        let t_in = begin(&mgr);
        let pivot = begin(&mgr);
        let t_out = begin(&mgr);
        // Incoming edge first: t_in -> pivot, reported by the writer (pivot).
        mark_conflict(&mgr, &opts, &t_in, &pivot, CallerRole::Writer).unwrap();
        // Outgoing edge discovered by t_out performing a write; the pivot is
        // not the caller, so it gets doomed instead of the caller aborting.
        mark_conflict(&mgr, &opts, &pivot, &t_out, CallerRole::Writer).unwrap();
        assert!(pivot.is_doomed());
        assert!(!t_out.is_doomed());
        // The doomed pivot fails its commit check.
        let err = commit_check(&opts, &pivot).unwrap_err();
        assert_eq!(err.abort_kind(), Some(AbortKind::Unsafe));
    }

    #[test]
    fn basic_variant_aborts_against_committed_writer_with_out_edge() {
        let (mgr, _) = setup();
        let opts = basic();
        let reader = begin(&mgr);
        let writer = begin(&mgr);
        let other = begin(&mgr);
        // writer has an outgoing edge and then commits.
        mark_conflict(&mgr, &opts, &writer, &other, CallerRole::Reader).unwrap();
        writer.mark_committed(100);
        // reader now discovers a conflict with the committed writer: it must
        // abort (Fig. 3.3 line 3-5).
        let err = mark_conflict(&mgr, &opts, &reader, &writer, CallerRole::Reader).unwrap_err();
        assert_eq!(err.abort_kind(), Some(AbortKind::Unsafe));
    }

    #[test]
    fn enhanced_variant_spares_reader_when_out_neighbour_committed_later() {
        let (mgr, opts) = setup();
        let reader = begin(&mgr);
        let writer = begin(&mgr);
        let other = begin(&mgr);
        // writer -> other edge; other commits *after* writer, so the
        // dangerous-structure condition (Tout first to commit) is not met
        // and the reader does not need to abort.
        mark_conflict(&mgr, &opts, &writer, &other, CallerRole::Reader).unwrap();
        writer.mark_committed(100);
        other.mark_committed(150);
        assert!(mark_conflict(&mgr, &opts, &reader, &writer, CallerRole::Reader).is_ok());
    }

    #[test]
    fn enhanced_variant_aborts_reader_when_out_neighbour_committed_first() {
        let (mgr, opts) = setup();
        let reader = begin(&mgr);
        let writer = begin(&mgr);
        let other = begin(&mgr);
        mark_conflict(&mgr, &opts, &writer, &other, CallerRole::Reader).unwrap();
        other.mark_committed(90);
        writer.mark_committed(100);
        let err = mark_conflict(&mgr, &opts, &reader, &writer, CallerRole::Reader).unwrap_err();
        assert_eq!(err.abort_kind(), Some(AbortKind::Unsafe));
    }

    #[test]
    fn enhanced_commit_check_allows_false_positive_of_fig_3_8() {
        // Fig. 3.8: Tin committed before Tpivot's outgoing neighbour Tout,
        // so there is no path from Tout back to Tin and the pivot may
        // commit. The basic variant would abort here; the enhanced variant
        // must not.
        let (mgr, opts) = setup();
        let t_in = begin(&mgr);
        let pivot = begin(&mgr);
        let t_out = begin(&mgr);
        // Disable abort-early so we exercise the commit-time check.
        let opts = SsiOptions {
            abort_early: false,
            ..opts
        };
        mark_conflict(&mgr, &opts, &t_in, &pivot, CallerRole::Writer).unwrap();
        mark_conflict(&mgr, &opts, &pivot, &t_out, CallerRole::Writer).unwrap();
        t_in.mark_committed(50);
        t_out.mark_committed(80);
        // in-commit (50) < out-commit (80): not dangerous, commit allowed.
        assert!(commit_check(&opts, &pivot).is_ok());

        // Under the basic variant the same situation is (conservatively)
        // rejected.
        let basic_opts = SsiOptions {
            abort_early: false,
            ..basic()
        };
        assert!(commit_check(&basic_opts, &pivot).is_err());
    }

    #[test]
    fn enhanced_commit_check_rejects_true_dangerous_structure() {
        let (mgr, opts) = setup();
        let opts = SsiOptions {
            abort_early: false,
            ..opts
        };
        let t_in = begin(&mgr);
        let pivot = begin(&mgr);
        let t_out = begin(&mgr);
        mark_conflict(&mgr, &opts, &t_in, &pivot, CallerRole::Writer).unwrap();
        mark_conflict(&mgr, &opts, &pivot, &t_out, CallerRole::Writer).unwrap();
        // Tout commits first — the dangerous pattern of Theorem 2.
        t_out.mark_committed(40);
        let err = commit_check(&opts, &pivot).unwrap_err();
        assert_eq!(err.abort_kind(), Some(AbortKind::Unsafe));
    }

    #[test]
    fn no_conflicts_recorded_against_doomed_or_aborted_transactions() {
        let (mgr, opts) = setup();
        let reader = begin(&mgr);
        let writer = begin(&mgr);
        writer.doom();
        mark_conflict(&mgr, &opts, &reader, &writer, CallerRole::Reader).unwrap();
        assert_eq!(reader.conflict_flags(), (false, false));

        let reader2 = begin(&mgr);
        let aborted = begin(&mgr);
        aborted.mark_aborted();
        mark_conflict(&mgr, &opts, &reader2, &aborted, CallerRole::Reader).unwrap();
        assert_eq!(reader2.conflict_flags(), (false, false));
    }

    #[test]
    fn doomed_caller_aborts_immediately() {
        let (mgr, opts) = setup();
        let reader = begin(&mgr);
        let writer = begin(&mgr);
        reader.doom();
        let err = mark_conflict(&mgr, &opts, &reader, &writer, CallerRole::Reader).unwrap_err();
        assert_eq!(err.abort_kind(), Some(AbortKind::Unsafe));
    }

    #[test]
    fn victim_policy_prefer_younger() {
        let (mgr, _) = setup();
        let opts = SsiOptions {
            victim: VictimPolicy::PreferYounger,
            ..SsiOptions::default()
        };
        let t_in = begin(&mgr); // oldest
        let pivot = begin(&mgr);
        let t_out = begin(&mgr); // youngest
        mark_conflict(&mgr, &opts, &t_in, &pivot, CallerRole::Writer).unwrap();
        // t_out (the youngest of the pair {pivot, t_out}) is picked even
        // though the pivot holds both edges.
        let err = mark_conflict(&mgr, &opts, &pivot, &t_out, CallerRole::Writer).unwrap_err();
        match err {
            Error::Aborted { victim, .. } => assert_eq!(victim, t_out.id()),
            _ => unreachable!(),
        }
    }

    #[test]
    fn commit_check_replaces_committed_references_with_self_loops() {
        let (mgr, opts) = setup();
        let t_in = begin(&mgr);
        let pivot = begin(&mgr);
        mark_conflict(&mgr, &opts, &t_in, &pivot, CallerRole::Writer).unwrap();
        t_in.mark_committed(30);
        commit_check(&opts, &pivot).unwrap();
        let c = pivot.conflicts.lock();
        assert!(matches!(c.in_edge, ConflictEdge::SelfLoop));
    }
}
