//! Typed error taxonomy of the durability subsystem.
//!
//! Every failure the write-ahead log, checkpointer or recovery can hit is
//! classified into a [`WalErrorKind`] — most importantly *transient* vs
//! *fatal* — and carries the operation ([`WalOp`]), the path involved and
//! the underlying OS error. The classification is what the flusher's
//! retry-with-backoff policy keys on: transient failures (and ENOSPC,
//! which a checkpoint may reclaim) are retried within a budget; fatal
//! failures poison the log immediately.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Result alias used throughout the crate.
pub type WalResult<T> = std::result::Result<T, WalError>;

/// The operation that failed, kept for context in messages and logs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalOp {
    /// Creating or opening a log segment / snapshot / lock file.
    Create,
    /// Appending a frame to a log segment.
    Append,
    /// Fsyncing a file.
    Fsync,
    /// Fsyncing the durable directory itself.
    DirSync,
    /// Renaming a snapshot into place.
    Rename,
    /// Deleting a pruned segment or superseded snapshot.
    Remove,
    /// Reading a segment or snapshot during recovery.
    Read,
    /// Taking the advisory directory lock.
    Lock,
    /// Rolling a partial append back to the last frame boundary.
    Rollback,
}

impl WalOp {
    fn label(self) -> &'static str {
        match self {
            WalOp::Create => "create",
            WalOp::Append => "append",
            WalOp::Fsync => "fsync",
            WalOp::DirSync => "dir-sync",
            WalOp::Rename => "rename",
            WalOp::Remove => "remove",
            WalOp::Read => "read",
            WalOp::Lock => "lock",
            WalOp::Rollback => "rollback",
        }
    }
}

/// Classification every durability failure falls into. The first three are
/// I/O classes derived from the OS error; the rest are logical states of
/// the subsystem itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalErrorKind {
    /// A failure that has a real chance of succeeding on retry
    /// (interrupted syscall, timeout, resource temporarily busy). The
    /// flusher retries these within its budget — but never by re-fsyncing
    /// the same range: the kernel reports an fsync error only once, so
    /// retried durability is re-established by re-writing the unsynced
    /// frames to a fresh segment and fsyncing *that*.
    Transient,
    /// The device or quota is full (`ENOSPC`/`EDQUOT`). Retryable in a
    /// stronger sense than [`WalErrorKind::Transient`]: a checkpoint can
    /// actively *reclaim* space by pruning covered segments, so the
    /// flusher attempts checkpoint-to-reclaim once before giving up.
    OutOfSpace,
    /// An I/O failure with no reason to believe a retry would differ
    /// (media error, bad file descriptor, permission change). Poisons the
    /// log immediately.
    Fatal,
    /// The log was already poisoned by an earlier failure; nothing can be
    /// made durable anymore. Carries no fresh OS error.
    Poisoned,
    /// On-disk state that exists but does not decode (a corrupt snapshot
    /// whose covering segments are pruned). Never retryable.
    Corrupt,
    /// The durable directory is locked by another live database handle.
    Locked,
}

impl WalErrorKind {
    fn label(self) -> &'static str {
        match self {
            WalErrorKind::Transient => "transient",
            WalErrorKind::OutOfSpace => "out of space",
            WalErrorKind::Fatal => "fatal",
            WalErrorKind::Poisoned => "poisoned",
            WalErrorKind::Corrupt => "corrupt",
            WalErrorKind::Locked => "locked",
        }
    }
}

/// Classifies an OS error into the retry taxonomy. Conservative: anything
/// not positively known to be worth retrying is fatal.
pub fn classify(kind: io::ErrorKind) -> WalErrorKind {
    match kind {
        io::ErrorKind::Interrupted
        | io::ErrorKind::TimedOut
        | io::ErrorKind::WouldBlock
        | io::ErrorKind::ResourceBusy => WalErrorKind::Transient,
        io::ErrorKind::StorageFull | io::ErrorKind::QuotaExceeded => WalErrorKind::OutOfSpace,
        _ => WalErrorKind::Fatal,
    }
}

/// A durability failure: what was attempted, on which path, how it is
/// classified, and the OS error underneath (when there is one).
#[derive(Debug)]
pub struct WalError {
    /// Retry classification.
    pub kind: WalErrorKind,
    /// The operation that failed.
    pub op: WalOp,
    /// The file or directory involved, when known.
    pub path: Option<PathBuf>,
    /// The underlying OS error, preserved for `source()` chains.
    pub source: Option<io::Error>,
    /// Extra human context (corruption details, lock holders).
    pub detail: Option<String>,
}

impl WalError {
    /// Wraps an OS error from `op` on `path`, classifying it.
    pub fn io(op: WalOp, path: impl Into<PathBuf>, source: io::Error) -> Self {
        WalError {
            kind: classify(source.kind()),
            op,
            path: Some(path.into()),
            source: Some(source),
            detail: None,
        }
    }

    /// The poisoned-log error every append and durability wait returns
    /// once the log can no longer vouch for what is on the device.
    pub fn poisoned() -> Self {
        WalError {
            kind: WalErrorKind::Poisoned,
            op: WalOp::Append,
            path: None,
            source: None,
            detail: Some(
                "write-ahead log poisoned by an earlier I/O failure; \
                 commits can no longer be made durable"
                    .to_string(),
            ),
        }
    }

    /// On-disk state that exists but does not decode.
    pub fn corrupt(path: impl Into<PathBuf>, detail: impl Into<String>) -> Self {
        WalError {
            kind: WalErrorKind::Corrupt,
            op: WalOp::Read,
            path: Some(path.into()),
            source: None,
            detail: Some(detail.into()),
        }
    }

    /// The durable directory is held by another live handle.
    pub fn locked(path: impl Into<PathBuf>) -> Self {
        WalError {
            kind: WalErrorKind::Locked,
            op: WalOp::Lock,
            path: Some(path.into()),
            source: None,
            detail: Some(
                "durable directory is already open in another database handle or process"
                    .to_string(),
            ),
        }
    }

    /// Adds human context to an existing error.
    pub fn with_detail(mut self, detail: impl Into<String>) -> Self {
        self.detail = Some(detail.into());
        self
    }

    /// True when a retry has a real chance (transient or reclaimable).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self.kind,
            WalErrorKind::Transient | WalErrorKind::OutOfSpace
        )
    }

    /// True when checkpoint-to-reclaim may free the resource (`ENOSPC`).
    pub fn is_reclaimable(&self) -> bool {
        self.kind == WalErrorKind::OutOfSpace
    }
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wal {} failed ({})", self.op.label(), self.kind.label())?;
        if let Some(path) = &self.path {
            write!(f, " at {}", path.display())?;
        }
        match (&self.source, &self.detail) {
            (_, Some(detail)) => write!(f, ": {detail}")?,
            (Some(source), None) => write!(f, ": {source}")?,
            (None, None) => {}
        }
        Ok(())
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        self.source
            .as_ref()
            .map(|e| e as &(dyn std::error::Error + 'static))
    }
}

/// Helper: maps an `io::Result` into the taxonomy with op/path context.
pub(crate) fn ctx<T>(result: io::Result<T>, op: WalOp, path: &Path) -> WalResult<T> {
    result.map_err(|e| WalError::io(op, path, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_taxonomy() {
        assert_eq!(
            classify(io::ErrorKind::Interrupted),
            WalErrorKind::Transient
        );
        assert_eq!(classify(io::ErrorKind::TimedOut), WalErrorKind::Transient);
        assert_eq!(
            classify(io::ErrorKind::StorageFull),
            WalErrorKind::OutOfSpace
        );
        assert_eq!(
            classify(io::ErrorKind::PermissionDenied),
            WalErrorKind::Fatal
        );
        assert_eq!(classify(io::ErrorKind::Other), WalErrorKind::Fatal);
    }

    #[test]
    fn display_carries_op_path_and_source() {
        let e = WalError::io(
            WalOp::Fsync,
            "/x/segment-1.wal",
            io::Error::new(io::ErrorKind::Interrupted, "boom"),
        );
        let msg = e.to_string();
        assert!(msg.contains("fsync"), "{msg}");
        assert!(msg.contains("transient"), "{msg}");
        assert!(msg.contains("segment-1.wal"), "{msg}");
        assert!(msg.contains("boom"), "{msg}");
        assert!(e.is_retryable());
        assert!(!e.is_reclaimable());
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn poisoned_and_corrupt_are_not_retryable() {
        assert!(!WalError::poisoned().is_retryable());
        assert!(!WalError::corrupt("/x/snap", "bad crc").is_retryable());
        assert!(!WalError::locked("/x").is_retryable());
    }
}
