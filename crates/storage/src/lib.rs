//! Multi-version storage substrate for the Serializable SI reproduction.
//!
//! The paper implements its algorithm inside two existing storage engines
//! (Berkeley DB and InnoDB). This crate provides the equivalent substrate the
//! concurrency-control layer in `ssi-core` builds on:
//!
//! * [`Table`] — an ordered key/value table whose entries are *version
//!   chains*: every write creates a new [`Version`] instead of overwriting,
//!   and readers pick the version visible to their snapshot (Sec. 2.4/2.5);
//! * [`Catalog`] — the set of named tables of one database;
//! * [`WriteAheadLog`] — an in-memory commit log with group commit and a
//!   configurable simulated flush latency, used to reproduce the
//!   "no flush"/"flush at commit" regimes of the Berkeley DB evaluation
//!   (Figs. 6.1 vs 6.2);
//! * [`PageMap`] — a mapping from keys to page numbers so the engine can lock
//!   and detect conflicts at Berkeley-DB-style page granularity (Sec. 4.2)
//!   instead of InnoDB-style row granularity;
//! * [`Index`] — an ordered secondary-index tier over a table (InnoDB keeps
//!   its secondary indexes in the same B-tree machinery its primary
//!   key-space uses; we mirror that with a dedicated entry tree).
//!
//! ## Secondary-index maintenance protocol
//!
//! Index entries are `(escaped index key, primary key)` pairs (see
//! [`encode_entry`]) held in an ordered map of *reference counts*, one
//! reference per resident version whose payload extracts to the entry's
//! index key:
//!
//! * [`Table::install_version`] adds a reference for the new version's
//!   extraction inside the shard-lock critical section, so a concurrent
//!   backfill ([`Table::register_index`]) can never double- or un-count it;
//! * [`Table::unlink_version`] (rollback) and version GC release
//!   references; an entry disappears when its count reaches zero;
//! * entries are therefore *conservative*: a stale entry may linger until
//!   GC reaps the versions that fed it, and readers re-extract from the
//!   row's visible value to filter. An entry can never be *missing* for a
//!   resident version — that is the invariant scans rely on.
//!
//! The substrate is deliberately free of concurrency-control policy: it knows
//! nothing about SI, S2PL or SSI. All policy (entry-space SIREAD/gap locks,
//! unique-marker locks, rw-conflict flagging) lives in `ssi-core`.

pub mod catalog;
pub mod index;
pub mod page;
pub mod table;
pub mod version;
pub mod wal;

pub use catalog::Catalog;
pub use index::{
    decode_entry, encode_entry, entry_range, FieldKind, Index, IndexDef, IndexKeyPart, IndexKeySpec,
};
pub use page::PageMap;
pub use table::{
    as_ref_bound, clone_bound, PurgeStats, ScanCursor, ScanEntry, ScanPage, Table, VisibleRead,
    SCAN_PAGE_SIZE, SHARD_COUNT,
};
pub use version::{Version, VersionState};
pub use wal::{WalConfig, WriteAheadLog};
