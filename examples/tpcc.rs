//! Run the TPC-C++ benchmark (Sec. 5.3 of the thesis): TPC-C plus the
//! Credit Check transaction that makes the mix non-serializable under plain
//! snapshot isolation.
//!
//! The run reports total transactions per second (all types), the abort
//! breakdown, and the result of the post-run consistency checks.
//!
//! ```bash
//! cargo run --release --example tpcc -- [warehouses] [mpl] [seconds] [--standard-scale] [--skip-ytd] [--stock-level]
//! ```
//!
//! By default the thesis' "tiny" data scaling (Sec. 5.3.6) is used so the
//! example loads quickly; pass `--standard-scale` for the full population.

use std::time::Duration;

use serializable_si::workloads::tpcc::ScaleFactor;
use serializable_si::{
    run_workload, AbortKind, Database, IsolationLevel, Options, RunConfig, TpccConfig, TpccWorkload,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let numbers: Vec<u64> = args.iter().filter_map(|a| a.parse().ok()).collect();
    let warehouses = *numbers.first().unwrap_or(&1) as u32;
    let mpl = *numbers.get(1).unwrap_or(&8) as usize;
    let seconds = *numbers.get(2).unwrap_or(&2);
    let standard_scale = args.iter().any(|a| a == "--standard-scale");
    let skip_ytd = args.iter().any(|a| a == "--skip-ytd");
    let stock_level = args.iter().any(|a| a == "--stock-level");

    let scale = if standard_scale {
        ScaleFactor::standard(warehouses)
    } else {
        ScaleFactor::tiny(warehouses)
    };
    println!(
        "TPC-C++: {warehouses} warehouse(s), {} scale (~{} rows), MPL {mpl}, {seconds}s per level",
        if standard_scale { "standard" } else { "tiny" },
        scale.approximate_rows()
    );
    println!("options: skip_ytd={skip_ytd}, stock_level_mix={stock_level}\n");
    println!(
        "{:<6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "level", "txn/s", "NewOrder/s", "deadlock", "conflict", "unsafe", "consistency"
    );

    for level in IsolationLevel::evaluated() {
        let db = Database::open(Options::default().with_isolation(level));
        let mut config = TpccConfig::new(scale).with_skip_ytd(skip_ytd);
        if stock_level {
            config = config.with_stock_level_mix();
        }
        let workload = TpccWorkload::setup(&db, config);
        let stats = run_workload(
            &db,
            &workload,
            &RunConfig {
                mpl,
                warmup: Duration::from_millis(300),
                duration: Duration::from_secs(seconds),
                seed: 2008,
            },
        );
        let consistency =
            match serializable_si::workloads::driver::Workload::check_consistency(&workload, &db) {
                None => "ok".to_string(),
                Some(problem) => format!("VIOLATED: {problem}"),
            };
        println!(
            "{:<6} {:>10.0} {:>10.1} {:>10.4} {:>10.4} {:>10.4} {:>12}",
            level.label(),
            stats.throughput(),
            stats.per_type_commits.first().copied().unwrap_or(0) as f64
                / stats.elapsed.as_secs_f64(),
            stats.aborts_per_commit(AbortKind::Deadlock),
            stats.aborts_per_commit(AbortKind::UpdateConflict),
            stats.aborts_per_commit(AbortKind::Unsafe),
            consistency,
        );
    }
}
