//! Shared per-transaction state.
//!
//! The Serializable SI algorithm needs to consult and update the state of
//! *other* transactions — possibly transactions that have already committed
//! (the "suspended" transactions of Sec. 3.3). [`TxnShared`] is the
//! reference-counted record that outlives the client-side
//! [`crate::Transaction`] handle for exactly as long as the algorithm needs
//! it: until no concurrent transaction remains.
//!
//! # The state word
//!
//! Everything the conflict-marking and commit paths need to read or update
//! atomically about one transaction is packed into a single `AtomicU64`
//! (the *state word*), so that the paper's `atomic begin/end` blocks can be
//! implemented as CAS loops instead of a global mutex:
//!
//! ```text
//!  63    60  59  58  57 56  55                                        0
//!  +--+---+---+---+------+------------------------------------------+
//!  |unused|out| in|doomed|status|               commit_ts            |
//!  +--+---+---+---+------+------------------------------------------+
//! ```
//!
//! * bits 0–55: the commit timestamp (0 until allocated);
//! * bits 56–57: lifecycle status (0 active, 1 committed, 2 aborted,
//!   3 *committing*);
//! * bit 58: doomed — selected as a victim by another thread;
//! * bit 59: an incoming rw-conflict has been recorded;
//! * bit 60: an outgoing rw-conflict has been recorded.
//!
//! Because status, commit timestamp and both conflict flags live in one
//! word, checks like "has this transaction committed with an outgoing
//! conflict?" (Fig. 3.3) or "is this transaction a pivot?" (both flags set)
//! are single atomic loads, and state transitions that must be conditional
//! on them — most importantly the commit transitions, which under the basic
//! variant must fail iff the word shows `doomed` or `in && out` at the
//! instant the status changes — are single compare-and-swap loops.
//!
//! # The `Committing` state machine
//!
//! Commit is not one transition but two, with a visible window in between
//! (the window is what lets readers resolve an in-flight commit themselves
//! instead of parking on the ordered-publication condvar — see
//! [`crate::manager`]):
//!
//! ```text
//!            enter_committing            finalize_commit
//!   Active ───────────────────▶ Committing ─────────────▶ Committed
//!            (commit checks)        │       (re-checks)
//!                                   ▼ mark_aborted
//!                                Aborted
//! ```
//!
//! 1. [`TxnShared::enter_committing`] CASes `Active → Committing` with the
//!    timestamp field still zero, performing the same doomed/pivot checks
//!    the old single-shot commit CAS did. **The commit timestamp is
//!    allocated only after this transition** — that ordering is load-bearing:
//!    any observer that reads a word with status `Active` knows the
//!    transaction's eventual commit timestamp will be larger than every
//!    timestamp already allocated, with no racy window (the old design
//!    closed that window by waiting for ordered publication instead).
//! 2. [`TxnShared::set_pending_commit_ts`] stores the allocated timestamp
//!    into the word: observers now see `Committing(ts)`. A word with status
//!    `Committing` and a zero timestamp field is mid-allocation; observers
//!    spin the few instructions until the timestamp appears (they never
//!    park).
//! 3. [`TxnShared::finalize_commit`] CASes `Committing → Committed`,
//!    re-checking the doomed bit (and, for the basic variant, the pivot
//!    flags, which concurrent markers may have completed during the
//!    window). Failure aborts the transaction instead.
//!
//! # Commit dependencies
//!
//! During the window a transaction's versions are stamped *provisionally*
//! and its timestamp may already be published, so a reader whose snapshot
//! covers the timestamp can observe state that might still be rolled back.
//! Such a reader takes the read **speculatively**: it registers itself as a
//! *commit dependent* ([`TxnShared::register_commit_dependent`]) of the
//! committing transaction. A speculative reader may not finalize its own
//! commit until every transaction it depends on has settled
//! (`wait_for_dependencies` in [`crate::txn`]); a creator that aborts
//! drains its dependents ([`TxnShared::take_dependents`]) and dooms each of
//! them, cascading the abort through any chain of speculation.
//! Registration and draining serialize on the dependents mutex, and the
//! final status is stored in the word *before* the drain, so a registration
//! that misses the drain observes the settled status instead — no dependent
//! is ever lost.
//!
//! The *identities* of conflict neighbours (the enhanced variant's
//! [`ConflictEdge::Txn`] references, Sec. 3.6) cannot fit in the word; they
//! stay in a per-transaction mutex ([`TxnShared::conflicts`]). That mutex is
//! only ever taken by the enhanced code paths, which lock at most the two
//! participants of one conflict in transaction-id order (see
//! [`crate::ssi`]); the flag bits in the state word are kept in sync while
//! the mutex is held, so lock-free readers (commit suspension, statistics)
//! always see correct flags under both variants.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use ssi_common::{AbortReason, IsolationLevel, Timestamp, TxnId, TS_ZERO};

/// Width of the commit-timestamp field in the state word.
const WORD_TS_BITS: u32 = 56;
/// Mask of the commit-timestamp field.
const WORD_TS_MASK: u64 = (1 << WORD_TS_BITS) - 1;
/// Shift of the two status bits.
const WORD_STATUS_SHIFT: u32 = 56;
/// Mask of the status field (in place).
const WORD_STATUS_MASK: u64 = 0b11 << WORD_STATUS_SHIFT;
/// Doomed bit: selected as an abort victim by another thread.
pub(crate) const WORD_DOOMED: u64 = 1 << 58;
/// Incoming-conflict flag bit.
pub(crate) const WORD_IN: u64 = 1 << 59;
/// Outgoing-conflict flag bit.
pub(crate) const WORD_OUT: u64 = 1 << 60;

const STATUS_ACTIVE: u64 = 0;
const STATUS_COMMITTED: u64 = 1;
const STATUS_ABORTED: u64 = 2;
const STATUS_COMMITTING: u64 = 3;

/// Lifecycle status of a transaction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TxnStatus {
    /// Running; operations are being executed.
    Active,
    /// Passed its commit checks and entered the commit window: a commit
    /// timestamp is allocated (or about to be) and versions are being
    /// stamped provisionally, but the transaction can still abort. See the
    /// module docs for the state machine.
    Committing,
    /// Successfully committed.
    Committed,
    /// Rolled back (by the application or by the engine).
    Aborted,
}

/// Decodes the status field of a state word.
pub(crate) fn word_status(word: u64) -> TxnStatus {
    match (word & WORD_STATUS_MASK) >> WORD_STATUS_SHIFT {
        STATUS_ACTIVE => TxnStatus::Active,
        STATUS_COMMITTED => TxnStatus::Committed,
        STATUS_COMMITTING => TxnStatus::Committing,
        _ => TxnStatus::Aborted,
    }
}

/// Decodes the commit timestamp of a state word: `Some` only once the word
/// shows status `Committed`. A `Committing` word may carry an allocated
/// (pending) timestamp in its low bits, and an `Aborted` word may retain a
/// stale one from an abandoned commit window — neither is a commit
/// timestamp; use [`word_commit_resolution`] to see pending state.
pub(crate) fn word_commit_ts(word: u64) -> Option<Timestamp> {
    match word_status(word) {
        TxnStatus::Committed => Some(word & WORD_TS_MASK),
        _ => None,
    }
}

/// Full commit-progress reading of a state word, for observers (readers,
/// conflict markers) that resolve an in-flight commit themselves instead of
/// waiting for ordered publication.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum CommitResolution {
    /// Still running. Because timestamps are allocated only *after* the
    /// `Active → Committing` transition, an observer holding an already
    /// allocated timestamp `t` knows this transaction's commit timestamp
    /// (if it ever commits) will exceed `t`.
    Active,
    /// In the commit window but the allocated timestamp is not in the word
    /// yet. This window is a handful of instructions wide; observers spin
    /// it out rather than parking.
    Allocating,
    /// In the commit window with timestamp allocated: will commit at the
    /// contained timestamp unless it aborts.
    Pending(Timestamp),
    /// Committed at the contained timestamp.
    Committed(Timestamp),
    /// Aborted.
    Aborted,
}

/// Decodes a state word into its [`CommitResolution`].
pub(crate) fn word_commit_resolution(word: u64) -> CommitResolution {
    match word_status(word) {
        TxnStatus::Active => CommitResolution::Active,
        TxnStatus::Aborted => CommitResolution::Aborted,
        TxnStatus::Committed => CommitResolution::Committed(word & WORD_TS_MASK),
        TxnStatus::Committing => match word & WORD_TS_MASK {
            TS_ZERO => CommitResolution::Allocating,
            ts => CommitResolution::Pending(ts),
        },
    }
}

/// Outcome of [`TxnShared::register_commit_dependent`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum DependencyOutcome {
    /// The creator is still committing; the dependent is registered and
    /// will be drained (and doomed) if the creator aborts.
    Registered,
    /// The creator already committed; the read is settled, no dependency.
    Committed,
    /// The creator already aborted; the speculative value must be
    /// discarded and the read retried.
    Aborted,
}

/// Endpoint of a recorded rw-conflict edge (Sec. 3.6).
///
/// The basic algorithm only needs a boolean per direction (kept in the
/// state word); the enhanced algorithm keeps a reference to the single
/// conflicting transaction, or a self-loop marker once more than one
/// conflict has been seen in the same direction.
#[derive(Clone, Debug, Default)]
pub enum ConflictEdge {
    /// No conflict recorded in this direction.
    #[default]
    None,
    /// Exactly one conflict, with the referenced transaction.
    Txn(Arc<TxnShared>),
    /// More than one conflict in this direction (or the basic variant, which
    /// does not track identities). Semantically a self-loop in the MVSG.
    SelfLoop,
}

impl ConflictEdge {
    /// True if any conflict has been recorded in this direction.
    pub fn is_set(&self) -> bool {
        !matches!(self, ConflictEdge::None)
    }

    /// Commit-time bound of this edge when it is `owner`'s *outgoing*
    /// conflict, for the ordering test of Figs. 3.9/3.10 (`commit-time(out)
    /// <= commit-time(in)` means the structure may be dangerous).
    ///
    /// The bound must never over-estimate: a known single neighbour that is
    /// still `Active` will draw its timestamp later than anything already
    /// allocated ("infinity" — sound because allocation happens only after
    /// the `Committing` transition), a neighbour with a pending timestamp
    /// is bounded by that timestamp (exact if it commits, irrelevant if it
    /// aborts since the edge then carries no dangerous structure), and a
    /// neighbour caught mid-allocation may hold an arbitrarily early
    /// timestamp, so the only safe answer is zero. A self-loop stands for
    /// *several* (or forgotten) neighbours, any of which may have committed
    /// arbitrarily early, so the conservative bound is the owner's own
    /// (possibly pending) commit time — or zero while the owner runs.
    pub fn outgoing_commit_bound(&self, owner: &TxnShared) -> Timestamp {
        match self {
            ConflictEdge::None => Timestamp::MAX,
            ConflictEdge::SelfLoop => owner.allocated_commit_ts().unwrap_or(TS_ZERO),
            ConflictEdge::Txn(other) => match word_commit_resolution(other.load_word()) {
                CommitResolution::Committed(ts) | CommitResolution::Pending(ts) => ts,
                CommitResolution::Active | CommitResolution::Aborted => Timestamp::MAX,
                CommitResolution::Allocating => TS_ZERO,
            },
        }
    }

    /// Commit-time bound of this edge when it is `owner`'s *incoming*
    /// conflict. The bound must never under-estimate, so unknown, running
    /// or mid-allocation neighbours count as "infinity"; a pending
    /// timestamp is usable (exact if the neighbour commits, conservative —
    /// the edge evaporates — if it aborts).
    pub fn incoming_commit_bound(&self, owner: &TxnShared) -> Timestamp {
        match self {
            ConflictEdge::None => TS_ZERO,
            ConflictEdge::SelfLoop => owner.allocated_commit_ts().unwrap_or(Timestamp::MAX),
            ConflictEdge::Txn(other) => other.allocated_commit_ts().unwrap_or(Timestamp::MAX),
        }
    }
}

/// Conflict-neighbour identities of one transaction (enhanced variant
/// only), protected by this transaction's conflict mutex. The boolean
/// "is an edge present?" view lives in the state word; this structure adds
/// *who* the neighbour is so commit-time ordering can be checked.
#[derive(Default, Debug)]
pub struct ConflictState {
    /// Some concurrent transaction has an rw-dependency *into* this one
    /// (someone read an item this transaction overwrote).
    pub in_edge: ConflictEdge,
    /// This transaction has an rw-dependency *out* to a concurrent
    /// transaction (it read an item that someone else overwrote).
    pub out_edge: ConflictEdge,
}

/// Shared, reference-counted transaction record.
#[derive(Debug)]
pub struct TxnShared {
    id: TxnId,
    isolation: IsolationLevel,
    begin_ts: AtomicU64,
    /// The packed state word: commit timestamp, status, doomed flag and
    /// both conflict flags. See the module docs for the layout.
    state: AtomicU64,
    /// rw-conflict neighbour identities for the enhanced variant. The
    /// fine-grained lock ordering rule (see [`crate::ssi`]): when two
    /// transactions' conflict mutexes must be held together, they are
    /// acquired in increasing transaction-id order.
    pub(crate) conflicts: Mutex<ConflictState>,
    /// Transactions that took one of this transaction's provisionally
    /// stamped versions speculatively while this transaction was in its
    /// commit window. Drained once the outcome settles: dropped on commit,
    /// doomed on abort. See the module docs ("Commit dependencies").
    dependents: Mutex<Vec<Arc<TxnShared>>>,
    /// Why this transaction was doomed, as `AbortReason::index() + 1`
    /// (0 = not recorded). Written best-effort by whoever dooms the
    /// transaction; read when the doomed flag finally surfaces as an abort
    /// so provenance survives the gap between victim selection and the
    /// victim noticing.
    doom_reason: AtomicU8,
}

impl TxnShared {
    /// Creates the shared record for a new active transaction.
    pub fn new(id: TxnId, isolation: IsolationLevel) -> Self {
        TxnShared {
            id,
            isolation,
            begin_ts: AtomicU64::new(TS_ZERO),
            state: AtomicU64::new(0),
            conflicts: Mutex::new(ConflictState::default()),
            dependents: Mutex::new(Vec::new()),
            doom_reason: AtomicU8::new(0),
        }
    }

    /// Transaction id.
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// Isolation level the transaction runs at.
    pub fn isolation(&self) -> IsolationLevel {
        self.isolation
    }

    /// Begin timestamp (snapshot), once assigned.
    pub fn begin_ts(&self) -> Option<Timestamp> {
        match self.begin_ts.load(Ordering::Acquire) {
            TS_ZERO => None,
            ts => Some(ts),
        }
    }

    /// Assigns the begin timestamp. May be called once; later calls are
    /// ignored (the snapshot of a transaction never moves).
    pub fn set_begin_ts(&self, ts: Timestamp) {
        let _ = self
            .begin_ts
            .compare_exchange(TS_ZERO, ts, Ordering::AcqRel, Ordering::Acquire);
    }

    /// Current value of the state word.
    #[inline]
    pub(crate) fn load_word(&self) -> u64 {
        self.state.load(Ordering::Acquire)
    }

    /// Single CAS on the state word; on failure returns the current word.
    #[inline]
    pub(crate) fn cas_word(&self, current: u64, new: u64) -> Result<u64, u64> {
        self.state
            .compare_exchange_weak(current, new, Ordering::AcqRel, Ordering::Acquire)
    }

    /// Commit timestamp, once committed. `None` while the transaction is
    /// still committing, even if its timestamp is already allocated — use
    /// [`TxnShared::allocated_commit_ts`] to observe pending timestamps.
    pub fn commit_ts(&self) -> Option<Timestamp> {
        word_commit_ts(self.load_word())
    }

    /// Commit-progress reading of the state word (single atomic load).
    #[inline]
    pub(crate) fn commit_resolution(&self) -> CommitResolution {
        word_commit_resolution(self.load_word())
    }

    /// The allocated commit timestamp, whether still pending (the
    /// transaction is in its commit window and may yet abort) or settled.
    /// `None` while active, mid-allocation, or after an abort.
    pub(crate) fn allocated_commit_ts(&self) -> Option<Timestamp> {
        match self.commit_resolution() {
            CommitResolution::Committed(ts) | CommitResolution::Pending(ts) => Some(ts),
            _ => None,
        }
    }

    /// Current status.
    pub fn status(&self) -> TxnStatus {
        word_status(self.load_word())
    }

    /// True once committed.
    pub fn is_committed(&self) -> bool {
        self.status() == TxnStatus::Committed
    }

    /// True while active.
    pub fn is_active(&self) -> bool {
        self.status() == TxnStatus::Active
    }

    /// Marks the transaction committed at `ts` unconditionally (used by
    /// tests and by paths that have already performed their commit checks
    /// under this transaction's conflict mutex). Preserves the conflict
    /// flags.
    pub fn mark_committed(&self, ts: Timestamp) {
        debug_assert!(ts <= WORD_TS_MASK, "commit timestamp overflows the word");
        self.state
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |w| {
                Some(
                    (w & !(WORD_TS_MASK | WORD_STATUS_MASK))
                        | (ts & WORD_TS_MASK)
                        | (STATUS_COMMITTED << WORD_STATUS_SHIFT),
                )
            })
            .ok();
    }

    /// Atomically commits at `ts` *iff* the word passes the commit check at
    /// the instant of the transition: not doomed and — when `check_pivot`
    /// is set (the basic variant's Fig. 3.2 test) — not carrying both
    /// conflict flags. Returns the offending word on failure.
    ///
    /// This single-shot `Active → Committed` transition survives for
    /// transactions that never open a commit window (read-only commits,
    /// which have no versions to stamp); writers go through
    /// [`TxnShared::enter_committing`] / [`TxnShared::finalize_commit`]
    /// instead. Any concurrent `mark_conflict` that dooms this transaction
    /// or completes a pivot races with the CAS, and exactly one of the two
    /// observes the other.
    pub(crate) fn try_commit_word(&self, ts: Timestamp, check_pivot: bool) -> Result<(), u64> {
        debug_assert!(ts <= WORD_TS_MASK, "commit timestamp overflows the word");
        let mut current = self.load_word();
        loop {
            if current & WORD_DOOMED != 0 {
                return Err(current);
            }
            if check_pivot && current & WORD_IN != 0 && current & WORD_OUT != 0 {
                return Err(current);
            }
            debug_assert_eq!(word_status(current), TxnStatus::Active);
            let new = (current & !(WORD_TS_MASK | WORD_STATUS_MASK))
                | (ts & WORD_TS_MASK)
                | (STATUS_COMMITTED << WORD_STATUS_SHIFT);
            match self.cas_word(current, new) {
                Ok(_) => return Ok(()),
                Err(w) => current = w,
            }
        }
    }

    /// Atomically enters the commit window (`Active → Committing`) *iff*
    /// the word passes the commit check at the instant of the transition:
    /// not doomed and — when `check_pivot` is set (the basic variant's
    /// Fig. 3.2 test) — not carrying both conflict flags. Returns the
    /// offending word on failure.
    ///
    /// The timestamp field is left at zero; callers must allocate the
    /// commit timestamp strictly *after* this transition succeeds (see the
    /// module docs for why that ordering is load-bearing) and install it
    /// with [`TxnShared::set_pending_commit_ts`].
    pub(crate) fn enter_committing(&self, check_pivot: bool) -> Result<(), u64> {
        let mut current = self.load_word();
        loop {
            if current & WORD_DOOMED != 0 {
                return Err(current);
            }
            if check_pivot && current & WORD_IN != 0 && current & WORD_OUT != 0 {
                return Err(current);
            }
            debug_assert_eq!(word_status(current), TxnStatus::Active);
            debug_assert_eq!(current & WORD_TS_MASK, TS_ZERO);
            let new = (current & !WORD_STATUS_MASK) | (STATUS_COMMITTING << WORD_STATUS_SHIFT);
            match self.cas_word(current, new) {
                Ok(_) => return Ok(()),
                Err(w) => current = w,
            }
        }
    }

    /// Installs the allocated commit timestamp into a `Committing` word,
    /// moving observers from `Allocating` to `Pending(ts)`. Preserves the
    /// status and flag bits (markers may race flag updates in).
    pub(crate) fn set_pending_commit_ts(&self, ts: Timestamp) {
        debug_assert!(
            ts != TS_ZERO && ts <= WORD_TS_MASK,
            "commit timestamp out of range for the word"
        );
        self.state
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |w| {
                debug_assert_eq!(word_status(w), TxnStatus::Committing);
                Some((w & !WORD_TS_MASK) | (ts & WORD_TS_MASK))
            })
            .ok();
    }

    /// Atomically settles the commit (`Committing → Committed`) *iff* the
    /// word still passes the commit check: not doomed and — when
    /// `check_pivot` is set — not a pivot (markers may have completed the
    /// dangerous structure during the window; under the basic variant that
    /// must fail this transaction, which is what triggers dependency-abort
    /// cascades organically). Returns the offending word on failure, in
    /// which case the caller must abort and drain-doom its dependents.
    pub(crate) fn finalize_commit(&self, check_pivot: bool) -> Result<(), u64> {
        let mut current = self.load_word();
        loop {
            if current & WORD_DOOMED != 0 {
                return Err(current);
            }
            if check_pivot && current & WORD_IN != 0 && current & WORD_OUT != 0 {
                return Err(current);
            }
            debug_assert_eq!(word_status(current), TxnStatus::Committing);
            debug_assert_ne!(current & WORD_TS_MASK, TS_ZERO);
            let new = (current & !WORD_STATUS_MASK) | (STATUS_COMMITTED << WORD_STATUS_SHIFT);
            match self.cas_word(current, new) {
                Ok(_) => return Ok(()),
                Err(w) => current = w,
            }
        }
    }

    /// Registers `dep` as a commit dependent of this transaction, or
    /// reports that the outcome has already settled. The status check and
    /// the registration are atomic with respect to
    /// [`TxnShared::take_dependents`] (both hold the dependents mutex), and
    /// settling paths store the final word status *before* draining, so a
    /// registration can never be missed by the drain *and* observe a
    /// not-yet-settled status.
    pub(crate) fn register_commit_dependent(&self, dep: &Arc<TxnShared>) -> DependencyOutcome {
        let mut deps = self.dependents.lock();
        match self.status() {
            TxnStatus::Committed => DependencyOutcome::Committed,
            TxnStatus::Aborted => DependencyOutcome::Aborted,
            _ => {
                deps.push(dep.clone());
                DependencyOutcome::Registered
            }
        }
    }

    /// Drains the registered dependents. Callers must have stored the final
    /// (`Committed` or `Aborted`) status into the word first; on commit the
    /// returned list is simply dropped, on abort each entry must be doomed.
    pub(crate) fn take_dependents(&self) -> Vec<Arc<TxnShared>> {
        debug_assert!(matches!(
            self.status(),
            TxnStatus::Committed | TxnStatus::Aborted
        ));
        std::mem::take(&mut *self.dependents.lock())
    }

    /// Marks the transaction aborted.
    pub fn mark_aborted(&self) {
        self.state
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |w| {
                Some((w & !WORD_STATUS_MASK) | (STATUS_ABORTED << WORD_STATUS_SHIFT))
            })
            .ok();
    }

    /// Flags the transaction as a victim that must abort at its next
    /// operation (used by victim selection when the pivot is not the caller,
    /// Sec. 3.7.1/3.7.2).
    pub fn doom(&self) {
        self.state.fetch_or(WORD_DOOMED, Ordering::AcqRel);
    }

    /// Records why this transaction is being doomed. First writer wins, so
    /// the reason reported matches the doom that actually took effect.
    pub(crate) fn set_doom_reason(&self, reason: AbortReason) {
        let encoded = reason.index() as u8 + 1;
        let _ = self
            .doom_reason
            .compare_exchange(0, encoded, Ordering::AcqRel, Ordering::Relaxed);
    }

    /// The recorded doom provenance, defaulting to `DoomedByPeer` when the
    /// doomer did not (or could not) say why.
    pub(crate) fn doom_reason(&self) -> AbortReason {
        match self.doom_reason.load(Ordering::Acquire) {
            0 => AbortReason::DoomedByPeer,
            n => AbortReason::from_index(n as usize - 1).unwrap_or(AbortReason::DoomedByPeer),
        }
    }

    /// Dooms the transaction only if it is still active; returns true when
    /// the doomed flag is set (newly or already) on an active transaction.
    pub(crate) fn doom_if_active(&self) -> bool {
        let mut current = self.load_word();
        loop {
            if word_status(current) != TxnStatus::Active {
                return false;
            }
            if current & WORD_DOOMED != 0 {
                return true;
            }
            match self.cas_word(current, current | WORD_DOOMED) {
                Ok(_) => return true,
                Err(w) => current = w,
            }
        }
    }

    /// True if some other thread selected this transaction as a victim.
    pub fn is_doomed(&self) -> bool {
        self.load_word() & WORD_DOOMED != 0
    }

    /// Sets the incoming-conflict flag in the state word. Enhanced-variant
    /// callers must hold this transaction's conflict mutex.
    pub(crate) fn set_in_flag(&self) {
        self.state.fetch_or(WORD_IN, Ordering::AcqRel);
    }

    /// Sets the outgoing-conflict flag in the state word. Enhanced-variant
    /// callers must hold this transaction's conflict mutex.
    pub(crate) fn set_out_flag(&self) {
        self.state.fetch_or(WORD_OUT, Ordering::AcqRel);
    }

    /// True if this transaction's lifetime overlapped transaction `other`,
    /// i.e. the two were concurrent (Sec. 2.1): each began before the other
    /// committed (or the other has not committed).
    pub fn concurrent_with(&self, other: &TxnShared) -> bool {
        let my_begin = self.begin_ts().unwrap_or(Timestamp::MAX);
        let their_begin = other.begin_ts().unwrap_or(Timestamp::MAX);
        let my_commit = self.commit_ts().unwrap_or(Timestamp::MAX);
        let their_commit = other.commit_ts().unwrap_or(Timestamp::MAX);
        my_begin < their_commit && their_begin < my_commit
    }

    /// Clears the conflict edges and flags (called on abort and on cleanup
    /// so that mutual `Arc` references between transactions cannot form
    /// reference cycles and leak).
    pub fn clear_conflicts(&self) {
        let mut c = self.conflicts.lock();
        c.in_edge = ConflictEdge::None;
        c.out_edge = ConflictEdge::None;
        self.state
            .fetch_and(!(WORD_IN | WORD_OUT), Ordering::AcqRel);
    }

    /// Snapshot of the conflict flags `(in_set, out_set)` — a single atomic
    /// load of the state word.
    pub fn conflict_flags(&self) -> (bool, bool) {
        let w = self.load_word();
        (w & WORD_IN != 0, w & WORD_OUT != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txn(id: u64) -> TxnShared {
        TxnShared::new(TxnId(id), IsolationLevel::SerializableSnapshotIsolation)
    }

    /// Records an edge the way the enhanced variant does: identity under the
    /// mutex, flag bit in the state word.
    fn set_out(t: &TxnShared, edge: ConflictEdge) {
        t.conflicts.lock().out_edge = edge;
        t.set_out_flag();
    }

    fn set_in(t: &TxnShared, edge: ConflictEdge) {
        t.conflicts.lock().in_edge = edge;
        t.set_in_flag();
    }

    #[test]
    fn lifecycle() {
        let t = txn(1);
        assert_eq!(t.status(), TxnStatus::Active);
        assert!(t.is_active());
        assert_eq!(t.begin_ts(), None);
        t.set_begin_ts(5);
        assert_eq!(t.begin_ts(), Some(5));
        // Snapshot cannot move once assigned.
        t.set_begin_ts(9);
        assert_eq!(t.begin_ts(), Some(5));
        t.mark_committed(10);
        assert!(t.is_committed());
        assert_eq!(t.commit_ts(), Some(10));
    }

    #[test]
    fn abort_and_doom() {
        let t = txn(2);
        assert!(!t.is_doomed());
        t.doom();
        assert!(t.is_doomed());
        t.mark_aborted();
        assert_eq!(t.status(), TxnStatus::Aborted);
        assert!(!t.is_active());
    }

    #[test]
    fn try_commit_word_fails_on_doomed_or_pivot() {
        let t = txn(1);
        t.doom();
        assert!(t.try_commit_word(10, true).is_err());

        let p = txn(2);
        set_in(&p, ConflictEdge::SelfLoop);
        set_out(&p, ConflictEdge::SelfLoop);
        assert!(
            p.try_commit_word(10, true).is_err(),
            "pivot must not commit"
        );
        // Without the pivot check (enhanced variant decides separately) the
        // commit succeeds and preserves the flags.
        assert!(p.try_commit_word(10, false).is_ok());
        assert_eq!(p.commit_ts(), Some(10));
        assert_eq!(p.conflict_flags(), (true, true));
    }

    #[test]
    fn doom_if_active_respects_status() {
        let t = txn(1);
        assert!(t.doom_if_active());
        assert!(t.is_doomed());

        let c = txn(2);
        c.mark_committed(5);
        assert!(!c.doom_if_active());
        assert!(!c.is_doomed());
    }

    #[test]
    fn concurrency_overlap() {
        // a: [1, 10), b: [5, 20) — concurrent.
        let a = txn(1);
        a.set_begin_ts(1);
        a.mark_committed(10);
        let b = txn(2);
        b.set_begin_ts(5);
        b.mark_committed(20);
        assert!(a.concurrent_with(&b));
        assert!(b.concurrent_with(&a));

        // c begins after a committed — not concurrent with a.
        let c = txn(3);
        c.set_begin_ts(15);
        assert!(!a.concurrent_with(&c));
        assert!(!c.concurrent_with(&a));
        // but c is concurrent with b (b committed at 20 > 15).
        assert!(c.concurrent_with(&b));
    }

    #[test]
    fn conflict_edges_and_clearing() {
        let t = Arc::new(txn(1));
        let u = Arc::new(txn(2));
        set_out(&t, ConflictEdge::Txn(u.clone()));
        assert_eq!(t.conflict_flags(), (false, true));
        set_in(&u, ConflictEdge::SelfLoop);
        assert_eq!(u.conflict_flags(), (true, false));
        t.clear_conflicts();
        assert_eq!(t.conflict_flags(), (false, false));
        assert!(!t.conflicts.lock().out_edge.is_set());
    }

    #[test]
    fn edge_commit_time_bounds() {
        let owner = txn(1);
        let other = Arc::new(txn(2));

        // A known, still-running neighbour: it will commit later than
        // anything committed so far, regardless of direction.
        let edge = ConflictEdge::Txn(other.clone());
        assert_eq!(edge.outgoing_commit_bound(&owner), Timestamp::MAX);
        assert_eq!(edge.incoming_commit_bound(&owner), Timestamp::MAX);

        other.mark_committed(42);
        assert_eq!(edge.outgoing_commit_bound(&owner), 42);
        assert_eq!(edge.incoming_commit_bound(&owner), 42);

        // A self-loop is conservative in both directions: the unknown
        // outgoing neighbour may have committed arbitrarily early (bound 0
        // while the owner runs), the unknown incoming neighbour arbitrarily
        // late (bound infinity).
        assert_eq!(ConflictEdge::SelfLoop.outgoing_commit_bound(&owner), 0);
        assert_eq!(
            ConflictEdge::SelfLoop.incoming_commit_bound(&owner),
            Timestamp::MAX
        );
        owner.mark_committed(77);
        assert_eq!(ConflictEdge::SelfLoop.outgoing_commit_bound(&owner), 77);
        assert_eq!(ConflictEdge::SelfLoop.incoming_commit_bound(&owner), 77);

        // Absent edges: "no constraint".
        assert_eq!(
            ConflictEdge::None.outgoing_commit_bound(&owner),
            Timestamp::MAX
        );
        assert_eq!(ConflictEdge::None.incoming_commit_bound(&owner), 0);
    }

    #[test]
    fn edge_bounds_use_pending_timestamps() {
        let owner = txn(1);
        let other = Arc::new(txn(2));
        let edge = ConflictEdge::Txn(other.clone());

        // Mid-allocation: outgoing must assume "arbitrarily early",
        // incoming must assume "arbitrarily late".
        other.enter_committing(true).unwrap();
        assert_eq!(edge.outgoing_commit_bound(&owner), TS_ZERO);
        assert_eq!(edge.incoming_commit_bound(&owner), Timestamp::MAX);

        // Pending timestamp is usable in both directions.
        other.set_pending_commit_ts(42);
        assert_eq!(edge.outgoing_commit_bound(&owner), 42);
        assert_eq!(edge.incoming_commit_bound(&owner), 42);

        // An abort from the window withdraws the bound again.
        other.mark_aborted();
        assert_eq!(edge.outgoing_commit_bound(&owner), Timestamp::MAX);
        assert_eq!(edge.incoming_commit_bound(&owner), Timestamp::MAX);
    }

    #[test]
    fn committing_lifecycle_and_resolution() {
        let t = txn(1);
        assert_eq!(t.commit_resolution(), CommitResolution::Active);
        t.enter_committing(true).unwrap();
        assert_eq!(t.status(), TxnStatus::Committing);
        assert_eq!(t.commit_resolution(), CommitResolution::Allocating);
        assert_eq!(t.allocated_commit_ts(), None);
        t.set_pending_commit_ts(9);
        assert_eq!(t.commit_resolution(), CommitResolution::Pending(9));
        assert_eq!(t.allocated_commit_ts(), Some(9));
        // Pending is not committed: the strict decoder hides the timestamp.
        assert_eq!(t.commit_ts(), None);
        assert!(!t.is_committed());
        t.finalize_commit(true).unwrap();
        assert!(t.is_committed());
        assert_eq!(t.commit_ts(), Some(9));
        assert_eq!(t.commit_resolution(), CommitResolution::Committed(9));
    }

    #[test]
    fn commit_window_transitions_fail_on_doomed_or_pivot() {
        // Doomed before entry.
        let t = txn(1);
        t.doom();
        assert!(t.enter_committing(true).is_err());

        // Pivot entry under the basic check.
        let p = txn(2);
        set_in(&p, ConflictEdge::SelfLoop);
        set_out(&p, ConflictEdge::SelfLoop);
        assert!(p.enter_committing(true).is_err());
        // The enhanced variant decides the dangerous structure separately.
        assert!(p.enter_committing(false).is_ok());

        // Doomed during the window: finalize must fail.
        let d = txn(3);
        d.enter_committing(true).unwrap();
        d.set_pending_commit_ts(7);
        d.doom();
        assert!(d.finalize_commit(true).is_err());

        // Pivot completed during the window (basic variant).
        let q = txn(4);
        set_in(&q, ConflictEdge::SelfLoop);
        q.enter_committing(true).unwrap();
        q.set_pending_commit_ts(8);
        set_out(&q, ConflictEdge::SelfLoop);
        assert!(q.finalize_commit(true).is_err());
        // Aborting from the window hides the stale pending timestamp.
        q.mark_aborted();
        assert_eq!(q.commit_ts(), None);
        assert_eq!(q.allocated_commit_ts(), None);
        assert_eq!(q.commit_resolution(), CommitResolution::Aborted);
    }

    #[test]
    fn commit_dependents_register_and_drain() {
        let creator = Arc::new(txn(1));
        let r1 = Arc::new(txn(2));
        let r2 = Arc::new(txn(3));

        creator.enter_committing(true).unwrap();
        creator.set_pending_commit_ts(5);
        assert_eq!(
            creator.register_commit_dependent(&r1),
            DependencyOutcome::Registered
        );

        // Settle as committed: the drain returns the dependent (caller
        // drops it) and later registrations see the settled status.
        creator.finalize_commit(true).unwrap();
        let drained = creator.take_dependents();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].id(), r1.id());
        assert_eq!(
            creator.register_commit_dependent(&r2),
            DependencyOutcome::Committed
        );
        assert!(creator.take_dependents().is_empty());

        // Abort path: dependents drained for dooming, later registrations
        // told to retry.
        let aborter = Arc::new(txn(4));
        aborter.enter_committing(true).unwrap();
        aborter.set_pending_commit_ts(6);
        assert_eq!(
            aborter.register_commit_dependent(&r1),
            DependencyOutcome::Registered
        );
        aborter.mark_aborted();
        let doomed = aborter.take_dependents();
        assert_eq!(doomed.len(), 1);
        assert_eq!(
            aborter.register_commit_dependent(&r2),
            DependencyOutcome::Aborted
        );
    }

    #[test]
    fn doom_if_active_leaves_committing_windows_alone() {
        let t = txn(1);
        t.enter_committing(true).unwrap();
        assert!(!t.doom_if_active());
        assert!(!t.is_doomed());
        // A direct doom still reaches the window and fails the finalize.
        t.set_pending_commit_ts(5);
        t.doom();
        assert!(t.finalize_commit(true).is_err());
    }

    #[test]
    fn commit_cas_races_with_flag_setting() {
        // A flag set between the commit check and the CAS must make the
        // commit retry and observe it: hammer the word from two threads.
        for _ in 0..200 {
            let t = Arc::new(txn(7));
            set_in(&t, ConflictEdge::SelfLoop);
            let t2 = t.clone();
            let setter = std::thread::spawn(move || {
                t2.set_out_flag();
            });
            let committed = t.try_commit_word(9, true).is_ok();
            setter.join().unwrap();
            let (i, o) = t.conflict_flags();
            assert!(i && o, "flags must never be lost");
            if committed {
                // The commit CAS must have happened strictly before the
                // OUT flag arrived; either way no pivot may ever show
                // status Committed *and* have been observed by the commit
                // CAS with both flags.
                assert!(t.is_committed());
            } else {
                assert!(t.is_active());
            }
        }
    }
}
