//! Vendored, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no registry access, so this crate implements
//! the slice of proptest the test suite uses: the [`Strategy`] trait with
//! `prop_map` / `prop_flat_map` / `prop_shuffle`, range and tuple
//! strategies, `Just`, `any`, `prop::collection::vec`, `prop_oneof!` and
//! the `proptest!` test macro. Cases are generated from a deterministic
//! seeded generator and the failing value is printed on panic. Shrinking
//! is not implemented — a failing case is reported as generated.

use std::fmt::Debug;
use std::rc::Rc;

// ---------------------------------------------------------------------------
// Random source
// ---------------------------------------------------------------------------

/// Deterministic generator used to produce test cases (xoshiro256++).
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value below `bound` (rejection sampled).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let v = self.next_u64();
            let hi = ((v as u128 * bound as u128) >> 64) as u64;
            let lo = (v as u128 * bound as u128) as u64;
            if lo >= threshold {
                return hi;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------------

pub mod strategy {
    use super::*;

    /// A recipe for generating values of one type.
    pub trait Strategy: Sized {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F> {
            Map { inner: self, f }
        }

        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F> {
            FlatMap { inner: self, f }
        }

        /// Random permutation of a generated collection.
        fn prop_shuffle(self) -> Shuffle<Self> {
            Shuffle { inner: self }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: 'static,
        {
            BoxedStrategy {
                gen: Rc::new(move |rng| self.generate(rng)),
            }
        }
    }

    /// Type-erased strategy, produced by [`Strategy::boxed`] and
    /// `prop_oneof!`.
    #[derive(Clone)]
    pub struct BoxedStrategy<T> {
        gen: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.gen)(rng)
        }
    }

    /// Uniform choice between boxed alternatives (the `prop_oneof!` back
    /// end; all weights are equal).
    pub fn one_of<T: 'static>(choices: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
        BoxedStrategy {
            gen: Rc::new(move |rng| {
                let idx = rng.below(choices.len() as u64) as usize;
                choices[idx].generate(rng)
            }),
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    pub struct Shuffle<S> {
        inner: S,
    }

    impl<S, T> Strategy for Shuffle<S>
    where
        S: Strategy<Value = Vec<T>>,
    {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let mut v = self.inner.generate(rng);
            // Fisher–Yates.
            for i in (1..v.len()).rev() {
                let j = rng.below(i as u64 + 1) as usize;
                v.swap(i, j);
            }
            v
        }
    }

    macro_rules! int_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }

    int_strategies!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategies {
        ($(($($name:ident),+);)*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A, B);
        (A, B, C);
        (A, B, C, D);
    }
}

// ---------------------------------------------------------------------------
// Arbitrary / any
// ---------------------------------------------------------------------------

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy over the full domain of `T`.
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty size range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, sizes)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

pub mod runner {
    use super::strategy::Strategy;
    use super::{ProptestConfig, TestRng};
    use std::fmt::Debug;

    /// Runs `body` against `config.cases` generated values. On panic the
    /// failing case index and value are printed, then the panic resumes
    /// (no shrinking).
    pub fn run<S>(config: &ProptestConfig, name: &str, strategy: S, body: impl Fn(S::Value))
    where
        S: Strategy,
        S::Value: Debug,
    {
        // Stable per-test seed so failures reproduce across runs.
        let mut seed = 0xcafe_f00d_u64;
        for b in name.bytes() {
            seed = seed.wrapping_mul(0x100_0000_01b3).wrapping_add(b as u64);
        }
        let mut rng = TestRng::seed_from_u64(seed);
        for case in 0..config.cases {
            let value = strategy.generate(&mut rng);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(value)));
            if let Err(panic) = result {
                // Regenerate for the report: the value was moved into the
                // closure. Same seed stream position is gone, so report the
                // case number and seed instead.
                eprintln!("proptest shim: test '{name}' failed at case {case} (seed {seed:#x})");
                std::panic::resume_unwind(panic);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Assertion macros mirroring proptest's (panic-based here; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// The property-test declaration macro.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($arg:pat in $strategy:expr) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::runner::run(&config, stringify!($name), $strategy, |$arg| {
                    $body
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($arg:pat in $strategy:expr) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($arg in $strategy) $body
            )*
        }
    };
}

/// Everything the tests import.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest, ProptestConfig};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps_generate_in_domain() {
        let s = (0u8..8).prop_map(|v| v * 2);
        let mut rng = crate::TestRng::seed_from_u64(1);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v < 16 && v % 2 == 0);
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = crate::TestRng::seed_from_u64(2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(s.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn shuffle_permutes() {
        let s = Just((0..16usize).collect::<Vec<_>>()).prop_shuffle();
        let mut rng = crate::TestRng::seed_from_u64(3);
        let v = s.generate(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>());
        assert_ne!(v, sorted, "16 elements should not shuffle to identity");
    }

    #[test]
    fn vec_strategy_respects_size() {
        let s = prop::collection::vec(any::<u8>(), 2..5);
        let mut rng = crate::TestRng::seed_from_u64(4);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// Self-test of the macro plumbing.
        fn macro_roundtrip(x in 0u64..100) {
            prop_assert!(x < 100);
        }
    }
}
