//! Vendored, API-compatible subset of the `criterion` benchmarking crate.
//!
//! The build environment has no registry access, so this crate keeps the
//! bench sources compiling and producing useful numbers: each benchmark is
//! warmed up, then sampled repeatedly for the configured measurement time,
//! and the median per-iteration latency is printed in a criterion-like
//! format. Statistical analysis, plotting and baseline comparison are out
//! of scope; swap the real crate back in when a registry is available.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Throughput annotation (recorded, reported per element/byte).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// One measurement target passed to the closure of `bench_function`.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    /// Median nanoseconds per iteration, filled in by `iter`/`iter_custom`.
    result_ns: f64,
}

impl Bencher {
    /// Measures `f` by running batches sized to fill the measurement time
    /// and reporting the median batch latency per iteration.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warm-up and per-iteration cost estimate.
        let warm_deadline = Instant::now() + self.warm_up_time;
        let mut warm_iters: u64 = 0;
        let warm_start = Instant::now();
        while Instant::now() < warm_deadline {
            black_box(f());
            warm_iters += 1;
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64).max(1.0);

        let samples = self.sample_size.clamp(5, 100);
        let budget_ns = self.measurement_time.as_nanos() as f64;
        let iters_per_sample = ((budget_ns / samples as f64) / est_ns).max(1.0) as u64;

        let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            per_iter.push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        self.result_ns = per_iter[per_iter.len() / 2];
    }

    /// Measures with caller-provided timing: `f` receives an iteration count
    /// and returns how long those iterations took.
    pub fn iter_custom(&mut self, mut f: impl FnMut(u64) -> Duration) {
        let samples = self.sample_size.clamp(3, 20);
        let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let elapsed = f(1);
            per_iter.push(elapsed.as_nanos() as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        self.result_ns = per_iter[per_iter.len() / 2];
    }

    /// Batched measurement: setup per batch, then timed routine.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        let samples = self.sample_size.clamp(5, 100);
        let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            per_iter.push(start.elapsed().as_nanos() as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        self.result_ns = per_iter[per_iter.len() / 2];
    }
}

/// Batch sizing hint for `iter_batched` (accepted, not interpreted).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A named group of related benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    pub fn warm_up_time(&mut self, time: Duration) -> &mut Self {
        self.warm_up_time = time;
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&full) {
            return self;
        }
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            result_ns: f64::NAN,
        };
        f(&mut bencher);
        self.criterion
            .report(&full, bencher.result_ns, self.throughput);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Reads the benchmark-name filter from the command line, skipping the
    /// flags cargo-bench passes to harness binaries.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                // Criterion/libtest flags that take a separate value.
                "--save-baseline" | "--baseline" | "--measurement-time" | "--warm-up-time"
                | "--sample-size" | "--color" | "--format" | "--logfile" => {
                    let _ = args.next();
                }
                // Everything else starting with -- is a valueless flag
                // (--bench, --exact, --list, --nocapture, ...): ignore it
                // rather than swallowing the argument after it.
                s if s.starts_with("--") => {}
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    fn matches(&self, name: &str) -> bool {
        match &self.filter {
            Some(f) => name.contains(f.as_str()),
            None => true,
        }
    }

    fn report(&mut self, name: &str, ns: f64, throughput: Option<Throughput>) {
        let per = format_ns(ns);
        match throughput {
            Some(Throughput::Elements(n)) if n > 0 && ns > 0.0 => {
                let rate = n as f64 / (ns / 1e9);
                println!("{name:<60} time: [{per}]  thrpt: [{rate:.0} elem/s]");
            }
            Some(Throughput::Bytes(n)) if n > 0 && ns > 0.0 => {
                let rate = n as f64 / (ns / 1e9) / (1024.0 * 1024.0);
                println!("{name:<60} time: [{per}]  thrpt: [{rate:.1} MiB/s]");
            }
            _ => println!("{name:<60} time: [{per}]"),
        }
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
            sample_size: 20,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.to_string();
        self.benchmark_group(name.clone()).bench_function("base", f);
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench-binary entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_produces_a_number() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_selftest");
        group
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
            .sample_size(5);
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }

    #[test]
    fn format_ns_scales_units() {
        assert!(format_ns(5.0).ends_with("ns"));
        assert!(format_ns(5_000.0).ends_with("µs"));
        assert!(format_ns(5_000_000.0).ends_with("ms"));
        assert!(format_ns(5e9).ends_with(" s"));
    }

    #[test]
    fn filter_matching() {
        let c = Criterion {
            filter: Some("point".into()),
        };
        assert!(c.matches("group/point_read"));
        assert!(!c.matches("group/scan"));
    }
}
