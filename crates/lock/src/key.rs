//! Lock names: what a lock protects.
//!
//! Following the two prototype systems in the paper, a lock can protect a
//! *record* (InnoDB-style row locking), the *gap* before a record (InnoDB
//! next-key/gap locking, used to detect and prevent phantoms, Sec. 3.5), a
//! *page* (Berkeley-DB-style page locking, Sec. 4.2), or the table *supremum*
//! (the gap after the last record).
//!
//! The [`TableId`] in a [`LockKey`] names a lock *namespace*, not only a
//! table: secondary indexes reuse the same machinery with their own id, so
//! `Record(entry)` under an index id is a unique-constraint marker lock,
//! `Gap(entry)` protects the gap before an index entry, and `Supremum` the
//! gap after the last entry. The lock manager is oblivious to which
//! namespace a key lives in.

use ssi_common::TableId;
use std::fmt;

/// What a lock protects inside a table.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LockTarget {
    /// A single record, identified by its encoded key.
    Record(Vec<u8>),
    /// The gap immediately before the record with this key: a lock on
    /// `Gap(k)` conflicts only with other gap locks on `k`, never with locks
    /// on the record `k` itself (InnoDB gap-lock semantics, Sec. 2.5.2).
    Gap(Vec<u8>),
    /// The gap after the last record of the table ("supremum" key).
    Supremum,
    /// A whole page of records (Berkeley DB granularity).
    Page(u64),
}

impl fmt::Debug for LockTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockTarget::Record(k) => write!(f, "rec({})", hex_prefix(k)),
            LockTarget::Gap(k) => write!(f, "gap({})", hex_prefix(k)),
            LockTarget::Supremum => write!(f, "supremum"),
            LockTarget::Page(p) => write!(f, "page({p})"),
        }
    }
}

fn hex_prefix(k: &[u8]) -> String {
    let take = k.len().min(8);
    let mut s = String::with_capacity(take * 2 + 2);
    for b in &k[..take] {
        s.push_str(&format!("{b:02x}"));
    }
    if k.len() > take {
        s.push('…');
    }
    s
}

/// Fully qualified lock name: table plus target.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct LockKey {
    /// Table the target belongs to.
    pub table: TableId,
    /// Protected object within the table.
    pub target: LockTarget,
}

impl LockKey {
    /// Lock name for a record.
    pub fn record(table: TableId, key: impl Into<Vec<u8>>) -> Self {
        LockKey {
            table,
            target: LockTarget::Record(key.into()),
        }
    }

    /// Lock name for the gap before `key`.
    pub fn gap(table: TableId, key: impl Into<Vec<u8>>) -> Self {
        LockKey {
            table,
            target: LockTarget::Gap(key.into()),
        }
    }

    /// Lock name for the gap after the last record of `table`.
    pub fn supremum(table: TableId) -> Self {
        LockKey {
            table,
            target: LockTarget::Supremum,
        }
    }

    /// Lock name for a page of `table`.
    pub fn page(table: TableId, page: u64) -> Self {
        LockKey {
            table,
            target: LockTarget::Page(page),
        }
    }

    /// True if this names a gap (including the supremum gap).
    pub fn is_gap(&self) -> bool {
        matches!(self.target, LockTarget::Gap(_) | LockTarget::Supremum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_gap_on_same_key_are_different_locks() {
        let t = TableId(1);
        let r = LockKey::record(t, vec![1, 2, 3]);
        let g = LockKey::gap(t, vec![1, 2, 3]);
        assert_ne!(r, g);
        assert!(!r.is_gap());
        assert!(g.is_gap());
    }

    #[test]
    fn supremum_is_a_gap() {
        assert!(LockKey::supremum(TableId(2)).is_gap());
    }

    #[test]
    fn tables_partition_the_namespace() {
        let a = LockKey::record(TableId(1), vec![9]);
        let b = LockKey::record(TableId(2), vec![9]);
        assert_ne!(a, b);
    }

    #[test]
    fn page_locks() {
        let p = LockKey::page(TableId(3), 17);
        assert!(!p.is_gap());
        assert_eq!(p, LockKey::page(TableId(3), 17));
        assert_ne!(p, LockKey::page(TableId(3), 18));
    }

    #[test]
    fn debug_output_is_compact() {
        let k = LockKey::record(TableId(1), vec![0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4, 5]);
        let s = format!("{k:?}");
        assert!(s.contains("deadbeef"));
        assert!(s.contains('…'));
        let s2 = format!("{:?}", LockKey::supremum(TableId(1)));
        assert!(s2.contains("supremum"));
    }
}
