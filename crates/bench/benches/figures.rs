//! Criterion wrappers around representative evaluation figures.
//!
//! The full sweeps (every MPL, every isolation level, every figure) are run
//! by the `experiments` binary; `cargo bench` would take far too long if it
//! repeated all of them with Criterion's statistical repetitions. Instead
//! this bench measures one representative point per workload family —
//! throughput at a moderate MPL for SI, SSI and S2PL — so regressions in the
//! concurrent behaviour still show up in `cargo bench` output.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use ssi_bench::{build_workload, find_experiment, options_for, HarnessConfig};
use ssi_common::IsolationLevel;
use ssi_core::Database;
use ssi_workloads::driver::{run_workload, RunConfig};

/// Measures committed transactions (as Criterion "elements") for a short run
/// of the given figure at the given MPL.
fn bench_figure_point(c: &mut Criterion, id: &str, mpl: usize) {
    let def = find_experiment(id).unwrap_or_else(|| panic!("unknown experiment {id}"));
    let harness = HarnessConfig::default();
    let mut group = c.benchmark_group(format!("{id}_mpl{mpl}"));
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    for isolation in IsolationLevel::evaluated() {
        let db = Database::open(options_for(&def.spec, isolation));
        let workload = build_workload(&def.spec, &db, &harness);
        group.throughput(Throughput::Elements(1));
        group.bench_function(BenchmarkId::from_parameter(isolation.label()), |b| {
            b.iter_custom(|_iters| {
                let stats = run_workload(
                    &db,
                    workload.as_ref(),
                    &RunConfig {
                        mpl,
                        warmup: Duration::from_millis(50),
                        duration: Duration::from_millis(200),
                        seed: 1,
                    },
                );
                // Report time-per-commit so Criterion's numbers are
                // comparable across isolation levels.
                if stats.commits == 0 {
                    Duration::from_millis(200)
                } else {
                    Duration::from_millis(200) / stats.commits as u32
                }
            })
        });
    }
    group.finish();
}

fn bench_smallbank_figure(c: &mut Criterion) {
    bench_figure_point(c, "fig6_1", 8);
}

fn bench_sibench_figure(c: &mut Criterion) {
    bench_figure_point(c, "fig6_7", 8);
}

fn bench_tpcc_figure(c: &mut Criterion) {
    bench_figure_point(c, "fig6_15", 8);
}

criterion_group!(
    benches,
    bench_smallbank_figure,
    bench_sibench_figure,
    bench_tpcc_figure
);
criterion_main!(benches);
