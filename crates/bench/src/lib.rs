//! Experiment harness reproducing the evaluation of Chapter 6 of the thesis.
//!
//! Every figure of the evaluation chapter is described by an
//! [`ExperimentDef`]: which workload, which engine configuration
//! (Berkeley-DB-like page locking vs InnoDB-like row locking, commit flush
//! or not), which parameters, and which MPL sweep. [`run_experiment`]
//! executes the definition for the three isolation levels the thesis
//! compares (SI, Serializable SI, S2PL) and returns one [`PointResult`] per
//! (level, MPL) pair — exactly the series the thesis plots: committed
//! transactions per second plus aborts per commit broken down into
//! deadlocks, first-committer-wins conflicts and unsafe aborts.
//!
//! The `experiments` binary (in `src/bin`) prints these series as text
//! tables; the Criterion benches under `benches/` reuse the same
//! definitions for per-operation microbenchmarks and ablations.

pub mod baseline;
pub mod commit_micro;
pub mod storage_micro;

pub use ssi_obs::hist;

use std::time::Duration;

use ssi_common::stats::RunStats;
use ssi_common::{AbortKind, IsolationLevel};
use ssi_core::{Database, Options, SsiVariant};
use ssi_workloads::driver::{run_workload, RunConfig, Workload};
use ssi_workloads::sibench::SiBench;
use ssi_workloads::smallbank::{SmallBank, SmallBankConfig};
use ssi_workloads::tpcc::{ScaleFactor, TpccConfig, TpccWorkload};

/// Which workload an experiment runs, with the parameters the corresponding
/// figure uses.
#[derive(Clone, Debug)]
pub enum WorkloadSpec {
    /// SmallBank on the Berkeley-DB-like engine configuration
    /// (page-granularity locks, basic conflict flags), Sec. 6.1.
    SmallBank {
        /// Number of customers.
        customers: u64,
        /// Number of pages the keys are spread over (controls contention,
        /// ~100 in the hot configuration).
        pages: u64,
        /// SmallBank operations per transaction (1 or 10).
        ops_per_txn: usize,
        /// Simulated log-flush latency at commit (None = no flush).
        flush: Option<Duration>,
    },
    /// sibench on the InnoDB-like engine configuration, Sec. 6.3.
    SiBench {
        /// Rows in the table.
        items: u64,
        /// Queries issued per update.
        queries_per_update: u32,
    },
    /// TPC-C++ on the InnoDB-like engine configuration, Sec. 6.4.
    Tpcc {
        /// Number of warehouses.
        warehouses: u32,
        /// Use the thesis' "tiny" row scaling instead of standard scaling.
        tiny: bool,
        /// Skip the warehouse/district year-to-date updates.
        skip_ytd: bool,
        /// Use the Stock Level mix (10 SLEV : 1 NEWO).
        stock_level_mix: bool,
    },
}

/// An experiment: one figure of the thesis.
#[derive(Clone, Debug)]
pub struct ExperimentDef {
    /// Identifier used on the command line (e.g. `fig6_7`).
    pub id: &'static str,
    /// The thesis figure it reproduces (e.g. "Figure 6.7").
    pub figure: &'static str,
    /// Human-readable description.
    pub title: &'static str,
    /// Workload and engine configuration.
    pub spec: WorkloadSpec,
    /// Multiprogramming levels to sweep.
    pub mpls: &'static [usize],
}

/// One measured point of an experiment.
#[derive(Clone, Debug)]
pub struct PointResult {
    /// Isolation level of this series.
    pub isolation: IsolationLevel,
    /// Multiprogramming level (worker threads).
    pub mpl: usize,
    /// Committed transactions per second.
    pub throughput: f64,
    /// Deadlock aborts per commit.
    pub deadlocks_per_commit: f64,
    /// First-committer-wins aborts per commit.
    pub conflicts_per_commit: f64,
    /// SSI unsafe aborts per commit.
    pub unsafe_per_commit: f64,
    /// Mean latency of committed transactions.
    pub mean_latency: Duration,
    /// Raw statistics for further processing.
    pub stats: RunStats,
}

/// Execution settings of the harness (not part of an experiment's identity).
#[derive(Clone, Debug)]
pub struct HarnessConfig {
    /// Measured duration per (level, MPL) point.
    pub duration: Duration,
    /// Warm-up before each measurement.
    pub warmup: Duration,
    /// Use the full data scale from the thesis instead of the reduced
    /// "quick" scale (TPC-C standard row counts; longer MPL sweep).
    pub full: bool,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            duration: Duration::from_millis(800),
            warmup: Duration::from_millis(150),
            full: false,
            seed: 2008,
        }
    }
}

const QUICK_MPLS: &[usize] = &[1, 2, 5, 10, 20];
const FULL_MPLS: &[usize] = &[1, 2, 3, 5, 10, 20, 30, 50];

/// MPL sweep appropriate for the harness configuration.
pub fn mpl_sweep(def: &ExperimentDef, config: &HarnessConfig) -> Vec<usize> {
    if config.full {
        FULL_MPLS.to_vec()
    } else {
        def.mpls.to_vec()
    }
}

/// The flush latency used for the "log flushed at commit" SmallBank
/// experiments. The thesis' 2008 disks took ~10 ms per flush; a smaller
/// value keeps the shape (I/O-bound commits, group-commit scaling) while
/// letting the quick harness finish in reasonable time.
pub const COMMIT_FLUSH_LATENCY: Duration = Duration::from_millis(2);

/// All experiments of Chapter 6, in figure order.
pub fn all_experiments() -> Vec<ExperimentDef> {
    vec![
        ExperimentDef {
            id: "fig6_1",
            figure: "Figure 6.1",
            title: "Berkeley DB SmallBank, no log flush at commit (hot data)",
            spec: WorkloadSpec::SmallBank {
                customers: 1_000,
                pages: 100,
                ops_per_txn: 1,
                flush: None,
            },
            mpls: QUICK_MPLS,
        },
        ExperimentDef {
            id: "fig6_2",
            figure: "Figure 6.2",
            title: "Berkeley DB SmallBank, log flushed at commit (group commit)",
            spec: WorkloadSpec::SmallBank {
                customers: 1_000,
                pages: 100,
                ops_per_txn: 1,
                flush: Some(COMMIT_FLUSH_LATENCY),
            },
            mpls: QUICK_MPLS,
        },
        ExperimentDef {
            id: "fig6_3",
            figure: "Figure 6.3",
            title: "Berkeley DB SmallBank, complex transactions (10 ops), log flush",
            spec: WorkloadSpec::SmallBank {
                customers: 1_000,
                pages: 100,
                ops_per_txn: 10,
                flush: Some(COMMIT_FLUSH_LATENCY),
            },
            mpls: QUICK_MPLS,
        },
        ExperimentDef {
            id: "fig6_4",
            figure: "Figure 6.4",
            title: "Berkeley DB SmallBank, 1/10th contention (10x data), log flush",
            spec: WorkloadSpec::SmallBank {
                customers: 10_000,
                pages: 1_000,
                ops_per_txn: 1,
                flush: Some(COMMIT_FLUSH_LATENCY),
            },
            mpls: QUICK_MPLS,
        },
        ExperimentDef {
            id: "fig6_5",
            figure: "Figure 6.5",
            title: "Berkeley DB SmallBank, complex transactions and low contention",
            spec: WorkloadSpec::SmallBank {
                customers: 10_000,
                pages: 1_000,
                ops_per_txn: 10,
                flush: Some(COMMIT_FLUSH_LATENCY),
            },
            mpls: QUICK_MPLS,
        },
        ExperimentDef {
            id: "fig6_6",
            figure: "Figure 6.6",
            title: "InnoDB sibench, 10 items, 1 query per update",
            spec: WorkloadSpec::SiBench {
                items: 10,
                queries_per_update: 1,
            },
            mpls: QUICK_MPLS,
        },
        ExperimentDef {
            id: "fig6_7",
            figure: "Figure 6.7",
            title: "InnoDB sibench, 100 items, 1 query per update",
            spec: WorkloadSpec::SiBench {
                items: 100,
                queries_per_update: 1,
            },
            mpls: QUICK_MPLS,
        },
        ExperimentDef {
            id: "fig6_8",
            figure: "Figure 6.8",
            title: "InnoDB sibench, 1000 items, 1 query per update",
            spec: WorkloadSpec::SiBench {
                items: 1_000,
                queries_per_update: 1,
            },
            mpls: QUICK_MPLS,
        },
        ExperimentDef {
            id: "fig6_9",
            figure: "Figure 6.9",
            title: "InnoDB sibench, 10 items, 10 queries per update",
            spec: WorkloadSpec::SiBench {
                items: 10,
                queries_per_update: 10,
            },
            mpls: QUICK_MPLS,
        },
        ExperimentDef {
            id: "fig6_10",
            figure: "Figure 6.10",
            title: "InnoDB sibench, 100 items, 10 queries per update",
            spec: WorkloadSpec::SiBench {
                items: 100,
                queries_per_update: 10,
            },
            mpls: QUICK_MPLS,
        },
        ExperimentDef {
            id: "fig6_11",
            figure: "Figure 6.11",
            title: "InnoDB sibench, 1000 items, 10 queries per update",
            spec: WorkloadSpec::SiBench {
                items: 1_000,
                queries_per_update: 10,
            },
            mpls: QUICK_MPLS,
        },
        ExperimentDef {
            id: "fig6_12",
            figure: "Figure 6.12",
            title: "TPC-C++, 1 warehouse, skipping year-to-date updates",
            spec: WorkloadSpec::Tpcc {
                warehouses: 1,
                tiny: false,
                skip_ytd: true,
                stock_level_mix: false,
            },
            mpls: QUICK_MPLS,
        },
        ExperimentDef {
            id: "fig6_13",
            figure: "Figure 6.13",
            title: "TPC-C++, 10 warehouses, full mix",
            spec: WorkloadSpec::Tpcc {
                warehouses: 10,
                tiny: false,
                skip_ytd: false,
                stock_level_mix: false,
            },
            mpls: QUICK_MPLS,
        },
        ExperimentDef {
            id: "fig6_14",
            figure: "Figure 6.14",
            title: "TPC-C++, 10 warehouses, skipping year-to-date updates",
            spec: WorkloadSpec::Tpcc {
                warehouses: 10,
                tiny: false,
                skip_ytd: true,
                stock_level_mix: false,
            },
            mpls: QUICK_MPLS,
        },
        ExperimentDef {
            id: "fig6_15",
            figure: "Figure 6.15",
            title: "TPC-C++, 10 warehouses, tiny data scaling (high contention)",
            spec: WorkloadSpec::Tpcc {
                warehouses: 10,
                tiny: true,
                skip_ytd: false,
                stock_level_mix: false,
            },
            mpls: QUICK_MPLS,
        },
        ExperimentDef {
            id: "fig6_16",
            figure: "Figure 6.16",
            title: "TPC-C++, tiny data scaling, skipping year-to-date updates",
            spec: WorkloadSpec::Tpcc {
                warehouses: 10,
                tiny: true,
                skip_ytd: true,
                stock_level_mix: false,
            },
            mpls: QUICK_MPLS,
        },
        ExperimentDef {
            id: "fig6_17",
            figure: "Figure 6.17",
            title: "TPC-C++ Stock Level mix, 10 warehouses",
            spec: WorkloadSpec::Tpcc {
                warehouses: 10,
                tiny: false,
                skip_ytd: false,
                stock_level_mix: true,
            },
            mpls: QUICK_MPLS,
        },
        ExperimentDef {
            id: "fig6_18",
            figure: "Figure 6.18",
            title: "TPC-C++ Stock Level mix, tiny data scaling",
            spec: WorkloadSpec::Tpcc {
                warehouses: 10,
                tiny: true,
                skip_ytd: false,
                stock_level_mix: true,
            },
            mpls: QUICK_MPLS,
        },
    ]
}

/// Looks an experiment up by id.
pub fn find_experiment(id: &str) -> Option<ExperimentDef> {
    all_experiments().into_iter().find(|e| e.id == id)
}

/// Builds the engine options an experiment uses for a given isolation level.
pub fn options_for(spec: &WorkloadSpec, isolation: IsolationLevel) -> Options {
    match spec {
        WorkloadSpec::SmallBank { pages, flush, .. } => {
            let mut options = Options::berkeley_like(*pages).with_isolation(isolation);
            if let Some(latency) = flush {
                options = options.with_commit_flush(*latency);
            }
            options
        }
        WorkloadSpec::SiBench { .. } | WorkloadSpec::Tpcc { .. } => {
            Options::innodb_like().with_isolation(isolation)
        }
    }
}

/// Builds the workload an experiment uses (loading its data into `db`).
pub fn build_workload(
    spec: &WorkloadSpec,
    db: &Database,
    harness: &HarnessConfig,
) -> Box<dyn Workload> {
    match spec {
        WorkloadSpec::SmallBank {
            customers,
            ops_per_txn,
            ..
        } => Box::new(SmallBank::setup(
            db,
            SmallBankConfig {
                customers: *customers,
                ops_per_txn: *ops_per_txn,
                initial_balance: 10_000,
                mitigation: Default::default(),
            },
        )),
        WorkloadSpec::SiBench {
            items,
            queries_per_update,
        } => Box::new(SiBench::setup(db, *items, *queries_per_update)),
        WorkloadSpec::Tpcc {
            warehouses,
            tiny,
            skip_ytd,
            stock_level_mix,
        } => {
            // In quick mode the TPC-C experiments always use the thesis'
            // tiny row scaling so that loading stays fast; the warehouse
            // count (the contention knob) is preserved. Full mode uses the
            // exact scaling of the figure.
            let scale = if *tiny || !harness.full {
                ScaleFactor::tiny(*warehouses)
            } else {
                ScaleFactor::standard(*warehouses)
            };
            let mut config = TpccConfig::new(scale).with_skip_ytd(*skip_ytd);
            if *stock_level_mix {
                config = config.with_stock_level_mix();
            }
            Box::new(TpccWorkload::setup(db, config))
        }
    }
}

/// Runs one experiment, returning one point per (isolation level, MPL).
pub fn run_experiment(def: &ExperimentDef, harness: &HarnessConfig) -> Vec<PointResult> {
    let mut results = Vec::new();
    for isolation in IsolationLevel::evaluated() {
        let db = Database::open(options_for(&def.spec, isolation));
        let workload = build_workload(&def.spec, &db, harness);
        for &mpl in &mpl_sweep(def, harness) {
            let stats = run_workload(
                &db,
                workload.as_ref(),
                &RunConfig {
                    mpl,
                    warmup: harness.warmup,
                    duration: harness.duration,
                    seed: harness.seed,
                },
            );
            results.push(PointResult {
                isolation,
                mpl,
                throughput: stats.throughput(),
                deadlocks_per_commit: stats.aborts_per_commit(AbortKind::Deadlock),
                conflicts_per_commit: stats.aborts_per_commit(AbortKind::UpdateConflict),
                unsafe_per_commit: stats.aborts_per_commit(AbortKind::Unsafe),
                mean_latency: stats.mean_latency,
                stats,
            });
        }
    }
    results
}

/// Ablation configurations for the design choices called out in DESIGN.md:
/// basic vs enhanced conflict representation, SIREAD upgrade on/off, and the
/// mixed mode that runs read-only queries at SI.
pub fn ablation_options(base: IsolationLevel) -> Vec<(&'static str, Options)> {
    let mut enhanced = Options::default().with_isolation(base);
    enhanced.ssi.variant = SsiVariant::Enhanced;
    let mut basic = Options::default().with_isolation(base);
    basic.ssi.variant = SsiVariant::Basic;
    let mut no_upgrade = Options::default().with_isolation(base);
    no_upgrade.ssi.upgrade_siread = false;
    let mut mixed = Options::default().with_isolation(base);
    mixed.read_only_queries_at_si = true;
    vec![
        ("enhanced", enhanced),
        ("basic-flags", basic),
        ("no-siread-upgrade", no_upgrade),
        ("queries-at-si", mixed),
    ]
}

/// Formats a set of points as an aligned text table (one block per
/// isolation level), matching the series the thesis plots.
pub fn format_table(def: &ExperimentDef, points: &[PointResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {} ({}): {}\n", def.id, def.figure, def.title));
    out.push_str(&format!(
        "{:<6} {:>5} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
        "level", "mpl", "commits/s", "deadlock/c", "conflict/c", "unsafe/c", "latency_us"
    ));
    for point in points {
        out.push_str(&format!(
            "{:<6} {:>5} {:>12.1} {:>12.4} {:>12.4} {:>12.4} {:>12.1}\n",
            point.isolation.label(),
            point.mpl,
            point.throughput,
            point.deadlocks_per_commit,
            point.conflicts_per_commit,
            point.unsafe_per_commit,
            point.mean_latency.as_secs_f64() * 1e6,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_figures_are_defined_once() {
        let experiments = all_experiments();
        assert_eq!(experiments.len(), 18, "Figures 6.1 through 6.18");
        let mut ids: Vec<&str> = experiments.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 18, "experiment ids must be unique");
        for i in 1..=18 {
            assert!(
                find_experiment(&format!("fig6_{i}")).is_some(),
                "missing fig6_{i}"
            );
        }
        assert!(find_experiment("fig9_99").is_none());
    }

    #[test]
    fn options_match_the_prototype_for_each_workload() {
        let sb = find_experiment("fig6_1").unwrap();
        let opts = options_for(&sb.spec, IsolationLevel::SerializableSnapshotIsolation);
        assert!(
            opts.granularity.is_page(),
            "SmallBank runs on the BDB-like engine"
        );
        assert!(opts.wal.flush_latency.is_none(), "fig6_1 does not flush");

        let sb2 = find_experiment("fig6_2").unwrap();
        let opts2 = options_for(&sb2.spec, IsolationLevel::SnapshotIsolation);
        assert_eq!(opts2.wal.flush_latency, Some(COMMIT_FLUSH_LATENCY));

        let si = find_experiment("fig6_7").unwrap();
        let opts3 = options_for(&si.spec, IsolationLevel::StrictTwoPhaseLocking);
        assert!(
            !opts3.granularity.is_page(),
            "sibench runs on the InnoDB-like engine"
        );
    }

    #[test]
    fn smoke_run_of_a_small_experiment() {
        // A very short run of the smallest sibench figure: all three levels
        // must produce commits at every MPL.
        let def = find_experiment("fig6_6").unwrap();
        let harness = HarnessConfig {
            duration: Duration::from_millis(120),
            warmup: Duration::from_millis(30),
            full: false,
            seed: 1,
        };
        let points = run_experiment(&def, &harness);
        assert_eq!(points.len(), 3 * mpl_sweep(&def, &harness).len());
        assert!(points.iter().all(|p| p.throughput > 0.0));
        let table = format_table(&def, &points);
        assert!(table.contains("fig6_6"));
        assert!(table.contains("SSI"));
    }

    #[test]
    fn ablation_configurations_differ() {
        let configs = ablation_options(IsolationLevel::SerializableSnapshotIsolation);
        assert_eq!(configs.len(), 4);
        assert_eq!(configs[0].1.ssi.variant, SsiVariant::Enhanced);
        assert_eq!(configs[1].1.ssi.variant, SsiVariant::Basic);
        assert!(!configs[2].1.ssi.upgrade_siread);
        assert!(configs[3].1.read_only_queries_at_si);
    }
}
