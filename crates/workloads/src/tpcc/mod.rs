//! TPC-C++ — the thesis' modification of TPC-C (Sec. 5.3).
//!
//! Standard TPC-C is serializable under plain snapshot isolation (Fekete et
//! al. 2005), so it cannot show what providing true serializability costs.
//! TPC-C++ keeps the TPC-C schema and the five standard transactions and adds
//! a sixth, **Credit Check**, which reads a customer's balance and
//! undelivered orders and updates the customer's credit rating. The new
//! transaction turns the static dependency graph of Fig. 5.3 into one with
//! two pivots (New Order and Credit Check), so the mix can produce
//! non-serializable executions under SI (Example 5 of the thesis).
//!
//! Simplifications relative to the full TPC-C specification follow
//! Sec. 5.3.1: no terminal emulation or think times, no History table, total
//! throughput (all transaction types) is reported instead of tpmC, the
//! warehouse tax is treated as client-cached, and the year-to-date columns
//! of Warehouse/District can optionally be skipped (`skip_ytd_updates`) to
//! remove the deliberate write hotspot. Delivery processes one district per
//! transaction (the "one order per transaction" reading noted in the TPC-C
//! description quoted in Sec. 2.8.1).

pub mod loader;
pub mod schema;
pub mod transactions;

use ssi_common::rng::WorkloadRng;
use ssi_common::Error;
use ssi_core::{Database, IndexRef, TableRef};

use crate::driver::Workload;

/// Transaction-type indexes used in driver reports.
pub const TXN_NEW_ORDER: usize = 0;
/// Payment.
pub const TXN_PAYMENT: usize = 1;
/// Order Status (read-only).
pub const TXN_ORDER_STATUS: usize = 2;
/// Delivery.
pub const TXN_DELIVERY: usize = 3;
/// Stock Level (read-only).
pub const TXN_STOCK_LEVEL: usize = 4;
/// Credit Check (the TPC-C++ addition).
pub const TXN_CREDIT_CHECK: usize = 5;

/// Data-scaling parameters (Sec. 5.3.6).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScaleFactor {
    /// Number of warehouses (the TPC-C scaling knob `W`).
    pub warehouses: u32,
    /// Districts per warehouse (10 in the specification).
    pub districts_per_warehouse: u32,
    /// Customers per district (3000 standard, 100 in the thesis' "tiny"
    /// scale).
    pub customers_per_district: u32,
    /// Number of distinct items (100 000 standard, 1000 tiny).
    pub items: u32,
    /// Orders pre-loaded per district (equal to customers in the standard
    /// population).
    pub initial_orders_per_district: u32,
}

impl ScaleFactor {
    /// Standard TPC-C scaling for `w` warehouses.
    pub fn standard(warehouses: u32) -> Self {
        ScaleFactor {
            warehouses,
            districts_per_warehouse: 10,
            customers_per_district: 3000,
            items: 100_000,
            initial_orders_per_district: 3000,
        }
    }

    /// The thesis' "tiny" scaling (Sec. 5.3.6): customers divided by 30,
    /// items divided by 100, so contention can be studied while everything
    /// stays in memory.
    pub fn tiny(warehouses: u32) -> Self {
        ScaleFactor {
            warehouses,
            districts_per_warehouse: 10,
            customers_per_district: 100,
            items: 1000,
            initial_orders_per_district: 100,
        }
    }

    /// A miniature scale for unit tests and smoke runs (not part of the
    /// thesis; loads in milliseconds).
    pub fn test_scale(warehouses: u32) -> Self {
        ScaleFactor {
            warehouses,
            districts_per_warehouse: 2,
            customers_per_district: 20,
            items: 50,
            initial_orders_per_district: 20,
        }
    }

    /// Approximate number of rows the initial population will create.
    pub fn approximate_rows(&self) -> u64 {
        let w = self.warehouses as u64;
        let d = w * self.districts_per_warehouse as u64;
        let c = d * self.customers_per_district as u64;
        let o = d * self.initial_orders_per_district as u64;
        // warehouse + district + customer (+ name index) + orders (+ cust
        // index) + ~10 lines per order + new-order for 30% + stock + items.
        w + d + 2 * c + 2 * o + 10 * o + o / 3 + w * self.items as u64 + self.items as u64
    }
}

/// Workload configuration.
#[derive(Clone, Debug)]
pub struct TpccConfig {
    /// Data scaling.
    pub scale: ScaleFactor,
    /// Skip the year-to-date updates of the Warehouse and District tables in
    /// Payment (Sec. 5.3.1, last bullet): removes a deliberate write
    /// hotspot that otherwise dominates the results at W=1.
    pub skip_ytd_updates: bool,
    /// Use the Stock Level mix (10 Stock Level transactions per New Order,
    /// Sec. 5.3.5) instead of the standard mix.
    pub stock_level_mix: bool,
    /// Fraction of New Order transactions that roll back at the end
    /// (the spec's 1% "unused item" rollbacks).
    pub new_order_rollback: f64,
}

impl TpccConfig {
    /// Standard-mix configuration at the given scale.
    pub fn new(scale: ScaleFactor) -> Self {
        TpccConfig {
            scale,
            skip_ytd_updates: false,
            stock_level_mix: false,
            new_order_rollback: 0.01,
        }
    }

    /// Enables or disables the year-to-date hotspot updates.
    pub fn with_skip_ytd(mut self, skip: bool) -> Self {
        self.skip_ytd_updates = skip;
        self
    }

    /// Switches to the Stock Level mix.
    pub fn with_stock_level_mix(mut self) -> Self {
        self.stock_level_mix = true;
        self
    }
}

/// Table handles used by the transactions.
pub(crate) struct TpccTables {
    pub warehouse: TableRef,
    pub district: TableRef,
    pub customer: TableRef,
    /// Engine secondary index over `customer`, keyed by
    /// `(w, d, last_name)` — maintained by the storage layer with every
    /// customer write, no manual index puts.
    pub customer_name_idx: IndexRef,
    pub orders: TableRef,
    pub order_customer_idx: TableRef,
    pub new_order: TableRef,
    pub order_line: TableRef,
    pub item: TableRef,
    pub stock: TableRef,
}

impl TpccTables {
    fn create(db: &Database) -> Self {
        let mut refs = Vec::new();
        for name in schema::TABLE_NAMES {
            refs.push(db.create_table(name).unwrap());
        }
        // Created before the load so every customer row is indexed on
        // insert (backfill over an empty table is trivial).
        let customer_name_idx = db
            .create_index(
                schema::CUSTOMER_NAME_INDEX,
                &refs[2],
                false,
                schema::customer_name_spec(),
            )
            .unwrap();
        TpccTables {
            warehouse: refs[0].clone(),
            district: refs[1].clone(),
            customer: refs[2].clone(),
            customer_name_idx,
            orders: refs[3].clone(),
            order_customer_idx: refs[4].clone(),
            new_order: refs[5].clone(),
            order_line: refs[6].clone(),
            item: refs[7].clone(),
            stock: refs[8].clone(),
        }
    }
}

/// The TPC-C++ workload bound to a database.
pub struct TpccWorkload {
    pub(crate) config: TpccConfig,
    pub(crate) tables: TpccTables,
}

impl TpccWorkload {
    /// Creates the schema and loads the initial population.
    pub fn setup(db: &Database, config: TpccConfig) -> Self {
        let tables = TpccTables::create(db);
        let workload = TpccWorkload { config, tables };
        loader::load(db, &workload);
        workload
    }

    /// The workload configuration.
    pub fn config(&self) -> &TpccConfig {
        &self.config
    }

    /// Picks a transaction type according to the configured mix
    /// (Sec. 5.3.4 / 5.3.5).
    pub(crate) fn pick_transaction(&self, rng: &mut WorkloadRng) -> usize {
        if self.config.stock_level_mix {
            // 10 Stock Level transactions per New Order.
            if rng.uniform(0, 10) == 0 {
                TXN_NEW_ORDER
            } else {
                TXN_STOCK_LEVEL
            }
        } else {
            // 41% NEWO, 43% PAY, 4% each of OSTAT, DLVY, SLEV, CCHECK.
            match rng.uniform(0, 99) {
                0..=40 => TXN_NEW_ORDER,
                41..=83 => TXN_PAYMENT,
                84..=87 => TXN_ORDER_STATUS,
                88..=91 => TXN_DELIVERY,
                92..=95 => TXN_STOCK_LEVEL,
                _ => TXN_CREDIT_CHECK,
            }
        }
    }
}

impl Workload for TpccWorkload {
    fn name(&self) -> &str {
        if self.config.stock_level_mix {
            "tpcc++ (stock-level mix)"
        } else {
            "tpcc++"
        }
    }

    fn transaction_types(&self) -> usize {
        6
    }

    fn transaction_type_name(&self, ty: usize) -> &'static str {
        match ty {
            TXN_NEW_ORDER => "NewOrder",
            TXN_PAYMENT => "Payment",
            TXN_ORDER_STATUS => "OrderStatus",
            TXN_DELIVERY => "Delivery",
            TXN_STOCK_LEVEL => "StockLevel",
            TXN_CREDIT_CHECK => "CreditCheck",
            _ => "unknown",
        }
    }

    fn execute_one(&self, db: &Database, rng: &mut WorkloadRng) -> (usize, Result<(), Error>) {
        let ty = self.pick_transaction(rng);
        let result = match ty {
            TXN_NEW_ORDER => transactions::new_order(self, db, rng),
            TXN_PAYMENT => transactions::payment(self, db, rng),
            TXN_ORDER_STATUS => transactions::order_status(self, db, rng),
            TXN_DELIVERY => transactions::delivery(self, db, rng),
            TXN_STOCK_LEVEL => transactions::stock_level(self, db, rng),
            _ => transactions::credit_check(self, db, rng),
        };
        (ty, result)
    }

    fn check_consistency(&self, db: &Database) -> Option<String> {
        transactions::consistency_violations(self, db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_factors_match_the_thesis_table() {
        let std1 = ScaleFactor::standard(1);
        assert_eq!(std1.customers_per_district, 3000);
        assert_eq!(std1.items, 100_000);
        let tiny = ScaleFactor::tiny(10);
        assert_eq!(tiny.customers_per_district, 100);
        assert_eq!(tiny.items, 1000);
        assert_eq!(tiny.warehouses, 10);
        // The thesis' data-volume table: tiny scale is dramatically smaller
        // than the standard scale for the same warehouse count.
        assert!(ScaleFactor::standard(10).approximate_rows() > 10 * tiny.approximate_rows());
    }

    #[test]
    fn mix_respects_configured_ratios() {
        let db = Database::open(ssi_core::Options::default());
        let workload = TpccWorkload::setup(&db, TpccConfig::new(ScaleFactor::test_scale(1)));
        let mut rng = WorkloadRng::new(1);
        let mut counts = [0usize; 6];
        for _ in 0..10_000 {
            counts[workload.pick_transaction(&mut rng)] += 1;
        }
        let frac = |i: usize| counts[i] as f64 / 10_000.0;
        assert!((frac(TXN_NEW_ORDER) - 0.41).abs() < 0.03);
        assert!((frac(TXN_PAYMENT) - 0.43).abs() < 0.03);
        for ty in [
            TXN_ORDER_STATUS,
            TXN_DELIVERY,
            TXN_STOCK_LEVEL,
            TXN_CREDIT_CHECK,
        ] {
            assert!((frac(ty) - 0.04).abs() < 0.015, "type {ty}: {}", frac(ty));
        }
    }

    #[test]
    fn stock_level_mix_is_ten_to_one() {
        let db = Database::open(ssi_core::Options::default());
        let workload = TpccWorkload::setup(
            &db,
            TpccConfig::new(ScaleFactor::test_scale(1)).with_stock_level_mix(),
        );
        let mut rng = WorkloadRng::new(2);
        let mut slev = 0;
        let mut newo = 0;
        for _ in 0..11_000 {
            match workload.pick_transaction(&mut rng) {
                TXN_STOCK_LEVEL => slev += 1,
                TXN_NEW_ORDER => newo += 1,
                other => panic!("unexpected type {other} in stock-level mix"),
            }
        }
        let ratio = slev as f64 / newo as f64;
        assert!((8.0..12.5).contains(&ratio), "ratio {ratio}");
    }
}
