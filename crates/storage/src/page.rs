//! Key-to-page mapping used to emulate Berkeley DB's page-granularity
//! locking and versioning (Sec. 4.2 of the thesis).
//!
//! Berkeley DB acquires locks on whole database pages; two transactions
//! touching *different* rows conflict whenever the rows happen to share a
//! page. The thesis sizes its SmallBank experiments in pages ("the savings
//! and checking tables both consisted of approximately 100 leaf pages", Sec.
//! 6.1.2) and attributes a measurable rate of false positives to this
//! coarseness (Sec. 6.1.5).
//!
//! We reproduce the effect by hashing keys into a configurable number of
//! pages. The statistical behaviour that matters for the evaluation — the
//! probability that two independently chosen rows collide on a lock — is the
//! same as for a real B-tree page assignment with the same page count, while
//! the implementation stays independent of physical storage layout. This is
//! the substitution documented in DESIGN.md.

/// Maps keys to page numbers.
#[derive(Clone, Debug)]
pub struct PageMap {
    pages: u64,
}

impl PageMap {
    /// Creates a page map with the given number of pages (minimum 1).
    pub fn new(pages: u64) -> Self {
        PageMap {
            pages: pages.max(1),
        }
    }

    /// Number of pages keys are spread over.
    pub fn page_count(&self) -> u64 {
        self.pages
    }

    /// Page number for a key (stable FNV-1a hash, independent of platform).
    pub fn page_of(&self, key: &[u8]) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        for &b in key {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
        h % self.pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_in_range_and_stable() {
        let map = PageMap::new(100);
        for i in 0u32..1000 {
            let key = i.to_be_bytes();
            let p = map.page_of(&key);
            assert!(p < 100);
            assert_eq!(p, map.page_of(&key), "page assignment must be stable");
        }
    }

    #[test]
    fn single_page_map_collapses_everything() {
        let map = PageMap::new(1);
        assert_eq!(map.page_of(b"a"), 0);
        assert_eq!(map.page_of(b"zzz"), 0);
        assert_eq!(map.page_count(), 1);
    }

    #[test]
    fn zero_pages_is_clamped() {
        let map = PageMap::new(0);
        assert_eq!(map.page_count(), 1);
    }

    #[test]
    fn keys_spread_over_pages() {
        let map = PageMap::new(100);
        let mut used = std::collections::HashSet::new();
        for i in 0u32..10_000 {
            used.insert(map.page_of(&i.to_be_bytes()));
        }
        // With 10k keys over 100 pages essentially every page must be hit.
        assert!(used.len() >= 95, "only {} pages used", used.len());
    }

    #[test]
    fn collision_probability_matches_page_count() {
        // The property the Berkeley DB experiments rely on: the chance that
        // two random keys share a page is ~1/pages.
        let map = PageMap::new(100);
        let keys: Vec<u64> = (0..400u64)
            .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .collect();
        let pages: Vec<u64> = keys.iter().map(|k| map.page_of(&k.to_be_bytes())).collect();
        let mut collisions = 0u64;
        let mut pairs = 0u64;
        for i in 0..pages.len() {
            for j in (i + 1)..pages.len() {
                pairs += 1;
                if pages[i] == pages[j] {
                    collisions += 1;
                }
            }
        }
        let rate = collisions as f64 / pairs as f64;
        assert!(rate > 0.005 && rate < 0.02, "collision rate {rate}");
    }
}
