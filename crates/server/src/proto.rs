//! Wire protocol: length-framed binary requests and responses.
//!
//! Every message on the wire is one *frame*: a little-endian `u32` payload
//! length followed by exactly that many payload bytes. The length prefix is
//! bounds-checked against the receiver's configured cap before any
//! allocation, and both sides read/write frames with full-length loops
//! (`read_exact`/`write_all`), so short reads and writes can never desync
//! the stream — a frame either arrives whole or the connection errors.
//!
//! The payload formats live in [`Request`] and [`Response`]; see the crate
//! docs for the field-by-field layout. All integers are little-endian;
//! table names are length-prefixed with a `u16`, keys/values with a `u32`.

use std::io::{self, Read, Write};
use std::ops::Bound;

use ssi_common::IsolationLevel;

/// Default frame-size cap (4 MiB) — large enough for a fat scan response,
/// small enough that a hostile length prefix cannot balloon allocation.
pub const DEFAULT_MAX_FRAME_BYTES: u32 = 4 << 20;

/// Transaction-handle value meaning "no interactive transaction": the
/// request runs in its own one-shot transaction that commits (or rolls
/// back) before the response is written.
pub const AUTOCOMMIT: u64 = 0;

// Request opcodes.
const OP_BEGIN: u8 = 0x01;
const OP_GET: u8 = 0x02;
const OP_PUT: u8 = 0x03;
const OP_DELETE: u8 = 0x04;
const OP_SCAN: u8 = 0x05;
const OP_COMMIT: u8 = 0x06;
const OP_ROLLBACK: u8 = 0x07;
const OP_CREATE_TABLE: u8 = 0x08;
const OP_METRICS: u8 = 0x09;
const OP_PING: u8 = 0x0a;
const OP_CREATE_INDEX: u8 = 0x0b;
const OP_INDEX_SCAN: u8 = 0x0c;

// Response status codes. 0 is success; everything else is a typed error.
const ST_OK: u8 = 0;

/// Typed error classes a response can carry. The client SDK surfaces these
/// so callers can distinguish a retryable abort from a catalog mistake or a
/// shedding server without parsing message strings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// Concurrency-control abort (write conflict, SSI unsafe, deadlock
    /// victim, dependency cascade…). Retry in a fresh transaction.
    Aborted = 1,
    /// The named transaction handle is unknown, already committed, or
    /// already rolled back.
    TxnClosed = 2,
    /// No such table.
    NoSuchTable = 3,
    /// Table already exists.
    TableExists = 4,
    /// A lock wait exceeded the engine's configured limit.
    LockTimeout = 5,
    /// Engine-internal invariant violation.
    Internal = 6,
    /// Durability (WAL/checkpoint) failure; the commit may be applied in
    /// memory but its persistence is uncertain.
    Durability = 7,
    /// The database is degraded (read-only): writes fail fast.
    Degraded = 8,
    /// The database/server is closed or draining; no new work is accepted.
    Closed = 9,
    /// Admission control shed this request: the commit pipeline is
    /// saturated. Back off and retry.
    Busy = 10,
    /// The request frame was structurally invalid (unknown opcode,
    /// truncated fields).
    BadRequest = 11,
    /// The frame's length prefix exceeded the server's cap. The connection
    /// is closed after this response — the stream cannot be trusted.
    FrameTooLarge = 12,
}

impl ErrorCode {
    fn from_u8(code: u8) -> Option<ErrorCode> {
        Some(match code {
            1 => ErrorCode::Aborted,
            2 => ErrorCode::TxnClosed,
            3 => ErrorCode::NoSuchTable,
            4 => ErrorCode::TableExists,
            5 => ErrorCode::LockTimeout,
            6 => ErrorCode::Internal,
            7 => ErrorCode::Durability,
            8 => ErrorCode::Degraded,
            9 => ErrorCode::Closed,
            10 => ErrorCode::Busy,
            11 => ErrorCode::BadRequest,
            12 => ErrorCode::FrameTooLarge,
            _ => return None,
        })
    }

    /// True if the failed operation may be retried (fresh transaction for
    /// aborts, after backoff for busy).
    pub fn is_retryable(self) -> bool {
        matches!(
            self,
            ErrorCode::Aborted | ErrorCode::LockTimeout | ErrorCode::Busy
        )
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ErrorCode::Aborted => "aborted",
            ErrorCode::TxnClosed => "txn-closed",
            ErrorCode::NoSuchTable => "no-such-table",
            ErrorCode::TableExists => "table-exists",
            ErrorCode::LockTimeout => "lock-timeout",
            ErrorCode::Internal => "internal",
            ErrorCode::Durability => "durability",
            ErrorCode::Degraded => "degraded",
            ErrorCode::Closed => "closed",
            ErrorCode::Busy => "busy",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::FrameTooLarge => "frame-too-large",
        };
        f.write_str(s)
    }
}

/// Isolation-level wire encoding; `0xff` selects the server's default.
pub const ISO_DEFAULT: u8 = 0xff;

fn iso_to_wire(level: Option<IsolationLevel>) -> u8 {
    match level {
        None => ISO_DEFAULT,
        Some(IsolationLevel::ReadCommitted) => 0,
        Some(IsolationLevel::SnapshotIsolation) => 1,
        Some(IsolationLevel::StrictTwoPhaseLocking) => 2,
        Some(IsolationLevel::SerializableSnapshotIsolation) => 3,
    }
}

fn iso_from_wire(byte: u8) -> Result<Option<IsolationLevel>, DecodeError> {
    Ok(match byte {
        ISO_DEFAULT => None,
        0 => Some(IsolationLevel::ReadCommitted),
        1 => Some(IsolationLevel::SnapshotIsolation),
        2 => Some(IsolationLevel::StrictTwoPhaseLocking),
        3 => Some(IsolationLevel::SerializableSnapshotIsolation),
        _ => return Err(DecodeError("unknown isolation level")),
    })
}

/// A request frame payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Open an interactive transaction; the response carries the handle
    /// that names it on subsequent requests. `isolation: None` uses the
    /// server's default; `read_only` declares the transaction read-only
    /// (the engine may run it at plain SI per Sec. 3.8 configuration, in
    /// which case the isolation byte is advisory).
    Begin {
        isolation: Option<IsolationLevel>,
        read_only: bool,
    },
    /// Point read. `handle` is a [`Begin`](Request::Begin) handle or
    /// [`AUTOCOMMIT`].
    Get {
        handle: u64,
        table: String,
        key: Vec<u8>,
    },
    Put {
        handle: u64,
        table: String,
        key: Vec<u8>,
        value: Vec<u8>,
    },
    Delete {
        handle: u64,
        table: String,
        key: Vec<u8>,
    },
    /// Range scan; bounds follow [`std::ops::Bound`], `limit == 0` means
    /// unlimited (subject to the response-frame cap).
    Scan {
        handle: u64,
        table: String,
        lower: Bound<Vec<u8>>,
        upper: Bound<Vec<u8>>,
        limit: u32,
    },
    Commit {
        handle: u64,
    },
    Rollback {
        handle: u64,
    },
    CreateTable {
        name: String,
    },
    /// Create a secondary index named `name` over `table`. `spec` is the
    /// [`ssi_storage::IndexKeySpec`] wire encoding (the same bytes the WAL
    /// logs); the server rejects undecodable specs as [`BadRequest`]
    /// (ErrorCode::BadRequest). Like `CreateTable`, runs outside any
    /// transaction.
    CreateIndex {
        name: String,
        table: String,
        unique: bool,
        spec: Vec<u8>,
    },
    /// Range scan over a secondary index; bounds are *raw index keys*
    /// (not entry bytes). Returns `(primary key, row value)` pairs in
    /// `(index key, primary key)` order. `limit == 0` means unlimited.
    IndexScan {
        handle: u64,
        index: String,
        lower: Bound<Vec<u8>>,
        upper: Bound<Vec<u8>>,
        limit: u32,
    },
    /// Prometheus-style metrics exposition (engine + server counters).
    Metrics,
    /// Liveness probe.
    Ping,
}

/// A response frame payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Success with no payload (put/delete/commit/rollback/create/ping).
    Ok,
    /// Success of a `Begin`: the transaction handle.
    Handle(u64),
    /// Success of a `Get`.
    Value(Option<Vec<u8>>),
    /// Success of a `Scan`: rows in key order.
    Rows(Vec<(Vec<u8>, Vec<u8>)>),
    /// Success of a `Metrics` request.
    Text(String),
    /// Typed failure.
    Err(ErrorCode, String),
}

/// Structural decode failure: the frame arrived whole (framing is intact)
/// but its payload is not a valid message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecodeError(pub &'static str);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed frame: {}", self.0)
    }
}

// ---------------------------------------------------------------------------
// primitive encode/decode

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= u16::MAX as usize, "table names are short");
    put_u16(out, s.len() as u16);
    out.extend_from_slice(s.as_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

fn put_bound(out: &mut Vec<u8>, b: &Bound<Vec<u8>>) {
    match b {
        Bound::Unbounded => out.push(0),
        Bound::Included(k) => {
            out.push(1);
            put_bytes(out, k);
        }
        Bound::Excluded(k) => {
            out.push(2);
            put_bytes(out, k);
        }
    }
}

/// Payload reader that checks every length against the remaining bytes, so
/// a hostile length field yields a typed decode error instead of a panic or
/// an oversized allocation.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.buf.len() - self.pos < n {
            return Err(DecodeError("field extends past frame end"));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, DecodeError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError("table name is not UTF-8"))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, DecodeError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn bound(&mut self) -> Result<Bound<Vec<u8>>, DecodeError> {
        Ok(match self.u8()? {
            0 => Bound::Unbounded,
            1 => Bound::Included(self.bytes()?),
            2 => Bound::Excluded(self.bytes()?),
            _ => return Err(DecodeError("unknown bound tag")),
        })
    }

    fn finish(self) -> Result<(), DecodeError> {
        if self.pos != self.buf.len() {
            return Err(DecodeError("trailing bytes after message"));
        }
        Ok(())
    }
}

impl Request {
    /// Encodes the request into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match self {
            Request::Begin {
                isolation,
                read_only,
            } => {
                out.push(OP_BEGIN);
                out.push(iso_to_wire(*isolation));
                out.push(*read_only as u8);
            }
            Request::Get { handle, table, key } => {
                out.push(OP_GET);
                put_u64(&mut out, *handle);
                put_str(&mut out, table);
                put_bytes(&mut out, key);
            }
            Request::Put {
                handle,
                table,
                key,
                value,
            } => {
                out.push(OP_PUT);
                put_u64(&mut out, *handle);
                put_str(&mut out, table);
                put_bytes(&mut out, key);
                put_bytes(&mut out, value);
            }
            Request::Delete { handle, table, key } => {
                out.push(OP_DELETE);
                put_u64(&mut out, *handle);
                put_str(&mut out, table);
                put_bytes(&mut out, key);
            }
            Request::Scan {
                handle,
                table,
                lower,
                upper,
                limit,
            } => {
                out.push(OP_SCAN);
                put_u64(&mut out, *handle);
                put_str(&mut out, table);
                put_bound(&mut out, lower);
                put_bound(&mut out, upper);
                put_u32(&mut out, *limit);
            }
            Request::Commit { handle } => {
                out.push(OP_COMMIT);
                put_u64(&mut out, *handle);
            }
            Request::Rollback { handle } => {
                out.push(OP_ROLLBACK);
                put_u64(&mut out, *handle);
            }
            Request::CreateTable { name } => {
                out.push(OP_CREATE_TABLE);
                put_str(&mut out, name);
            }
            Request::CreateIndex {
                name,
                table,
                unique,
                spec,
            } => {
                out.push(OP_CREATE_INDEX);
                put_str(&mut out, name);
                put_str(&mut out, table);
                out.push(*unique as u8);
                put_bytes(&mut out, spec);
            }
            Request::IndexScan {
                handle,
                index,
                lower,
                upper,
                limit,
            } => {
                out.push(OP_INDEX_SCAN);
                put_u64(&mut out, *handle);
                put_str(&mut out, index);
                put_bound(&mut out, lower);
                put_bound(&mut out, upper);
                put_u32(&mut out, *limit);
            }
            Request::Metrics => out.push(OP_METRICS),
            Request::Ping => out.push(OP_PING),
        }
        out
    }

    /// Decodes a frame payload, rejecting structurally invalid input with a
    /// typed error (never panicking, never allocating past the frame).
    pub fn decode(buf: &[u8]) -> Result<Request, DecodeError> {
        let mut r = Reader::new(buf);
        let req = match r.u8()? {
            OP_BEGIN => Request::Begin {
                isolation: iso_from_wire(r.u8()?)?,
                read_only: r.u8()? != 0,
            },
            OP_GET => Request::Get {
                handle: r.u64()?,
                table: r.str()?,
                key: r.bytes()?,
            },
            OP_PUT => Request::Put {
                handle: r.u64()?,
                table: r.str()?,
                key: r.bytes()?,
                value: r.bytes()?,
            },
            OP_DELETE => Request::Delete {
                handle: r.u64()?,
                table: r.str()?,
                key: r.bytes()?,
            },
            OP_SCAN => Request::Scan {
                handle: r.u64()?,
                table: r.str()?,
                lower: r.bound()?,
                upper: r.bound()?,
                limit: r.u32()?,
            },
            OP_COMMIT => Request::Commit { handle: r.u64()? },
            OP_ROLLBACK => Request::Rollback { handle: r.u64()? },
            OP_CREATE_TABLE => Request::CreateTable { name: r.str()? },
            OP_CREATE_INDEX => Request::CreateIndex {
                name: r.str()?,
                table: r.str()?,
                unique: match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(DecodeError("unknown unique flag")),
                },
                spec: r.bytes()?,
            },
            OP_INDEX_SCAN => Request::IndexScan {
                handle: r.u64()?,
                index: r.str()?,
                lower: r.bound()?,
                upper: r.bound()?,
                limit: r.u32()?,
            },
            OP_METRICS => Request::Metrics,
            OP_PING => Request::Ping,
            _ => return Err(DecodeError("unknown opcode")),
        };
        r.finish()?;
        Ok(req)
    }
}

// Response payload tags (first byte is the status; ST_OK is followed by a
// kind tag so the payload is self-describing under pipelining).
const OK_EMPTY: u8 = 0;
const OK_HANDLE: u8 = 1;
const OK_VALUE: u8 = 2;
const OK_ROWS: u8 = 3;
const OK_TEXT: u8 = 4;

impl Response {
    /// Encodes the response into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        match self {
            Response::Ok => {
                out.push(ST_OK);
                out.push(OK_EMPTY);
            }
            Response::Handle(h) => {
                out.push(ST_OK);
                out.push(OK_HANDLE);
                put_u64(&mut out, *h);
            }
            Response::Value(v) => {
                out.push(ST_OK);
                out.push(OK_VALUE);
                match v {
                    None => out.push(0),
                    Some(v) => {
                        out.push(1);
                        put_bytes(&mut out, v);
                    }
                }
            }
            Response::Rows(rows) => {
                out.push(ST_OK);
                out.push(OK_ROWS);
                put_u32(&mut out, rows.len() as u32);
                for (k, v) in rows {
                    put_bytes(&mut out, k);
                    put_bytes(&mut out, v);
                }
            }
            Response::Text(s) => {
                out.push(ST_OK);
                out.push(OK_TEXT);
                put_bytes(&mut out, s.as_bytes());
            }
            Response::Err(code, msg) => {
                out.push(*code as u8);
                put_bytes(&mut out, msg.as_bytes());
            }
        }
        out
    }

    /// Decodes a frame payload.
    pub fn decode(buf: &[u8]) -> Result<Response, DecodeError> {
        let mut r = Reader::new(buf);
        let status = r.u8()?;
        let resp = if status == ST_OK {
            match r.u8()? {
                OK_EMPTY => Response::Ok,
                OK_HANDLE => Response::Handle(r.u64()?),
                OK_VALUE => match r.u8()? {
                    0 => Response::Value(None),
                    1 => Response::Value(Some(r.bytes()?)),
                    _ => return Err(DecodeError("unknown value presence tag")),
                },
                OK_ROWS => {
                    let n = r.u32()? as usize;
                    let mut rows = Vec::with_capacity(n.min(1024));
                    for _ in 0..n {
                        rows.push((r.bytes()?, r.bytes()?));
                    }
                    Response::Rows(rows)
                }
                OK_TEXT => {
                    let bytes = r.bytes()?;
                    Response::Text(
                        String::from_utf8(bytes).map_err(|_| DecodeError("text is not UTF-8"))?,
                    )
                }
                _ => return Err(DecodeError("unknown ok tag")),
            }
        } else {
            let code =
                ErrorCode::from_u8(status).ok_or(DecodeError("unknown error status code"))?;
            let msg = r.bytes()?;
            Response::Err(
                code,
                String::from_utf8(msg).map_err(|_| DecodeError("error message is not UTF-8"))?,
            )
        };
        r.finish()?;
        Ok(resp)
    }
}

// ---------------------------------------------------------------------------
// frame I/O

/// Failure reading a frame.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed (or closed mid-frame).
    Io(io::Error),
    /// The length prefix exceeded the receiver's cap. Nothing past the
    /// prefix has been consumed; the stream is no longer trustworthy.
    TooLarge { len: u32, max: u32 },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o: {e}"),
            FrameError::TooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one frame (length prefix + payload), flushing nothing — callers
/// batch pipelined frames and flush once.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame payload exceeds u32"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)
}

/// Reads one frame. Returns `Ok(None)` on a clean EOF at a frame boundary
/// (orderly disconnect); an EOF mid-frame is an error. The length prefix is
/// validated against `max` *before* any payload allocation.
pub fn read_frame(r: &mut impl Read, max: u32) -> Result<Option<Vec<u8>>, FrameError> {
    let mut len_buf = [0u8; 4];
    // Hand-rolled first read so a clean EOF before any byte is
    // distinguishable from a torn prefix.
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame length prefix",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len > max {
        return Err(FrameError::TooLarge { len, max });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        let encoded = req.encode();
        assert_eq!(Request::decode(&encoded).unwrap(), req);
    }

    fn roundtrip_resp(resp: Response) {
        let encoded = resp.encode();
        assert_eq!(Response::decode(&encoded).unwrap(), resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(Request::Begin {
            isolation: None,
            read_only: false,
        });
        roundtrip_req(Request::Begin {
            isolation: Some(IsolationLevel::SnapshotIsolation),
            read_only: true,
        });
        roundtrip_req(Request::Get {
            handle: 7,
            table: "accounts".into(),
            key: b"alice".to_vec(),
        });
        roundtrip_req(Request::Put {
            handle: AUTOCOMMIT,
            table: "t".into(),
            key: vec![0, 1, 2],
            value: vec![],
        });
        roundtrip_req(Request::Delete {
            handle: 1,
            table: "t".into(),
            key: b"k".to_vec(),
        });
        roundtrip_req(Request::Scan {
            handle: 2,
            table: "t".into(),
            lower: Bound::Included(b"a".to_vec()),
            upper: Bound::Excluded(b"z".to_vec()),
            limit: 100,
        });
        roundtrip_req(Request::Scan {
            handle: 2,
            table: "t".into(),
            lower: Bound::Unbounded,
            upper: Bound::Unbounded,
            limit: 0,
        });
        roundtrip_req(Request::Commit { handle: 3 });
        roundtrip_req(Request::Rollback { handle: 4 });
        roundtrip_req(Request::CreateTable { name: "x".into() });
        roundtrip_req(Request::CreateIndex {
            name: "accounts_by_owner".into(),
            table: "accounts".into(),
            unique: true,
            spec: vec![0x01, 0x00, 0xff],
        });
        roundtrip_req(Request::IndexScan {
            handle: 5,
            index: "accounts_by_owner".into(),
            lower: Bound::Included(b"a".to_vec()),
            upper: Bound::Unbounded,
            limit: 10,
        });
        roundtrip_req(Request::Metrics);
        roundtrip_req(Request::Ping);
    }

    #[test]
    fn create_index_rejects_bad_unique_flag() {
        let mut buf = Request::CreateIndex {
            name: "i".into(),
            table: "t".into(),
            unique: false,
            spec: vec![],
        }
        .encode();
        // name "i": 2+1 bytes; table "t": 2+1 bytes; unique flag follows.
        let flag_at = 1 + 3 + 3;
        assert_eq!(buf[flag_at], 0);
        buf[flag_at] = 2;
        assert!(Request::decode(&buf).is_err());
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_resp(Response::Ok);
        roundtrip_resp(Response::Handle(42));
        roundtrip_resp(Response::Value(None));
        roundtrip_resp(Response::Value(Some(b"v".to_vec())));
        roundtrip_resp(Response::Rows(vec![
            (b"a".to_vec(), b"1".to_vec()),
            (b"b".to_vec(), vec![]),
        ]));
        roundtrip_resp(Response::Text("ssi_up 1\n".into()));
        roundtrip_resp(Response::Err(ErrorCode::Busy, "shed".into()));
    }

    #[test]
    fn decode_rejects_garbage_without_panicking() {
        // Unknown opcode.
        assert!(Request::decode(&[0x7f]).is_err());
        // Empty frame.
        assert!(Request::decode(&[]).is_err());
        // Length field pointing past the end of the frame.
        let mut buf = vec![OP_GET];
        buf.extend_from_slice(&7u64.to_le_bytes());
        buf.extend_from_slice(&1000u16.to_le_bytes()); // table len 1000, no bytes
        assert!(Request::decode(&buf).is_err());
        // Trailing junk after a valid message.
        let mut buf = Request::Ping.encode();
        buf.push(0xaa);
        assert!(Request::decode(&buf).is_err());
        // Random bytes: must never panic, any Ok must re-encode cleanly.
        let mut state = 0x2545f4914f6cdd1du64;
        for len in 0..64usize {
            let mut buf = vec![0u8; len];
            for b in &mut buf {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                *b = state as u8;
            }
            let _ = Request::decode(&buf);
            let _ = Response::decode(&buf);
        }
    }

    #[test]
    fn frames_roundtrip_and_enforce_the_cap() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cursor, 1024).unwrap().as_deref(),
            Some(b"hello".as_slice())
        );
        assert_eq!(
            read_frame(&mut cursor, 1024).unwrap().as_deref(),
            Some(b"".as_slice())
        );
        assert!(read_frame(&mut cursor, 1024).unwrap().is_none());

        // A hostile length prefix is rejected before allocation.
        let huge = (u32::MAX).to_le_bytes();
        let mut cursor = io::Cursor::new(huge.to_vec());
        match read_frame(&mut cursor, 1024) {
            Err(FrameError::TooLarge { len, max }) => {
                assert_eq!(len, u32::MAX);
                assert_eq!(max, 1024);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }

        // EOF inside the prefix is an error, not a clean end.
        let mut cursor = io::Cursor::new(vec![1, 0]);
        assert!(matches!(
            read_frame(&mut cursor, 1024),
            Err(FrameError::Io(_))
        ));
    }
}
