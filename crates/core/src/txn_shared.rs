//! Shared per-transaction state.
//!
//! The Serializable SI algorithm needs to consult and update the state of
//! *other* transactions — possibly transactions that have already committed
//! (the "suspended" transactions of Sec. 3.3). [`TxnShared`] is the
//! reference-counted record that outlives the client-side
//! [`crate::Transaction`] handle for exactly as long as the algorithm needs
//! it: until no concurrent transaction remains.
//!
//! # The state word
//!
//! Everything the conflict-marking and commit paths need to read or update
//! atomically about one transaction is packed into a single `AtomicU64`
//! (the *state word*), so that the paper's `atomic begin/end` blocks can be
//! implemented as CAS loops instead of a global mutex:
//!
//! ```text
//!  63    60  59  58  57 56  55                                        0
//!  +--+---+---+---+------+------------------------------------------+
//!  |unused|out| in|doomed|status|               commit_ts            |
//!  +--+---+---+---+------+------------------------------------------+
//! ```
//!
//! * bits 0–55: the commit timestamp (0 while uncommitted);
//! * bits 56–57: lifecycle status (0 active, 1 committed, 2 aborted);
//! * bit 58: doomed — selected as a victim by another thread;
//! * bit 59: an incoming rw-conflict has been recorded;
//! * bit 60: an outgoing rw-conflict has been recorded.
//!
//! Because status, commit timestamp and both conflict flags live in one
//! word, checks like "has this transaction committed with an outgoing
//! conflict?" (Fig. 3.3) or "is this transaction a pivot?" (both flags set)
//! are single atomic loads, and state transitions that must be conditional
//! on them — most importantly *commit*, which under the basic variant must
//! fail iff the word shows `doomed` or `in && out` at the instant the
//! status changes — are single compare-and-swap loops.
//!
//! The *identities* of conflict neighbours (the enhanced variant's
//! [`ConflictEdge::Txn`] references, Sec. 3.6) cannot fit in the word; they
//! stay in a per-transaction mutex ([`TxnShared::conflicts`]). That mutex is
//! only ever taken by the enhanced code paths, which lock at most the two
//! participants of one conflict in transaction-id order (see
//! [`crate::ssi`]); the flag bits in the state word are kept in sync while
//! the mutex is held, so lock-free readers (commit suspension, statistics)
//! always see correct flags under both variants.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use ssi_common::{IsolationLevel, Timestamp, TxnId, TS_ZERO};

/// Width of the commit-timestamp field in the state word.
const WORD_TS_BITS: u32 = 56;
/// Mask of the commit-timestamp field.
const WORD_TS_MASK: u64 = (1 << WORD_TS_BITS) - 1;
/// Shift of the two status bits.
const WORD_STATUS_SHIFT: u32 = 56;
/// Mask of the status field (in place).
const WORD_STATUS_MASK: u64 = 0b11 << WORD_STATUS_SHIFT;
/// Doomed bit: selected as an abort victim by another thread.
pub(crate) const WORD_DOOMED: u64 = 1 << 58;
/// Incoming-conflict flag bit.
pub(crate) const WORD_IN: u64 = 1 << 59;
/// Outgoing-conflict flag bit.
pub(crate) const WORD_OUT: u64 = 1 << 60;

const STATUS_ACTIVE: u64 = 0;
const STATUS_COMMITTED: u64 = 1;
const STATUS_ABORTED: u64 = 2;

/// Lifecycle status of a transaction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TxnStatus {
    /// Running; operations are being executed.
    Active,
    /// Successfully committed.
    Committed,
    /// Rolled back (by the application or by the engine).
    Aborted,
}

/// Decodes the status field of a state word.
pub(crate) fn word_status(word: u64) -> TxnStatus {
    match (word & WORD_STATUS_MASK) >> WORD_STATUS_SHIFT {
        STATUS_ACTIVE => TxnStatus::Active,
        STATUS_COMMITTED => TxnStatus::Committed,
        _ => TxnStatus::Aborted,
    }
}

/// Decodes the commit timestamp of a state word (`None` while uncommitted).
pub(crate) fn word_commit_ts(word: u64) -> Option<Timestamp> {
    match word & WORD_TS_MASK {
        TS_ZERO => None,
        ts => Some(ts),
    }
}

/// Endpoint of a recorded rw-conflict edge (Sec. 3.6).
///
/// The basic algorithm only needs a boolean per direction (kept in the
/// state word); the enhanced algorithm keeps a reference to the single
/// conflicting transaction, or a self-loop marker once more than one
/// conflict has been seen in the same direction.
#[derive(Clone, Debug, Default)]
pub enum ConflictEdge {
    /// No conflict recorded in this direction.
    #[default]
    None,
    /// Exactly one conflict, with the referenced transaction.
    Txn(Arc<TxnShared>),
    /// More than one conflict in this direction (or the basic variant, which
    /// does not track identities). Semantically a self-loop in the MVSG.
    SelfLoop,
}

impl ConflictEdge {
    /// True if any conflict has been recorded in this direction.
    pub fn is_set(&self) -> bool {
        !matches!(self, ConflictEdge::None)
    }

    /// Commit-time bound of this edge when it is `owner`'s *outgoing*
    /// conflict, for the ordering test of Figs. 3.9/3.10 (`commit-time(out)
    /// <= commit-time(in)` means the structure may be dangerous).
    ///
    /// The bound must never over-estimate: a known single neighbour that is
    /// still running will commit later than anything already committed
    /// ("infinity"), but a self-loop stands for *several* (or forgotten)
    /// neighbours, any of which may have committed arbitrarily early, so the
    /// conservative bound is the owner's own commit time — or zero while the
    /// owner is still running.
    pub fn outgoing_commit_bound(&self, owner: &TxnShared) -> Timestamp {
        match self {
            ConflictEdge::None => Timestamp::MAX,
            ConflictEdge::SelfLoop => owner.commit_ts().unwrap_or(TS_ZERO),
            ConflictEdge::Txn(other) => other.commit_ts().unwrap_or(Timestamp::MAX),
        }
    }

    /// Commit-time bound of this edge when it is `owner`'s *incoming*
    /// conflict. The bound must never under-estimate, so unknown or running
    /// neighbours count as "infinity".
    pub fn incoming_commit_bound(&self, owner: &TxnShared) -> Timestamp {
        match self {
            ConflictEdge::None => TS_ZERO,
            ConflictEdge::SelfLoop => owner.commit_ts().unwrap_or(Timestamp::MAX),
            ConflictEdge::Txn(other) => other.commit_ts().unwrap_or(Timestamp::MAX),
        }
    }
}

/// Conflict-neighbour identities of one transaction (enhanced variant
/// only), protected by this transaction's conflict mutex. The boolean
/// "is an edge present?" view lives in the state word; this structure adds
/// *who* the neighbour is so commit-time ordering can be checked.
#[derive(Default, Debug)]
pub struct ConflictState {
    /// Some concurrent transaction has an rw-dependency *into* this one
    /// (someone read an item this transaction overwrote).
    pub in_edge: ConflictEdge,
    /// This transaction has an rw-dependency *out* to a concurrent
    /// transaction (it read an item that someone else overwrote).
    pub out_edge: ConflictEdge,
}

/// Shared, reference-counted transaction record.
#[derive(Debug)]
pub struct TxnShared {
    id: TxnId,
    isolation: IsolationLevel,
    begin_ts: AtomicU64,
    /// The packed state word: commit timestamp, status, doomed flag and
    /// both conflict flags. See the module docs for the layout.
    state: AtomicU64,
    /// rw-conflict neighbour identities for the enhanced variant. The
    /// fine-grained lock ordering rule (see [`crate::ssi`]): when two
    /// transactions' conflict mutexes must be held together, they are
    /// acquired in increasing transaction-id order.
    pub(crate) conflicts: Mutex<ConflictState>,
}

impl TxnShared {
    /// Creates the shared record for a new active transaction.
    pub fn new(id: TxnId, isolation: IsolationLevel) -> Self {
        TxnShared {
            id,
            isolation,
            begin_ts: AtomicU64::new(TS_ZERO),
            state: AtomicU64::new(0),
            conflicts: Mutex::new(ConflictState::default()),
        }
    }

    /// Transaction id.
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// Isolation level the transaction runs at.
    pub fn isolation(&self) -> IsolationLevel {
        self.isolation
    }

    /// Begin timestamp (snapshot), once assigned.
    pub fn begin_ts(&self) -> Option<Timestamp> {
        match self.begin_ts.load(Ordering::Acquire) {
            TS_ZERO => None,
            ts => Some(ts),
        }
    }

    /// Assigns the begin timestamp. May be called once; later calls are
    /// ignored (the snapshot of a transaction never moves).
    pub fn set_begin_ts(&self, ts: Timestamp) {
        let _ = self
            .begin_ts
            .compare_exchange(TS_ZERO, ts, Ordering::AcqRel, Ordering::Acquire);
    }

    /// Current value of the state word.
    #[inline]
    pub(crate) fn load_word(&self) -> u64 {
        self.state.load(Ordering::Acquire)
    }

    /// Single CAS on the state word; on failure returns the current word.
    #[inline]
    pub(crate) fn cas_word(&self, current: u64, new: u64) -> Result<u64, u64> {
        self.state
            .compare_exchange_weak(current, new, Ordering::AcqRel, Ordering::Acquire)
    }

    /// Commit timestamp, once committed.
    pub fn commit_ts(&self) -> Option<Timestamp> {
        word_commit_ts(self.load_word())
    }

    /// Current status.
    pub fn status(&self) -> TxnStatus {
        word_status(self.load_word())
    }

    /// True once committed.
    pub fn is_committed(&self) -> bool {
        self.status() == TxnStatus::Committed
    }

    /// True while active.
    pub fn is_active(&self) -> bool {
        self.status() == TxnStatus::Active
    }

    /// Marks the transaction committed at `ts` unconditionally (used by
    /// tests and by paths that have already performed their commit checks
    /// under this transaction's conflict mutex). Preserves the conflict
    /// flags.
    pub fn mark_committed(&self, ts: Timestamp) {
        debug_assert!(ts <= WORD_TS_MASK, "commit timestamp overflows the word");
        self.state
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |w| {
                Some(
                    (w & !(WORD_TS_MASK | WORD_STATUS_MASK))
                        | (ts & WORD_TS_MASK)
                        | (STATUS_COMMITTED << WORD_STATUS_SHIFT),
                )
            })
            .ok();
    }

    /// Atomically commits at `ts` *iff* the word passes the commit check at
    /// the instant of the transition: not doomed and — when `check_pivot`
    /// is set (the basic variant's Fig. 3.2 test) — not carrying both
    /// conflict flags. Returns the offending word on failure.
    ///
    /// This is the heart of the lock-free commit: any concurrent
    /// `mark_conflict` that dooms this transaction or completes a pivot
    /// races with the CAS, and exactly one of the two observes the other.
    pub(crate) fn try_commit_word(&self, ts: Timestamp, check_pivot: bool) -> Result<(), u64> {
        debug_assert!(ts <= WORD_TS_MASK, "commit timestamp overflows the word");
        let mut current = self.load_word();
        loop {
            if current & WORD_DOOMED != 0 {
                return Err(current);
            }
            if check_pivot && current & WORD_IN != 0 && current & WORD_OUT != 0 {
                return Err(current);
            }
            debug_assert_eq!(word_status(current), TxnStatus::Active);
            let new = (current & !(WORD_TS_MASK | WORD_STATUS_MASK))
                | (ts & WORD_TS_MASK)
                | (STATUS_COMMITTED << WORD_STATUS_SHIFT);
            match self.cas_word(current, new) {
                Ok(_) => return Ok(()),
                Err(w) => current = w,
            }
        }
    }

    /// Marks the transaction aborted.
    pub fn mark_aborted(&self) {
        self.state
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |w| {
                Some((w & !WORD_STATUS_MASK) | (STATUS_ABORTED << WORD_STATUS_SHIFT))
            })
            .ok();
    }

    /// Flags the transaction as a victim that must abort at its next
    /// operation (used by victim selection when the pivot is not the caller,
    /// Sec. 3.7.1/3.7.2).
    pub fn doom(&self) {
        self.state.fetch_or(WORD_DOOMED, Ordering::AcqRel);
    }

    /// Dooms the transaction only if it is still active; returns true when
    /// the doomed flag is set (newly or already) on an active transaction.
    pub(crate) fn doom_if_active(&self) -> bool {
        let mut current = self.load_word();
        loop {
            if word_status(current) != TxnStatus::Active {
                return false;
            }
            if current & WORD_DOOMED != 0 {
                return true;
            }
            match self.cas_word(current, current | WORD_DOOMED) {
                Ok(_) => return true,
                Err(w) => current = w,
            }
        }
    }

    /// True if some other thread selected this transaction as a victim.
    pub fn is_doomed(&self) -> bool {
        self.load_word() & WORD_DOOMED != 0
    }

    /// Sets the incoming-conflict flag in the state word. Enhanced-variant
    /// callers must hold this transaction's conflict mutex.
    pub(crate) fn set_in_flag(&self) {
        self.state.fetch_or(WORD_IN, Ordering::AcqRel);
    }

    /// Sets the outgoing-conflict flag in the state word. Enhanced-variant
    /// callers must hold this transaction's conflict mutex.
    pub(crate) fn set_out_flag(&self) {
        self.state.fetch_or(WORD_OUT, Ordering::AcqRel);
    }

    /// True if this transaction's lifetime overlapped transaction `other`,
    /// i.e. the two were concurrent (Sec. 2.1): each began before the other
    /// committed (or the other has not committed).
    pub fn concurrent_with(&self, other: &TxnShared) -> bool {
        let my_begin = self.begin_ts().unwrap_or(Timestamp::MAX);
        let their_begin = other.begin_ts().unwrap_or(Timestamp::MAX);
        let my_commit = self.commit_ts().unwrap_or(Timestamp::MAX);
        let their_commit = other.commit_ts().unwrap_or(Timestamp::MAX);
        my_begin < their_commit && their_begin < my_commit
    }

    /// Clears the conflict edges and flags (called on abort and on cleanup
    /// so that mutual `Arc` references between transactions cannot form
    /// reference cycles and leak).
    pub fn clear_conflicts(&self) {
        let mut c = self.conflicts.lock();
        c.in_edge = ConflictEdge::None;
        c.out_edge = ConflictEdge::None;
        self.state
            .fetch_and(!(WORD_IN | WORD_OUT), Ordering::AcqRel);
    }

    /// Snapshot of the conflict flags `(in_set, out_set)` — a single atomic
    /// load of the state word.
    pub fn conflict_flags(&self) -> (bool, bool) {
        let w = self.load_word();
        (w & WORD_IN != 0, w & WORD_OUT != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txn(id: u64) -> TxnShared {
        TxnShared::new(TxnId(id), IsolationLevel::SerializableSnapshotIsolation)
    }

    /// Records an edge the way the enhanced variant does: identity under the
    /// mutex, flag bit in the state word.
    fn set_out(t: &TxnShared, edge: ConflictEdge) {
        t.conflicts.lock().out_edge = edge;
        t.set_out_flag();
    }

    fn set_in(t: &TxnShared, edge: ConflictEdge) {
        t.conflicts.lock().in_edge = edge;
        t.set_in_flag();
    }

    #[test]
    fn lifecycle() {
        let t = txn(1);
        assert_eq!(t.status(), TxnStatus::Active);
        assert!(t.is_active());
        assert_eq!(t.begin_ts(), None);
        t.set_begin_ts(5);
        assert_eq!(t.begin_ts(), Some(5));
        // Snapshot cannot move once assigned.
        t.set_begin_ts(9);
        assert_eq!(t.begin_ts(), Some(5));
        t.mark_committed(10);
        assert!(t.is_committed());
        assert_eq!(t.commit_ts(), Some(10));
    }

    #[test]
    fn abort_and_doom() {
        let t = txn(2);
        assert!(!t.is_doomed());
        t.doom();
        assert!(t.is_doomed());
        t.mark_aborted();
        assert_eq!(t.status(), TxnStatus::Aborted);
        assert!(!t.is_active());
    }

    #[test]
    fn try_commit_word_fails_on_doomed_or_pivot() {
        let t = txn(1);
        t.doom();
        assert!(t.try_commit_word(10, true).is_err());

        let p = txn(2);
        set_in(&p, ConflictEdge::SelfLoop);
        set_out(&p, ConflictEdge::SelfLoop);
        assert!(
            p.try_commit_word(10, true).is_err(),
            "pivot must not commit"
        );
        // Without the pivot check (enhanced variant decides separately) the
        // commit succeeds and preserves the flags.
        assert!(p.try_commit_word(10, false).is_ok());
        assert_eq!(p.commit_ts(), Some(10));
        assert_eq!(p.conflict_flags(), (true, true));
    }

    #[test]
    fn doom_if_active_respects_status() {
        let t = txn(1);
        assert!(t.doom_if_active());
        assert!(t.is_doomed());

        let c = txn(2);
        c.mark_committed(5);
        assert!(!c.doom_if_active());
        assert!(!c.is_doomed());
    }

    #[test]
    fn concurrency_overlap() {
        // a: [1, 10), b: [5, 20) — concurrent.
        let a = txn(1);
        a.set_begin_ts(1);
        a.mark_committed(10);
        let b = txn(2);
        b.set_begin_ts(5);
        b.mark_committed(20);
        assert!(a.concurrent_with(&b));
        assert!(b.concurrent_with(&a));

        // c begins after a committed — not concurrent with a.
        let c = txn(3);
        c.set_begin_ts(15);
        assert!(!a.concurrent_with(&c));
        assert!(!c.concurrent_with(&a));
        // but c is concurrent with b (b committed at 20 > 15).
        assert!(c.concurrent_with(&b));
    }

    #[test]
    fn conflict_edges_and_clearing() {
        let t = Arc::new(txn(1));
        let u = Arc::new(txn(2));
        set_out(&t, ConflictEdge::Txn(u.clone()));
        assert_eq!(t.conflict_flags(), (false, true));
        set_in(&u, ConflictEdge::SelfLoop);
        assert_eq!(u.conflict_flags(), (true, false));
        t.clear_conflicts();
        assert_eq!(t.conflict_flags(), (false, false));
        assert!(!t.conflicts.lock().out_edge.is_set());
    }

    #[test]
    fn edge_commit_time_bounds() {
        let owner = txn(1);
        let other = Arc::new(txn(2));

        // A known, still-running neighbour: it will commit later than
        // anything committed so far, regardless of direction.
        let edge = ConflictEdge::Txn(other.clone());
        assert_eq!(edge.outgoing_commit_bound(&owner), Timestamp::MAX);
        assert_eq!(edge.incoming_commit_bound(&owner), Timestamp::MAX);

        other.mark_committed(42);
        assert_eq!(edge.outgoing_commit_bound(&owner), 42);
        assert_eq!(edge.incoming_commit_bound(&owner), 42);

        // A self-loop is conservative in both directions: the unknown
        // outgoing neighbour may have committed arbitrarily early (bound 0
        // while the owner runs), the unknown incoming neighbour arbitrarily
        // late (bound infinity).
        assert_eq!(ConflictEdge::SelfLoop.outgoing_commit_bound(&owner), 0);
        assert_eq!(
            ConflictEdge::SelfLoop.incoming_commit_bound(&owner),
            Timestamp::MAX
        );
        owner.mark_committed(77);
        assert_eq!(ConflictEdge::SelfLoop.outgoing_commit_bound(&owner), 77);
        assert_eq!(ConflictEdge::SelfLoop.incoming_commit_bound(&owner), 77);

        // Absent edges: "no constraint".
        assert_eq!(
            ConflictEdge::None.outgoing_commit_bound(&owner),
            Timestamp::MAX
        );
        assert_eq!(ConflictEdge::None.incoming_commit_bound(&owner), 0);
    }

    #[test]
    fn commit_cas_races_with_flag_setting() {
        // A flag set between the commit check and the CAS must make the
        // commit retry and observe it: hammer the word from two threads.
        for _ in 0..200 {
            let t = Arc::new(txn(7));
            set_in(&t, ConflictEdge::SelfLoop);
            let t2 = t.clone();
            let setter = std::thread::spawn(move || {
                t2.set_out_flag();
            });
            let committed = t.try_commit_word(9, true).is_ok();
            setter.join().unwrap();
            let (i, o) = t.conflict_flags();
            assert!(i && o, "flags must never be lost");
            if committed {
                // The commit CAS must have happened strictly before the
                // OUT flag arrived; either way no pivot may ever show
                // status Committed *and* have been observed by the commit
                // CAS with both flags.
                assert!(t.is_committed());
            } else {
                assert!(t.is_active());
            }
        }
    }
}
