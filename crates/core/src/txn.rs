//! Transaction handles: lifecycle, commit and rollback.
//!
//! The data-access operations (`get`, `put`, `delete`, `scan`, …) live in
//! [`crate::access`]; this module owns the bookkeeping every operation needs
//! (held locks, write set, recorded reads) and the commit/rollback protocol
//! of Figs. 3.1 and 3.2.

use std::collections::HashMap;
use std::sync::Arc;

use ssi_common::{AbortReason, Error, IsolationLevel, Result, Timestamp, TxnId};
use ssi_lock::{LockKey, LockMode, LockOutcome, ModeSet};
use ssi_storage::{Table, Version};

use crate::db::DbInner;
use crate::manager::CommitPhase;
use crate::ssi;
use crate::txn_shared::{TxnShared, TxnStatus};
use crate::verify::{CommittedTxn, ReadRecord, WriteRecordEntry};

/// Local (handle-side) transaction state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum LocalState {
    Active,
    Committed,
    Aborted,
}

/// A version installed by this transaction, remembered for commit stamping
/// or rollback.
pub(crate) struct WriteRecord {
    pub(crate) table: Arc<Table>,
    pub(crate) key: Vec<u8>,
    pub(crate) version: Arc<Version>,
}

/// A transaction handle.
///
/// A handle is owned by a single thread; all shared state lives in the
/// [`TxnShared`] record so that concurrent transactions (and the Serializable
/// SI machinery) can inspect it. Dropping an active handle rolls the
/// transaction back.
pub struct Transaction {
    pub(crate) db: Arc<DbInner>,
    pub(crate) shared: Arc<TxnShared>,
    state: LocalState,
    /// Locks held, by key, with the set of modes acquired.
    pub(crate) locks: HashMap<LockKey, ModeSet>,
    /// Versions installed by this transaction.
    pub(crate) writes: Vec<WriteRecord>,
    /// Reads recorded for the serializability verifier (only when the
    /// database was opened with history recording).
    pub(crate) reads: Vec<ReadRecord>,
    /// Index-space writes recorded for the verifier: one entry per
    /// secondary-index entry this transaction's row writes add or shadow,
    /// keyed by `(index id, entry bytes)` so they flow through the MVSG
    /// exactly like row writes. Only populated with history recording on.
    pub(crate) index_writes: Vec<WriteRecordEntry>,
    /// Creators of provisionally stamped versions this transaction read
    /// speculatively. Every one of them must settle (commit) before this
    /// transaction may finalize its own commit; if any aborts, this
    /// transaction is doomed with it.
    pub(crate) speculative_deps: Vec<Arc<TxnShared>>,
    /// Whether the application declared the transaction read-only.
    read_only: bool,
}

impl Transaction {
    pub(crate) fn new(db: Arc<DbInner>, isolation: IsolationLevel, read_only: bool) -> Self {
        let shared = db.txns.begin(isolation);
        Transaction {
            db,
            shared,
            state: LocalState::Active,
            locks: HashMap::new(),
            writes: Vec::new(),
            reads: Vec::new(),
            index_writes: Vec::new(),
            speculative_deps: Vec::new(),
            read_only,
        }
    }

    /// The transaction's id.
    pub fn id(&self) -> TxnId {
        self.shared.id()
    }

    /// The isolation level this transaction runs at.
    pub fn isolation(&self) -> IsolationLevel {
        self.shared.isolation()
    }

    /// True while the transaction can still execute operations.
    pub fn is_active(&self) -> bool {
        self.state == LocalState::Active
    }

    /// True if the application declared this transaction read-only when
    /// beginning it.
    pub fn is_declared_read_only(&self) -> bool {
        self.read_only
    }

    /// The snapshot timestamp, if one has been assigned yet. Snapshot
    /// assignment is deferred until the first operation that needs it
    /// (Sec. 4.5).
    pub fn snapshot_ts(&self) -> Option<Timestamp> {
        self.shared.begin_ts()
    }

    /// Ensures the transaction is still usable, aborting it if it has been
    /// selected as a victim by another transaction.
    pub(crate) fn check_active(&mut self) -> Result<()> {
        match self.state {
            LocalState::Active => {}
            _ => return Err(Error::TransactionClosed),
        }
        if self.shared.is_doomed() {
            let reason = self.shared.doom_reason();
            self.abort_internal(reason);
            return Err(Error::abort_with_reason(reason, self.shared.id()));
        }
        Ok(())
    }

    /// Acquires a lock and records it in the transaction's lock set.
    pub(crate) fn acquire(&mut self, key: LockKey, mode: LockMode) -> Result<LockOutcome> {
        let outcome = self.db.locks.lock(self.shared.id(), &key, mode)?;
        if outcome.newly_acquired {
            self.locks.entry(key).or_insert(ModeSet::EMPTY).insert(mode);
        }
        Ok(outcome)
    }

    /// Runs an operation body, aborting the transaction if it fails with a
    /// retryable concurrency-control error.
    pub(crate) fn run_op<T>(&mut self, body: impl FnOnce(&mut Self) -> Result<T>) -> Result<T> {
        self.check_active()?;
        match body(self) {
            Ok(v) => Ok(v),
            Err(e) => {
                self.abort_internal(e.rollback_provenance());
                Err(e)
            }
        }
    }

    /// Commits the transaction.
    ///
    /// For Serializable SI transactions this is where the commit-time unsafe
    /// check of Fig. 3.2 runs; on failure the transaction is rolled back and
    /// an [`Error::Aborted`] of kind `Unsafe` is returned. After a
    /// successful check, all versions written become visible atomically, the
    /// commit record is appended to the WAL (waiting for the simulated flush
    /// if one is configured), locks are released — except SIREAD locks,
    /// which stay registered while the transaction is suspended (Sec. 3.3) —
    /// and eligible suspended transactions are cleaned up (Sec. 4.6.1).
    ///
    /// The commit pipeline (see [`crate::manager`]) is wait-free on the
    /// read side: a writer enters the `Committing` window (running its
    /// unsafe check), allocates its timestamp, stamps its write set
    /// *provisionally*, deposits the timestamp for ordered publication —
    /// and never waits for the snapshot clock to catch up. Readers who
    /// encounter a provisional version at or below their snapshot take it
    /// speculatively, registering a commit dependency on the writer; the
    /// writer settles those dependencies when it finalizes (or dooms the
    /// dependents if it aborts out of the window). A committer with
    /// speculative reads of its own must wait for *its* dependencies to
    /// settle before finalizing — see [`Transaction::wait_for_dependencies`].
    ///
    /// Durable mode opts out of speculation entirely: the WAL's seal order
    /// requires commits to become visible in timestamp order, so durable
    /// commits finalize before stamping and keep the ordered-publication
    /// wait on the commit path (never on the read path).
    pub fn commit(self) -> Result<()> {
        // Whole-commit latency, including aborted attempts (sampled).
        let metrics = self.db.metrics.clone();
        let t0 = metrics.commit.start();
        let result = self.commit_inner();
        metrics.commit.finish(t0);
        result
    }

    fn commit_inner(mut self) -> Result<()> {
        if self.state != LocalState::Active {
            return Err(Error::TransactionClosed);
        }
        if self.shared.is_doomed() {
            let reason = self.shared.doom_reason();
            self.abort_internal(reason);
            return Err(Error::abort_with_reason(reason, self.shared.id()));
        }
        let is_ssi = self.shared.isolation() == IsolationLevel::SerializableSnapshotIsolation;
        let has_writes = !self.writes.is_empty();

        // Encode the redo record *ahead of* the commit point: the write-set
        // deep copies and buffer growth happen here, outside the ordered-
        // publication window, so a large write set never stalls the
        // publication of successor timestamps. Only the timestamp patch and
        // one CRC pass remain inside the window (submit below). Dropped
        // unused if the commit check fails.
        let mut prepared = match &self.db.durable {
            Some(_) if has_writes => Some(ssi_wal::PreparedCommit::from_parts(
                self.shared.id(),
                self.writes
                    .iter()
                    .map(|w| (w.table.id(), w.key.as_slice(), w.version.value())),
            )),
            _ => None,
        };

        // --- commit point ---------------------------------------------------
        // (`_gate` reproduces the old global-mutex serialization when the
        // lock-step baseline mode is on; it is never taken otherwise. The
        // guard borrows from a clone of the `Arc` so `self` stays free for
        // the abort path.)
        let db = self.db.clone();
        let _gate = db
            .options
            .ssi
            .lockstep_commit
            .then(|| db.txns.commit_gate());
        // Commit-section latency (entry into the commit point through the
        // settled stamps; sampled, recorded for successful sections only).
        let section_t0 = db.metrics.commit_section.start();
        let commit_ts = if has_writes {
            // Writers open a `Committing` window: the unsafe check runs on
            // entry and the timestamp is allocated strictly *after* entry —
            // that ordering is what lets SSI checks bound a neighbour's
            // commit timestamp without waiting for publication.
            let entered = if is_ssi {
                ssi::begin_commit(&self.db.txns, &self.db.options.ssi, &self.shared)
            } else {
                // Non-SSI levels have no commit-time check; they share the
                // window so readers can resolve their provisional stamps.
                match self.shared.enter_committing(false) {
                    Ok(()) => {
                        let ts = self.db.txns.allocate_commit_ts();
                        self.shared.set_pending_commit_ts(ts);
                        Ok(ts)
                    }
                    Err(_) => Err(Error::unsafe_abort(self.shared.id())),
                }
            };
            match entered {
                Ok(ts) => ts,
                Err(e) => {
                    self.abort_internal(e.rollback_provenance());
                    return Err(e);
                }
            }
        } else {
            // No writes: nothing to stamp, so the commit is a single
            // settling step — but only after any speculative reads have
            // been confirmed, since a read-only answer derived from a
            // rolled-back version must not be returned as committed.
            if let Err(e) = self.wait_for_dependencies() {
                self.abort_internal(e.rollback_provenance());
                return Err(e);
            }
            let settled = if is_ssi {
                ssi::commit_read_only(&self.db.txns, &self.db.options.ssi, &self.shared)
            } else {
                // Read-only transactions do not advance the clock — their
                // "commit time" is the current instant, which is all the
                // overlap bookkeeping needs.
                let ts = self.db.txns.current_ts();
                self.shared.mark_committed(ts);
                Ok(ts)
            };
            match settled {
                Ok(ts) => ts,
                Err(e) => {
                    self.abort_internal(e.rollback_provenance());
                    return Err(e);
                }
            }
        };

        let mut durability_error = None;
        if has_writes {
            if self.db.durable.is_some() {
                // Durable mode: no speculation. The WAL requires commits to
                // become visible in timestamp order, so settle the outcome
                // *before* stamping — versions go straight from uncommitted
                // to committed, and a reader never sees a stampable window.
                // The timestamp was allocated but not yet deposited, so a
                // failure here must still deposit it — an allocated-but-
                // never-deposited timestamp would stall the publication
                // chain for every successor.
                let settled = self
                    .wait_for_dependencies()
                    .and_then(|()| self.finalize_window(is_ssi));
                if let Err(e) = settled {
                    self.db.txns.publish_commit_ts(commit_ts);
                    self.abort_internal(e.rollback_provenance());
                    return Err(e);
                }
                // Redo logging, step 1 of the protocol in `ssi-wal`: park
                // the pre-encoded write set in the log's pending buffer
                // *before* the timestamp is deposited for publication, so
                // whoever advances the clock past `commit_ts` can rely on
                // the record being present and the log file staying
                // timestamp-ordered.
                if let Some(durable) = &self.db.durable {
                    durable
                        .wal
                        .submit_prepared(commit_ts, prepared.take().expect("prepared above"));
                }
                for w in &self.writes {
                    w.version.mark_committed(commit_ts);
                }
                self.db.txns.publish_commit_ts(commit_ts);
            } else {
                // Speculative pipeline: stamp provisionally, deposit the
                // timestamp (never waiting for publication), then settle.
                for w in &self.writes {
                    w.version.mark_provisional(commit_ts);
                }
                self.db
                    .txns
                    .fire_commit_pause(self.shared.id(), CommitPhase::PreDeposit);
                self.db.txns.publish_commit_ts(commit_ts);
                self.db
                    .txns
                    .fire_commit_pause(self.shared.id(), CommitPhase::PreFinalize);
                if let Err(e) = self.wait_for_dependencies() {
                    self.abort_internal(e.rollback_provenance());
                    return Err(e);
                }
                if let Err(e) = self.finalize_window(is_ssi) {
                    self.abort_internal(e.rollback_provenance());
                    return Err(e);
                }
                // Settle the stamps: plain committed timestamps that decode
                // without the creator-word lookup.
                for w in &self.writes {
                    w.version.mark_committed(commit_ts);
                }
            }
            // The word is settled (`Committed`), so dependents who re-check
            // see the commit; anyone registered before the flip is drained
            // here and simply dropped — registration was their guarantee of
            // learning the outcome, and the outcome is now readable.
            drop(self.shared.take_dependents());
        }
        db.metrics.commit_section.finish(section_t0);
        drop(_gate);

        // --- durability (real log: seal + group-commit fsync) ---------------
        // Sealing appends the ordered prefix, so first make sure the clock
        // covers `commit_ts` (deposit alone no longer guarantees it);
        // `wait_durable` then blocks (in GroupCommit mode) until an fsync —
        // ours or a neighbour's — covers our timestamp. An I/O failure here
        // is remembered and returned after the in-memory bookkeeping
        // completes: the transaction *is* committed in memory, only its
        // persistence is uncertain (see `Error::Durability`).
        if has_writes {
            if let Some(durable) = &self.db.durable {
                self.db.txns.wait_for_publication(commit_ts);
                let result = durable
                    .wal
                    .seal_upto(commit_ts)
                    .and_then(|()| durable.wal.wait_durable(commit_ts));
                if let Err(e) = result {
                    // A lost durability promise degrades the database:
                    // later writers fail fast instead of piling onto a
                    // poisoned log. This committer still reports the
                    // classic durability error — its commit *is* applied
                    // in memory, only persistence is uncertain.
                    if durable.wal.is_poisoned() {
                        self.db.degrade_from_wal();
                    }
                    durability_error = Some(Error::Durability(format!("commit {commit_ts}: {e}")));
                }
            }
        }

        // --- simulated flush latency (paper figure reproduction) ------------
        if !self.writes.is_empty() {
            let bytes: usize = self
                .writes
                .iter()
                .map(|w| w.key.len() + w.version.value().map_or(0, |v| v.len()))
                .sum();
            self.db
                .wal
                .commit_record(self.shared.id(), commit_ts, bytes);
        }

        // --- history recording (verifier) -----------------------------------
        if let Some(history) = &self.db.history {
            history.record(CommittedTxn {
                id: self.shared.id(),
                begin_ts: self.shared.begin_ts().unwrap_or(commit_ts),
                commit_ts,
                reads: std::mem::take(&mut self.reads),
                writes: self
                    .writes
                    .iter()
                    .map(|w| WriteRecordEntry {
                        table: w.table.id(),
                        key: w.key.clone(),
                        tombstone: w.version.is_tombstone(),
                    })
                    .chain(std::mem::take(&mut self.index_writes))
                    .collect(),
            });
        }

        // --- lock release / suspension --------------------------------------
        let siread_keys: Vec<LockKey> = if is_ssi {
            self.locks
                .iter()
                .filter(|(_, modes)| modes.contains(LockMode::SiRead))
                .map(|(k, _)| k.clone())
                .collect()
        } else {
            Vec::new()
        };
        let (_, out_conflict) = self.shared.conflict_flags();
        let suspend = is_ssi && (!siread_keys.is_empty() || out_conflict);

        let locks = std::mem::take(&mut self.locks);
        for (key, modes) in locks {
            for mode in modes.iter() {
                if suspend && mode == LockMode::SiRead {
                    continue; // retained while suspended
                }
                self.db.locks.unlock(self.shared.id(), &key, mode);
            }
        }

        self.db.txns.finish_commit(
            &self.shared,
            if suspend { siread_keys } else { Vec::new() },
            suspend,
        );
        self.maybe_cleanup();

        self.writes.clear();
        self.state = LocalState::Committed;
        if has_writes {
            // Background maintenance piggybacked on write commits, after the
            // commit is fully visible: version GC on its commit cadence and
            // checkpoints on log growth. Both are single-flight try-locks —
            // a committer either runs one pass or skips, never queues.
            self.db.maybe_auto_purge();
            self.db.maybe_auto_checkpoint();
        }
        match durability_error {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Settles the `Committing` window as committed, re-running the
    /// variant's cheap re-checks (see [`crate::ssi::finalize_commit`]).
    fn finalize_window(&self, is_ssi: bool) -> Result<()> {
        if is_ssi {
            ssi::finalize_commit(&self.db.options.ssi, &self.shared)
        } else {
            // Non-SSI windows only fail if a dependency cascade doomed us
            // mid-window (a creator we read speculatively rolled back).
            self.shared
                .finalize_commit(false)
                .map_err(|_| Error::abort_with_reason(self.shared.doom_reason(), self.shared.id()))
        }
    }

    /// Blocks until every commit dependency (creator of a speculatively
    /// read version) settles. Returns an error if any of them aborted — the
    /// speculative read was of data that never committed — or if this
    /// transaction was doomed while waiting.
    ///
    /// Dependencies always point at transactions that entered their commit
    /// window *before* this one took the speculative read, so the wait
    /// graph is acyclic and the earliest unsettled window can always make
    /// progress. The spin budget is the manager's shared one (zero on
    /// single-core hosts).
    fn wait_for_dependencies(&self) -> Result<()> {
        if self.speculative_deps.is_empty() {
            return Ok(());
        }
        let spin_limit = self.db.txns.spin_limit();
        for dep in &self.speculative_deps {
            let mut spins = 0u32;
            loop {
                match dep.status() {
                    TxnStatus::Committed => break,
                    TxnStatus::Aborted => {
                        return Err(Error::abort_with_reason(
                            AbortReason::DependencyCascade,
                            self.shared.id(),
                        ));
                    }
                    TxnStatus::Active | TxnStatus::Committing => {
                        if self.shared.is_doomed() {
                            return Err(Error::abort_with_reason(
                                self.shared.doom_reason(),
                                self.shared.id(),
                            ));
                        }
                        if spins < spin_limit {
                            spins += 1;
                            std::hint::spin_loop();
                        } else {
                            std::thread::yield_now();
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Rolls the transaction back, undoing all of its writes.
    pub fn rollback(mut self) {
        self.abort_internal(AbortReason::UserRollback);
    }

    /// Internal rollback shared by [`Transaction::rollback`], failed
    /// operations and the `Drop` implementation. `reason` is the typed
    /// provenance recorded against the per-reason abort counters.
    pub(crate) fn abort_internal(&mut self, reason: AbortReason) {
        if self.state != LocalState::Active {
            return;
        }
        for w in &self.writes {
            w.version.mark_aborted();
            w.table.unlink_version(&w.key, &w.version);
        }
        self.writes.clear();
        self.index_writes.clear();

        let locks = std::mem::take(&mut self.locks);
        for (key, modes) in locks {
            for mode in modes.iter() {
                self.db.locks.unlock(self.shared.id(), &key, mode);
            }
        }

        self.shared.mark_aborted();
        // Dependency cascade: anyone who speculatively read one of the
        // versions just unlinked must not commit. The word is already
        // `Aborted` (stored before this drain), so late registrants learn
        // the outcome from `register_commit_dependent` itself; everyone who
        // registered earlier is doomed here.
        let dependents = self.shared.take_dependents();
        if !dependents.is_empty() {
            let stats = self.db.txns.stats();
            for dep in dependents {
                dep.set_doom_reason(AbortReason::DependencyCascade);
                dep.doom();
                stats
                    .dependency_cascade_aborts
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        }
        self.db.txns.finish_abort(&self.shared, reason);
        self.maybe_cleanup();
        self.state = LocalState::Aborted;
    }

    /// Reclaims suspended committed transactions eagerly (Sec. 4.6.1: "this
    /// eager cleanup … maintains a tight window of active transactions and
    /// minimizes the number of additional locks in the lock manager").
    fn maybe_cleanup(&self) {
        if self.db.txns.suspended_len() > 0 {
            self.db.txns.cleanup_suspended(&self.db.locks);
        }
    }
}

impl Drop for Transaction {
    fn drop(&mut self) {
        if self.state == LocalState::Active {
            self.abort_internal(AbortReason::UserRollback);
        }
    }
}

impl std::fmt::Debug for Transaction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Transaction")
            .field("id", &self.shared.id())
            .field("isolation", &self.shared.isolation())
            .field("state", &self.state)
            .field("locks", &self.locks.len())
            .field("writes", &self.writes.len())
            .finish()
    }
}
