//! Wait-for graph used for deadlock detection.
//!
//! Every time a transaction is about to block on a lock it registers edges to
//! the transactions currently holding conflicting locks and then asks whether
//! the new edges close a cycle. Because a cycle can only come into existence
//! when its final edge is added, checking at edge-insertion time detects every
//! deadlock, and the transaction that closed the cycle is a natural victim
//! (this mirrors InnoDB's behaviour; Berkeley DB instead runs a detector
//! thread, which the thesis notes makes its deadlock handling slower,
//! Sec. 6.1.3).

use std::collections::{HashMap, HashSet};

use ssi_common::TxnId;

/// A directed wait-for graph over transaction ids.
#[derive(Default, Debug)]
pub struct WaitForGraph {
    edges: HashMap<TxnId, HashSet<TxnId>>,
}

impl WaitForGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds edges `waiter -> holder` for every holder, returning `true` if
    /// the resulting graph contains a cycle reachable from `waiter`.
    ///
    /// If a cycle is created the caller is expected to *not* block and to
    /// abort `waiter`; the edges added by this call are removed again before
    /// returning in that case.
    pub fn add_edges_and_check(&mut self, waiter: TxnId, holders: &[TxnId]) -> bool {
        let entry = self.edges.entry(waiter).or_default();
        let mut added = Vec::new();
        for &h in holders {
            if h != waiter && entry.insert(h) {
                added.push(h);
            }
        }
        if self.reaches(waiter, waiter) {
            // Undo only the edges added by this call; pre-existing edges
            // belong to an earlier (still pending) request.
            let entry = self.edges.entry(waiter).or_default();
            for h in added {
                entry.remove(&h);
            }
            if entry.is_empty() {
                self.edges.remove(&waiter);
            }
            true
        } else {
            false
        }
    }

    /// Removes all outgoing edges of `waiter` (called when it stops
    /// waiting, whether granted, timed out, or aborted).
    pub fn clear_waiter(&mut self, waiter: TxnId) {
        self.edges.remove(&waiter);
    }

    /// Atomically replaces `waiter`'s outgoing edges with edges to `holders`
    /// and reports whether that closes a cycle. Used when a blocked request
    /// re-evaluates: stale edges to holders that have since released must not
    /// linger (they would cause spurious deadlocks), but the replacement has
    /// to be atomic so concurrent detections never observe the waiter
    /// edge-less while it is still blocked.
    pub fn reset_edges_and_check(&mut self, waiter: TxnId, holders: &[TxnId]) -> bool {
        self.clear_waiter(waiter);
        self.add_edges_and_check(waiter, holders)
    }

    /// True if `to` is reachable from any successor of `from`.
    fn reaches(&self, from: TxnId, target: TxnId) -> bool {
        let mut stack: Vec<TxnId> = match self.edges.get(&from) {
            Some(succ) => succ.iter().copied().collect(),
            None => return false,
        };
        let mut seen: HashSet<TxnId> = HashSet::new();
        while let Some(node) = stack.pop() {
            if node == target {
                return true;
            }
            if !seen.insert(node) {
                continue;
            }
            if let Some(succ) = self.edges.get(&node) {
                stack.extend(succ.iter().copied());
            }
        }
        false
    }

    /// Number of transactions currently waiting (used by tests and stats).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn waiter_count(&self) -> usize {
        self.edges.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(id: u64) -> TxnId {
        TxnId(id)
    }

    #[test]
    fn no_cycle_on_chain() {
        let mut g = WaitForGraph::new();
        assert!(!g.add_edges_and_check(t(1), &[t(2)]));
        assert!(!g.add_edges_and_check(t(2), &[t(3)]));
        assert!(!g.add_edges_and_check(t(3), &[t(4)]));
        assert_eq!(g.waiter_count(), 3);
    }

    #[test]
    fn two_cycle_detected() {
        let mut g = WaitForGraph::new();
        assert!(!g.add_edges_and_check(t(1), &[t(2)]));
        assert!(g.add_edges_and_check(t(2), &[t(1)]));
        // The closing edge must have been rolled back.
        assert!(!g.reaches(t(2), t(1)));
    }

    #[test]
    fn three_cycle_detected_at_closing_edge() {
        let mut g = WaitForGraph::new();
        assert!(!g.add_edges_and_check(t(1), &[t(2)]));
        assert!(!g.add_edges_and_check(t(2), &[t(3)]));
        assert!(g.add_edges_and_check(t(3), &[t(1)]));
    }

    #[test]
    fn self_edges_are_ignored() {
        let mut g = WaitForGraph::new();
        assert!(!g.add_edges_and_check(t(1), &[t(1), t(2)]));
    }

    #[test]
    fn clearing_a_waiter_breaks_the_path() {
        let mut g = WaitForGraph::new();
        assert!(!g.add_edges_and_check(t(1), &[t(2)]));
        assert!(!g.add_edges_and_check(t(2), &[t(3)]));
        g.clear_waiter(t(2));
        // 3 -> 1 no longer closes a cycle because 1 -> 2 -> 3 is broken.
        assert!(!g.add_edges_and_check(t(3), &[t(1)]));
    }

    #[test]
    fn rolled_back_edges_keep_existing_ones() {
        let mut g = WaitForGraph::new();
        assert!(!g.add_edges_and_check(t(1), &[t(2)]));
        assert!(!g.add_edges_and_check(t(2), &[t(3)]));
        // T2 re-blocks, now also on T1 -> cycle; its previous edge to T3 must
        // survive the rollback of the offending edge.
        assert!(g.add_edges_and_check(t(2), &[t(1)]));
        assert!(g.reaches(t(2), t(3)));
        assert!(!g.reaches(t(2), t(1)));
    }

    #[test]
    fn diamond_without_cycle() {
        let mut g = WaitForGraph::new();
        assert!(!g.add_edges_and_check(t(1), &[t(2), t(3)]));
        assert!(!g.add_edges_and_check(t(2), &[t(4)]));
        assert!(!g.add_edges_and_check(t(3), &[t(4)]));
        assert!(g.add_edges_and_check(t(4), &[t(1)]));
    }
}
