//! Benchmark workloads from the paper's evaluation (Chapter 5) and the
//! multi-threaded driver used to measure them (Chapter 6).
//!
//! Three workloads are provided:
//!
//! * [`smallbank`] — the SmallBank banking mix (Alomari et al. 2008),
//!   whose static dependency graph contains a dangerous structure, so plain
//!   SI can corrupt its invariants (Sec. 2.8.2, 5.1);
//! * [`sibench`] — the thesis' new microbenchmark: one table, a min-value
//!   query and a random increment update, designed to isolate the cost of
//!   read-write conflict handling (Sec. 5.2);
//! * [`tpcc`] — TPC-C++: TPC-C plus the Credit Check transaction that makes
//!   the mix non-serializable under SI (Sec. 5.3).
//!
//! The [`driver`] runs any of them at a given multiprogramming level (MPL)
//! against a [`ssi_core::Database`] and reports commits/second and aborts per
//! commit broken down by cause, which is exactly what the thesis' figures
//! plot.

pub mod driver;
pub mod sibench;
pub mod smallbank;
pub mod tpcc;

pub use driver::{run_workload, RunConfig, Workload};
pub use sibench::SiBench;
pub use smallbank::SmallBank;
pub use tpcc::{TpccConfig, TpccWorkload};
