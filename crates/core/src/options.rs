//! Engine configuration.
//!
//! The options mirror the experimental dimensions of the thesis: lock and
//! conflict-detection granularity (row-level like InnoDB vs page-level like
//! Berkeley DB), the basic vs enhanced conflict representation of Secs. 3.2
//! and 3.6, the SIREAD-upgrade optimization of Sec. 3.7.3, victim selection
//! (Sec. 3.7.2), commit-time log flushing (Sec. 6.1), and the mixed mode that
//! runs read-only transactions at plain SI (Sec. 3.8).

use std::num::NonZeroU64;
use std::path::PathBuf;
use std::time::Duration;

use ssi_common::IsolationLevel;
use ssi_lock::LockConfig;
use ssi_storage::WalConfig;

/// Granularity at which locks are taken and read-write conflicts detected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockGranularity {
    /// InnoDB-style row-level locking with gap locks for phantom detection.
    Row,
    /// Berkeley-DB-style page-level locking: keys are hashed onto `pages`
    /// pages and all locks name the page, so unrelated rows that share a
    /// page conflict with each other (Sec. 4.2, Sec. 6.1.5).
    Page {
        /// Number of pages each table's keys are spread over.
        pages: u64,
    },
}

impl LockGranularity {
    /// True for page-level granularity.
    pub fn is_page(&self) -> bool {
        matches!(self, LockGranularity::Page { .. })
    }
}

/// Which representation of rw-conflict flags the SSI implementation uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SsiVariant {
    /// Two boolean flags per transaction (Sec. 3.2, Figs. 3.1–3.5). Simple
    /// but aborts in some serializable interleavings (Fig. 3.8).
    Basic,
    /// Transaction references plus commit-time ordering checks (Sec. 3.6,
    /// Figs. 3.9–3.10), reducing false positives. This matches the InnoDB
    /// prototype and is the default.
    #[default]
    Enhanced,
}

/// Which transaction to sacrifice when an unsafe structure is found and
/// either participant could be aborted (Sec. 3.7.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum VictimPolicy {
    /// Abort the pivot (the transaction with both incoming and outgoing
    /// conflicts) unless it has already committed — the paper's default.
    #[default]
    PreferPivot,
    /// Always abort the transaction that detected the conflict (the caller).
    PreferCaller,
    /// Abort the younger of the two transactions, analogous to common
    /// deadlock victim policies.
    PreferYounger,
}

/// Options specific to the Serializable SI algorithm.
#[derive(Clone, Debug)]
pub struct SsiOptions {
    /// Conflict-flag representation.
    pub variant: SsiVariant,
    /// Drop a transaction's SIREAD lock on an item when it acquires the
    /// EXCLUSIVE lock on the same item (read-modify-write), Sec. 3.7.3.
    pub upgrade_siread: bool,
    /// Abort a pivot as soon as both conflicts are present rather than
    /// waiting for its commit (Sec. 3.7.1).
    pub abort_early: bool,
    /// Victim selection policy.
    pub victim: VictimPolicy,
    /// Run conflict marking and commits in lock-step under one global mutex,
    /// reproducing the thesis prototype's kernel-mutex serialization. The
    /// fine-grained commit pipeline (see [`crate::manager`]) is the default;
    /// this fallback exists as the in-tree baseline the `commit_bench`
    /// binary measures the pipeline against.
    pub lockstep_commit: bool,
}

impl Default for SsiOptions {
    fn default() -> Self {
        SsiOptions {
            variant: SsiVariant::Enhanced,
            upgrade_siread: true,
            abort_early: true,
            victim: VictimPolicy::PreferPivot,
            lockstep_commit: false,
        }
    }
}

/// When (and whether) committed write sets reach stable storage. See the
/// `ssi-wal` crate docs for the log format and the group-commit protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Durability {
    /// Pure in-memory operation (the default): no log, no recovery, no
    /// change to any existing code path.
    #[default]
    Off,
    /// Commits are appended to the redo log in publication order but
    /// `commit` does not wait for `fsync`; the device is synced at
    /// checkpoints and on clean close. A crash may lose a suffix of
    /// recently acknowledged commits, never a non-prefix subset.
    Buffered,
    /// `commit` returns only after an `fsync` covering the transaction's
    /// commit timestamp. Concurrent committers share flushes (group
    /// commit), so the per-commit fsync cost amortizes under load.
    GroupCommit,
}

/// Configuration of the background maintenance subsystem (the
/// [`crate::maintenance::MaintenanceHub`]): a dedicated WAL flusher thread
/// and an incremental version-GC thread, both owned by the database, started
/// from `Database::try_open` and joined on drop.
#[derive(Clone, Debug)]
pub struct MaintenanceOptions {
    /// Run a dedicated WAL flusher thread with this maximum batch delay:
    /// in [`Durability::GroupCommit`] committers enqueue and park instead
    /// of self-electing, and the flusher fsyncs the sealed prefix once the
    /// batch is this old (or [`MaintenanceOptions::flush_max_bytes`] trips)
    /// — so batch size is no longer bounded by natural committer pile-up,
    /// at a worst-case acknowledged-commit latency of roughly this delay
    /// plus one fsync. In [`Durability::Buffered`] the same thread bounds
    /// the crash-loss window: the sealed tail reaches the device within
    /// this delay instead of at the next checkpoint or clean close.
    /// `None` (the default) keeps committer-elected group commit. Ignored
    /// when durability is off or in the per-commit-fsync baseline.
    pub flush_max_delay: Option<Duration>,
    /// Size threshold of the dedicated flusher: fsync early once this many
    /// bytes have been sealed since the last sync, regardless of age.
    pub flush_max_bytes: u64,
    /// Run a background GC thread purging row versions incrementally —
    /// [`MaintenanceOptions::gc_shards_per_pass`] storage shards per table
    /// per pass — on this cadence, at the pinned safe horizon. Replaces
    /// the inline [`Options::purge_every_commits`] work on committers
    /// (which is skipped while the thread runs): the commit path does zero
    /// purge work. `None` (the default) starts no thread.
    pub gc_interval: Option<Duration>,
    /// Storage shards each background GC pass purges per table (clamped to
    /// at least 1). Smaller values spread reclamation thinner; a full
    /// table sweep completes every `SHARD_COUNT / gc_shards_per_pass`
    /// intervals.
    pub gc_shards_per_pass: usize,
    /// How many times the dedicated flusher retries a *transient* fsync
    /// failure before poisoning the log (see the `ssi-wal` crate docs,
    /// § Failure handling). While un-fsynced frames are buffered for
    /// re-emission, a failed range is never re-fsynced as if nothing
    /// happened — retries re-write it to a fresh segment. `0` disables
    /// retrying (and the re-emission buffer): the first failure poisons,
    /// as committer-elected group commit always does.
    pub flush_retry_budget: u32,
    /// Delay between flusher retry attempts.
    pub flush_retry_backoff: Duration,
}

impl Default for MaintenanceOptions {
    fn default() -> Self {
        MaintenanceOptions {
            flush_max_delay: None,
            flush_max_bytes: 1 << 20,
            gc_interval: None,
            gc_shards_per_pass: 16,
            flush_retry_budget: 4,
            flush_retry_backoff: Duration::from_millis(5),
        }
    }
}

/// A pluggable storage backend for the durability subsystem: everything the
/// WAL, checkpointer and recovery do on disk goes through this handle. The
/// default (`None` in [`DurabilityOptions::vfs`]) is the real filesystem;
/// tests inject `ssi_wal::FaultVfs` to script disk failures.
#[derive(Clone)]
pub struct VfsHandle(pub std::sync::Arc<dyn ssi_wal::Vfs>);

impl std::fmt::Debug for VfsHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("VfsHandle(..)")
    }
}

/// Configuration of the durability subsystem.
#[derive(Clone, Debug, Default)]
pub struct DurabilityOptions {
    /// Durability mode.
    pub mode: Durability,
    /// Storage backend; `None` (the default) uses the real filesystem
    /// through one virtual pointer hop. See [`VfsHandle`].
    pub vfs: Option<VfsHandle>,
    /// Directory holding log segments and checkpoint snapshots. Required
    /// unless `mode` is [`Durability::Off`]; created if missing; recovered
    /// from if non-empty.
    pub dir: Option<PathBuf>,
    /// Take a checkpoint automatically once this many bytes have been
    /// appended to the log since the last one. `None` (the default) leaves
    /// checkpointing to explicit `Database::checkpoint` calls.
    pub checkpoint_every_bytes: Option<u64>,
    /// Benchmark baseline: every commit performs its own fsync instead of
    /// sharing group flushes. Only meaningful with
    /// [`Durability::GroupCommit`]; `wal_bench` measures group commit
    /// against this. Not for production use.
    pub fsync_every_commit: bool,
}

/// Top-level engine options.
#[derive(Clone, Debug)]
pub struct Options {
    /// Isolation level used by [`crate::Database::begin`].
    pub default_isolation: IsolationLevel,
    /// Locking / conflict-detection granularity.
    pub granularity: LockGranularity,
    /// Write-ahead-log behaviour (simulated flush latency, group commit).
    pub wal: WalConfig,
    /// Real durability: on-disk redo log, checkpoints and crash recovery.
    /// Independent of `wal`, which only *simulates* flush latency for the
    /// paper's figures.
    pub durability: DurabilityOptions,
    /// Serializable-SI-specific options.
    pub ssi: SsiOptions,
    /// Take gap locks on scans/inserts/deletes to detect phantoms
    /// (row-granularity only; page locks subsume this, Sec. 3.5).
    pub detect_phantoms: bool,
    /// Run transactions declared read-only at plain SI even when the
    /// database default is Serializable SI (Sec. 3.8).
    pub read_only_queries_at_si: bool,
    /// Record per-transaction read/write sets so the multiversion
    /// serialization graph can be checked after a run (used by tests; adds
    /// overhead, off by default).
    pub record_history: bool,
    /// Run one version-GC pass automatically after every this many write
    /// commits (single-flight: the committer that trips the threshold runs
    /// it, concurrent committers never queue behind it). The pass purges at
    /// the pinned safe horizon, so it can never reclaim a version a live —
    /// or concurrently starting — snapshot still needs. `None` (the
    /// default) leaves reclamation to explicit
    /// [`crate::Database::purge`] calls.
    pub purge_every_commits: Option<NonZeroU64>,
    /// Background maintenance threads (dedicated WAL flusher, incremental
    /// version GC).
    pub maintenance: MaintenanceOptions,
    /// Lock manager configuration.
    pub lock: LockConfig,
    /// Capacity (in events) of the lock-free engine event trace, drained
    /// with [`crate::Database::drain_trace`]. `None` (the default) disables
    /// tracing entirely — every emit site reduces to one branch.
    pub trace_capacity: Option<usize>,
    /// In-engine latency histograms sample 1 in `2^latency_sample_shift`
    /// hot-path operations (commits, reads, scans). The default of 6 (1 in
    /// 64) keeps the clean-path overhead within benchmark noise; 0 records
    /// every operation. Rare events (fsync, checkpoint, GC pass) are always
    /// recorded regardless.
    pub latency_sample_shift: u32,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            default_isolation: IsolationLevel::SerializableSnapshotIsolation,
            granularity: LockGranularity::Row,
            wal: WalConfig::default(),
            durability: DurabilityOptions::default(),
            ssi: SsiOptions::default(),
            detect_phantoms: true,
            read_only_queries_at_si: false,
            record_history: false,
            purge_every_commits: None,
            maintenance: MaintenanceOptions::default(),
            lock: LockConfig::default(),
            trace_capacity: None,
            latency_sample_shift: 6,
        }
    }
}

impl Options {
    /// Options resembling the InnoDB prototype: row-level locks, gap locks,
    /// enhanced conflict tracking. This is the default.
    pub fn innodb_like() -> Self {
        Options::default()
    }

    /// Options resembling the Berkeley DB prototype: page-level locks and
    /// the basic (boolean-flag) conflict representation (Sec. 4.3).
    pub fn berkeley_like(pages: u64) -> Self {
        Options {
            granularity: LockGranularity::Page { pages },
            ssi: SsiOptions {
                variant: SsiVariant::Basic,
                ..SsiOptions::default()
            },
            detect_phantoms: false,
            ..Options::default()
        }
    }

    /// Enables a simulated commit flush of the given latency.
    pub fn with_commit_flush(mut self, latency: Duration) -> Self {
        self.wal = WalConfig {
            flush_latency: Some(latency),
        };
        self
    }

    /// Sets the default isolation level.
    pub fn with_isolation(mut self, level: IsolationLevel) -> Self {
        self.default_isolation = level;
        self
    }

    /// Enables history recording for the serializability verifier.
    pub fn with_history(mut self) -> Self {
        self.record_history = true;
        self
    }

    /// Enables the lock-step (global-mutex) commit baseline; see
    /// [`SsiOptions::lockstep_commit`].
    pub fn with_lockstep_commit(mut self) -> Self {
        self.ssi.lockstep_commit = true;
        self
    }

    /// Enables the durability subsystem in the given mode, storing the log
    /// and checkpoints under `dir` (recovered from if non-empty).
    pub fn with_durability(mut self, mode: Durability, dir: impl Into<PathBuf>) -> Self {
        self.durability.mode = mode;
        self.durability.dir = Some(dir.into());
        self
    }

    /// Routes all durable I/O through the given [`ssi_wal::Vfs`] (fault
    /// injection for tests; see [`DurabilityOptions::vfs`]).
    pub fn with_vfs(mut self, vfs: std::sync::Arc<dyn ssi_wal::Vfs>) -> Self {
        self.durability.vfs = Some(VfsHandle(vfs));
        self
    }

    /// Enables automatic version GC every `every_commits` write commits
    /// (see [`Options::purge_every_commits`]). Panics if `every_commits`
    /// is zero.
    pub fn with_auto_purge(mut self, every_commits: u64) -> Self {
        self.purge_every_commits =
            Some(NonZeroU64::new(every_commits).expect("purge_every_commits must be non-zero"));
        self
    }

    /// Runs a dedicated WAL flusher thread with the given maximum batch
    /// delay (see [`MaintenanceOptions::flush_max_delay`]).
    pub fn with_background_flusher(mut self, max_delay: Duration) -> Self {
        self.maintenance.flush_max_delay = Some(max_delay);
        self
    }

    /// Runs a background incremental-GC thread on the given cadence (see
    /// [`MaintenanceOptions::gc_interval`]).
    pub fn with_background_gc(mut self, interval: Duration) -> Self {
        self.maintenance.gc_interval = Some(interval);
        self
    }

    /// Enables the engine event trace with room for `capacity` events (see
    /// [`Options::trace_capacity`]). Panics if `capacity` is zero.
    pub fn with_tracing(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be non-zero");
        self.trace_capacity = Some(capacity);
        self
    }

    /// Sets the latency-histogram sampling shift (see
    /// [`Options::latency_sample_shift`]).
    pub fn with_latency_sample_shift(mut self, shift: u32) -> Self {
        self.latency_sample_shift = shift;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_innodb_prototype() {
        let o = Options::default();
        assert_eq!(
            o.default_isolation,
            IsolationLevel::SerializableSnapshotIsolation
        );
        assert_eq!(o.granularity, LockGranularity::Row);
        assert_eq!(o.ssi.variant, SsiVariant::Enhanced);
        assert!(o.ssi.upgrade_siread);
        assert!(o.detect_phantoms);
        assert!(!o.record_history);
    }

    #[test]
    fn berkeley_profile_uses_pages_and_basic_flags() {
        let o = Options::berkeley_like(100);
        assert_eq!(o.granularity, LockGranularity::Page { pages: 100 });
        assert!(o.granularity.is_page());
        assert_eq!(o.ssi.variant, SsiVariant::Basic);
        assert!(!o.detect_phantoms);
    }

    #[test]
    fn durability_defaults_off_and_builder_sets_dir() {
        let o = Options::default();
        assert_eq!(o.durability.mode, Durability::Off);
        assert!(o.durability.dir.is_none());
        assert!(o.durability.checkpoint_every_bytes.is_none());
        let o = Options::default().with_durability(Durability::GroupCommit, "/tmp/x");
        assert_eq!(o.durability.mode, Durability::GroupCommit);
        assert_eq!(
            o.durability.dir.as_deref(),
            Some(std::path::Path::new("/tmp/x"))
        );
    }

    #[test]
    fn auto_purge_defaults_off_and_builder_sets_cadence() {
        assert!(Options::default().purge_every_commits.is_none());
        let o = Options::default().with_auto_purge(64);
        assert_eq!(o.purge_every_commits.map(|n| n.get()), Some(64));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn auto_purge_rejects_zero_cadence() {
        let _ = Options::default().with_auto_purge(0);
    }

    #[test]
    fn builder_helpers() {
        let o = Options::default()
            .with_commit_flush(Duration::from_millis(5))
            .with_isolation(IsolationLevel::SnapshotIsolation)
            .with_history();
        assert_eq!(o.wal.flush_latency, Some(Duration::from_millis(5)));
        assert_eq!(o.default_isolation, IsolationLevel::SnapshotIsolation);
        assert!(o.record_history);
    }
}
