//! The `sibench` microbenchmark (Sec. 5.2 of the thesis).
//!
//! One table of `items` rows `(id, value)`. Two transaction types:
//!
//! * **query** — return the id with the smallest value. The engine must
//!   examine every row (a full scan plus a small amount of CPU work), but the
//!   result is tiny, so the benchmark isolates concurrency-control cost from
//!   data-transfer cost;
//! * **update** — increment the value of one uniformly chosen row. The
//!   update uses a locking read (`get_for_update`), so — thanks to the
//!   deferred-snapshot optimization of Sec. 4.5 — concurrent updates block on
//!   the row lock instead of aborting under first-committer-wins.
//!
//! The static dependency graph has a single rw edge (query → update), so no
//! deadlocks, no write skew and no unsafe aborts are expected; the benchmark
//! purely measures how each concurrency-control algorithm handles read-write
//! conflicts (blocking for S2PL, nothing for SI, SIREAD bookkeeping for SSI).

use std::ops::Bound;

use ssi_common::encoding::{decode_i64, encode_i64};
use ssi_common::rng::WorkloadRng;
use ssi_common::Error;
use ssi_core::{Database, TableRef};

use crate::driver::Workload;

/// Transaction-type index of the query.
pub const TXN_QUERY: usize = 0;
/// Transaction-type index of the update.
pub const TXN_UPDATE: usize = 1;

/// The sibench workload bound to its table.
pub struct SiBench {
    table: TableRef,
    items: u64,
    /// Number of query transactions issued per update transaction
    /// (1 for the mixed workload of Sec. 6.3.1, 10 for the query-mostly
    /// workloads of Sec. 6.3.2).
    queries_per_update: u32,
}

fn item_key(id: u64) -> [u8; 8] {
    id.to_be_bytes()
}

impl SiBench {
    /// Creates the `sibench` table with `items` rows of value 0.
    pub fn setup(db: &Database, items: u64, queries_per_update: u32) -> Self {
        let table = db.create_table("sibench").unwrap();
        let mut txn = db.begin();
        for id in 0..items {
            txn.put(&table, &item_key(id), &encode_i64(0)).unwrap();
        }
        txn.commit().unwrap();
        SiBench {
            table,
            items,
            queries_per_update,
        }
    }

    /// Number of rows in the table.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// The query transaction: id of the row with the smallest value.
    pub fn query_min(&self, db: &Database) -> Result<Option<u64>, Error> {
        let mut txn = db.begin_read_only();
        let rows = txn.scan(&self.table, Bound::Unbounded, Bound::Unbounded)?;
        let min = rows
            .iter()
            .min_by_key(|(_, v)| decode_i64(v))
            .map(|(k, _)| u64::from_be_bytes(k.as_slice().try_into().unwrap()));
        txn.commit()?;
        Ok(min)
    }

    /// The update transaction: increment one row's value.
    pub fn update_row(&self, db: &Database, id: u64) -> Result<(), Error> {
        let mut txn = db.begin();
        let key = item_key(id);
        let current = txn
            .get_for_update(&self.table, &key)?
            .map(|v| decode_i64(&v))
            .unwrap_or(0);
        txn.put(&self.table, &key, &encode_i64(current + 1))?;
        txn.commit()
    }

    /// Sum of all values; equals the number of committed updates.
    pub fn total_value(&self, db: &Database) -> i64 {
        let mut txn = db.begin();
        let rows = txn
            .scan(&self.table, Bound::Unbounded, Bound::Unbounded)
            .unwrap();
        let total = rows.iter().map(|(_, v)| decode_i64(v)).sum();
        txn.commit().unwrap();
        total
    }
}

impl Workload for SiBench {
    fn name(&self) -> &str {
        "sibench"
    }

    fn transaction_types(&self) -> usize {
        2
    }

    fn transaction_type_name(&self, ty: usize) -> &'static str {
        match ty {
            TXN_QUERY => "query",
            _ => "update",
        }
    }

    fn execute_one(&self, db: &Database, rng: &mut WorkloadRng) -> (usize, Result<(), Error>) {
        let q = self.queries_per_update as u64;
        let is_query = rng.uniform(0, q) < q; // q of (q+1) slots are queries
        if is_query {
            (TXN_QUERY, self.query_min(db).map(|_| ()))
        } else {
            let id = rng.uniform(0, self.items - 1);
            (TXN_UPDATE, self.update_row(db, id))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_workload, RunConfig};
    use ssi_common::IsolationLevel;
    use ssi_core::Options;
    use std::time::Duration;

    #[test]
    fn setup_and_query() {
        let db = Database::open(Options::default());
        let bench = SiBench::setup(&db, 10, 1);
        assert_eq!(bench.items(), 10);
        // All values are zero, the minimum is the smallest id.
        assert_eq!(bench.query_min(&db).unwrap(), Some(0));
        assert_eq!(bench.total_value(&db), 0);
    }

    #[test]
    fn updates_move_the_minimum() {
        let db = Database::open(Options::default());
        let bench = SiBench::setup(&db, 3, 1);
        bench.update_row(&db, 0).unwrap();
        bench.update_row(&db, 0).unwrap();
        bench.update_row(&db, 1).unwrap();
        // Row 2 was never updated and now has the smallest value.
        assert_eq!(bench.query_min(&db).unwrap(), Some(2));
        assert_eq!(bench.total_value(&db), 3);
    }

    #[test]
    fn no_aborts_expected_under_any_level() {
        // Sec. 5.2: only a single rw edge exists, so no deadlocks and no
        // unsafe (dangerous-structure) aborts can occur — the static
        // dependency graph rules them out regardless of timing. A plain
        // zero-abort assertion is load-sensitive, though: a blocked
        // updater's deferred snapshot (Sec. 4.5) can be chosen in the
        // window between the previous lock holder stamping its versions
        // and that commit becoming resolvable through the clock, tripping
        // first-committer-wins spuriously. That abort is benign (a retry
        // succeeds) and timing-dependent, so instead of asserting a timed
        // zero we assert *which* aborts occurred: every reason the graph
        // forbids must stay at zero, and only the publication-race
        // write-conflict may appear.
        use ssi_common::AbortReason;
        for level in IsolationLevel::evaluated() {
            let db = Database::open(Options::default().with_isolation(level));
            let bench = SiBench::setup(&db, 10, 1);
            let stats = run_workload(
                &db,
                &bench,
                &RunConfig {
                    mpl: 4,
                    warmup: Duration::from_millis(20),
                    duration: Duration::from_millis(250),
                    seed: 11,
                },
            );
            assert!(stats.commits > 0, "{level}: no commits");
            let mgr = db.transaction_manager().stats();
            let by_reason = mgr.abort_reason_counts();
            for reason in AbortReason::ALL {
                if reason == AbortReason::WriteConflict {
                    continue;
                }
                assert_eq!(
                    by_reason[reason.index()],
                    0,
                    "{level}: forbidden abort reason {reason} fired (all: {by_reason:?})"
                );
            }
            // Provenance bookkeeping: every abort carried a reason.
            let total: u64 = by_reason.iter().sum();
            assert_eq!(
                total,
                mgr.aborted.load(std::sync::atomic::Ordering::Relaxed),
                "{level}: per-reason aborts must sum to the abort counter"
            );
        }
    }
}
