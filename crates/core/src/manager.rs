//! The transaction manager: timestamps, the transaction registry, the
//! committed-but-suspended list and its cleanup.
//!
//! Responsibilities, mapped to the thesis:
//!
//! * issue begin (snapshot) and commit timestamps from a single counter so
//!   that "committed before T began" has one global meaning (Sec. 2.5);
//! * keep a registry of transaction records so that other transactions can
//!   be found by id when a conflict is discovered through a newer row
//!   version (Fig. 3.4 line 8);
//! * keep committed Serializable-SI transactions *suspended* — their record
//!   and their SIREAD locks stay alive until no concurrent transaction
//!   remains (Sec. 3.3), and clean them up eagerly in commit order
//!   (Sec. 4.6.1, the InnoDB strategy);
//! * provide the global serialization mutex that makes conflict marking and
//!   the commit-time flag check atomic (the `atomic begin/end` blocks of
//!   Figs. 3.2/3.3; the analogue of InnoDB's kernel mutex).
//!
//! # Sharding
//!
//! The registry is sharded the same way as the lock table and the storage
//! layer: `REGISTRY_SHARDS` small mutex-protected hash maps, selected by
//! transaction id (ids are sequential, so the low bits spread perfectly).
//! Begin/find/retire on different transactions therefore never contend on
//! one mutex.
//!
//! Two auxiliary ordered structures keep the operations that used to be
//! full-registry scans cheap:
//!
//! * each shard maintains an **active-begin index** (`BTreeSet` of
//!   `(begin_ts, id)` for its active snapshot-holding transactions), so
//!   [`TransactionManager::oldest_active_begin`] is one `first()` per shard
//!   — O(shards), not O(live transactions) under one big mutex;
//! * the suspended list is a `BTreeMap` keyed by `(commit_ts, id)`, so
//!   [`TransactionManager::cleanup_suspended`] pops reclaimable entries in
//!   commit order and stops at the first survivor — O(reclaimed), not
//!   O(suspended × registry).

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, MutexGuard};

use ssi_common::{IsolationLevel, Timestamp, TxnId};
use ssi_lock::{FxBuildHasher, LockKey, LockManager, LockMode};

use crate::txn_shared::TxnShared;

/// Number of registry shards. Power of two; ids are assigned sequentially
/// so `id % shards` spreads consecutive transactions across all shards.
const REGISTRY_SHARDS: usize = 64;

/// A committed Serializable-SI transaction kept around because transactions
/// concurrent with it may still discover conflicts against it.
struct SuspendedTxn {
    shared: Arc<TxnShared>,
    /// SIREAD locks still registered in the lock table on its behalf.
    siread_locks: Vec<LockKey>,
}

/// One registry shard: the id → record map plus the ordered index of
/// active transactions that already hold a snapshot.
#[derive(Default)]
struct RegistryShard {
    records: HashMap<TxnId, Arc<TxnShared>, FxBuildHasher>,
    /// `(begin_ts, id)` for every registered transaction that received a
    /// snapshot and has not finished yet. `first()` is this shard's oldest
    /// active begin timestamp.
    active_begins: BTreeSet<(Timestamp, TxnId)>,
}

/// Counters describing transaction-manager activity, exposed for tests and
/// the experiment harness.
#[derive(Default, Debug)]
pub struct ManagerStats {
    /// Transactions begun.
    pub started: AtomicU64,
    /// Transactions committed.
    pub committed: AtomicU64,
    /// Transactions aborted (any reason).
    pub aborted: AtomicU64,
    /// Commits that had to be suspended (kept SIREAD locks).
    pub suspended: AtomicU64,
    /// Suspended transactions reclaimed by cleanup.
    pub cleaned: AtomicU64,
}

/// The transaction manager.
pub struct TransactionManager {
    /// Global logical clock; the last issued timestamp.
    clock: AtomicU64,
    /// Next transaction id.
    next_id: AtomicU64,
    /// Sharded registry of all transaction records that may still be
    /// referenced: active transactions plus committed-but-suspended
    /// Serializable SI transactions.
    registry: Box<[Mutex<RegistryShard>]>,
    /// Suspended committed transactions, ordered by commit timestamp.
    suspended: Mutex<BTreeMap<(Timestamp, TxnId), SuspendedTxn>>,
    /// Serialization point for conflict marking and commit checks.
    serialization: Mutex<()>,
    /// Activity counters.
    stats: ManagerStats,
}

impl TransactionManager {
    /// Creates a transaction manager with the clock at 1 (so the first
    /// snapshot is 1 and the first commit timestamp is 2).
    pub fn new() -> Self {
        TransactionManager {
            clock: AtomicU64::new(1),
            next_id: AtomicU64::new(1),
            registry: (0..REGISTRY_SHARDS)
                .map(|_| Mutex::new(RegistryShard::default()))
                .collect(),
            suspended: Mutex::new(BTreeMap::new()),
            serialization: Mutex::new(()),
            stats: ManagerStats::default(),
        }
    }

    /// Activity counters.
    pub fn stats(&self) -> &ManagerStats {
        &self.stats
    }

    #[inline]
    fn shard(&self, id: TxnId) -> &Mutex<RegistryShard> {
        &self.registry[id.0 as usize & (REGISTRY_SHARDS - 1)]
    }

    /// Current value of the logical clock.
    pub fn current_ts(&self) -> Timestamp {
        self.clock.load(Ordering::Acquire)
    }

    /// Starts a new transaction at `isolation` and registers it.
    pub fn begin(&self, isolation: IsolationLevel) -> Arc<TxnShared> {
        let id = TxnId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let shared = Arc::new(TxnShared::new(id, isolation));
        self.shard(id).lock().records.insert(id, shared.clone());
        self.stats.started.fetch_add(1, Ordering::Relaxed);
        shared
    }

    /// Assigns the transaction's snapshot to the current clock value if it
    /// does not have one yet, and returns it. Deferring this call until
    /// after the first lock acquisition implements the optimization of
    /// Sec. 4.5 (single-statement updates never abort under
    /// first-committer-wins).
    pub fn ensure_snapshot(&self, txn: &TxnShared) -> Timestamp {
        if let Some(ts) = txn.begin_ts() {
            return ts;
        }
        // Take the shard lock across assign + index insert so a concurrent
        // finish cannot miss the index entry.
        let mut shard = self.shard(txn.id()).lock();
        if let Some(ts) = txn.begin_ts() {
            return ts;
        }
        let ts = self.current_ts();
        txn.set_begin_ts(ts);
        let ts = txn.begin_ts().unwrap_or(ts);
        if shard.records.contains_key(&txn.id()) {
            shard.active_begins.insert((ts, txn.id()));
        }
        ts
    }

    /// Acquires the global serialization mutex (conflict marking and commit
    /// checks run under it).
    pub fn serialization_lock(&self) -> MutexGuard<'_, ()> {
        self.serialization.lock()
    }

    /// Allocates the next commit timestamp. Must be called while holding the
    /// serialization mutex; the new value is *not* published to readers until
    /// [`TransactionManager::publish_commit_ts`] is called, so the caller can
    /// stamp its versions first and new snapshots can never observe a
    /// half-committed transaction.
    pub fn allocate_commit_ts(&self) -> Timestamp {
        self.current_ts() + 1
    }

    /// Publishes a commit timestamp allocated with
    /// [`TransactionManager::allocate_commit_ts`], making it visible to new
    /// snapshots.
    pub fn publish_commit_ts(&self, ts: Timestamp) {
        self.clock.store(ts, Ordering::Release);
    }

    /// Looks up a (possibly suspended) transaction record by id.
    pub fn find(&self, id: TxnId) -> Option<Arc<TxnShared>> {
        self.shard(id).lock().records.get(&id).cloned()
    }

    /// The smallest begin timestamp among active transactions, or
    /// `Timestamp::MAX` if none is active (used to decide which suspended
    /// transactions can be reclaimed). One ordered-index lookup per shard:
    /// O(shards), independent of how many transactions are live.
    pub fn oldest_active_begin(&self) -> Timestamp {
        self.registry
            .iter()
            .filter_map(|shard| shard.lock().active_begins.first().map(|(ts, _)| *ts))
            .min()
            .unwrap_or(Timestamp::MAX)
    }

    /// Number of entries in the registry (active + suspended), for tests.
    pub fn registry_len(&self) -> usize {
        self.registry.iter().map(|s| s.lock().records.len()).sum()
    }

    /// Number of suspended committed transactions, for tests and stats.
    pub fn suspended_len(&self) -> usize {
        self.suspended.lock().len()
    }

    /// Removes a finished transaction's record and active-begin entry.
    fn retire(&self, txn: &Arc<TxnShared>) {
        let mut shard = self.shard(txn.id()).lock();
        shard.records.remove(&txn.id());
        if let Some(ts) = txn.begin_ts() {
            shard.active_begins.remove(&(ts, txn.id()));
        }
    }

    /// Removes only the active-begin entry (the record stays, e.g. while
    /// suspended).
    fn deactivate(&self, txn: &Arc<TxnShared>) {
        if let Some(ts) = txn.begin_ts() {
            self.shard(txn.id())
                .lock()
                .active_begins
                .remove(&(ts, txn.id()));
        }
    }

    /// Records that `txn` committed. When `suspend` is true the record is
    /// suspended (Sec. 3.3): it stays in the registry and its SIREAD locks
    /// stay in the lock table until cleanup. Otherwise the record is retired
    /// immediately and its conflict edges cleared. A transaction must be
    /// suspended when it still holds SIREAD locks, and also — with the
    /// SIREAD-upgrade optimization of Sec. 3.7.3 — when it has recorded an
    /// outgoing conflict, even if its SIREAD locks were all upgraded away.
    pub fn finish_commit(&self, txn: &Arc<TxnShared>, siread_locks: Vec<LockKey>, suspend: bool) {
        self.stats.committed.fetch_add(1, Ordering::Relaxed);
        if !suspend {
            debug_assert!(siread_locks.is_empty());
            self.retire(txn);
            txn.clear_conflicts();
        } else {
            self.stats.suspended.fetch_add(1, Ordering::Relaxed);
            self.deactivate(txn);
            let key = (txn.commit_ts().unwrap_or(Timestamp::MAX), txn.id());
            self.suspended.lock().insert(
                key,
                SuspendedTxn {
                    shared: txn.clone(),
                    siread_locks,
                },
            );
        }
    }

    /// Records that `txn` aborted and retires its record.
    pub fn finish_abort(&self, txn: &Arc<TxnShared>) {
        self.stats.aborted.fetch_add(1, Ordering::Relaxed);
        self.retire(txn);
        txn.clear_conflicts();
    }

    /// Reclaims suspended transactions that are no longer concurrent with
    /// any active transaction: their SIREAD locks are dropped from the lock
    /// table, their conflict edges cleared and their records removed from
    /// the registry (Sec. 4.6.1).
    ///
    /// The suspended list is ordered by commit timestamp, so this pops from
    /// the front and stops at the first transaction some active transaction
    /// is still concurrent with — O(reclaimed), not a scan of everything
    /// suspended. Returns how many were reclaimed.
    pub fn cleanup_suspended(&self, locks: &LockManager) -> usize {
        let horizon = self.oldest_active_begin();
        let mut reclaimed = Vec::new();
        {
            let mut suspended = self.suspended.lock();
            // Keep a record while some active transaction began before it
            // committed (they are concurrent and may still discover
            // conflicts against it): reclaim exactly while commit <= horizon.
            while let Some(entry) = suspended.first_entry() {
                if entry.key().0 > horizon {
                    break;
                }
                reclaimed.push(entry.remove());
            }
        }
        let count = reclaimed.len();
        for entry in reclaimed {
            for key in &entry.siread_locks {
                locks.unlock(entry.shared.id(), key, LockMode::SiRead);
            }
            entry.shared.clear_conflicts();
            self.retire(&entry.shared);
        }
        self.stats
            .cleaned
            .fetch_add(count as u64, Ordering::Relaxed);
        count
    }
}

impl Default for TransactionManager {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssi_common::TableId;

    fn mgr() -> TransactionManager {
        TransactionManager::new()
    }

    #[test]
    fn begin_assigns_unique_ids_and_registers() {
        let m = mgr();
        let a = m.begin(IsolationLevel::SnapshotIsolation);
        let b = m.begin(IsolationLevel::SerializableSnapshotIsolation);
        assert_ne!(a.id(), b.id());
        assert_eq!(m.registry_len(), 2);
        assert!(m.find(a.id()).is_some());
        assert!(m.find(TxnId(999)).is_none());
    }

    #[test]
    fn snapshot_assignment_is_sticky() {
        let m = mgr();
        let t = m.begin(IsolationLevel::SnapshotIsolation);
        let s1 = m.ensure_snapshot(&t);
        // Advance the clock as if another transaction committed.
        let ts = m.allocate_commit_ts();
        m.publish_commit_ts(ts);
        let s2 = m.ensure_snapshot(&t);
        assert_eq!(s1, s2, "snapshot must not move once assigned");
    }

    #[test]
    fn commit_timestamps_are_monotonic_and_published() {
        let m = mgr();
        let before = m.current_ts();
        let ts = {
            let _g = m.serialization_lock();
            let ts = m.allocate_commit_ts();
            m.publish_commit_ts(ts);
            ts
        };
        assert_eq!(ts, before + 1);
        assert_eq!(m.current_ts(), ts);
    }

    #[test]
    fn commit_without_sireads_retires_immediately() {
        let m = mgr();
        let t = m.begin(IsolationLevel::SerializableSnapshotIsolation);
        m.ensure_snapshot(&t);
        t.mark_committed(5);
        m.finish_commit(&t, Vec::new(), false);
        assert_eq!(m.registry_len(), 0);
        assert_eq!(m.suspended_len(), 0);
        assert_eq!(m.oldest_active_begin(), Timestamp::MAX);
    }

    #[test]
    fn suspended_commit_stays_until_cleanup() {
        let m = mgr();
        let locks = LockManager::with_defaults();
        let key = LockKey::record(TableId(1), vec![1]);

        // Reader R commits holding an SIREAD lock while a concurrent
        // transaction C is still active.
        let r = m.begin(IsolationLevel::SerializableSnapshotIsolation);
        m.ensure_snapshot(&r);
        let c = m.begin(IsolationLevel::SerializableSnapshotIsolation);
        m.ensure_snapshot(&c);
        locks.lock(r.id(), &key, LockMode::SiRead).unwrap();

        r.mark_committed(m.current_ts() + 1);
        m.publish_commit_ts(m.current_ts() + 1);
        m.finish_commit(&r, vec![key.clone()], true);
        assert_eq!(m.suspended_len(), 1);
        assert!(m.find(r.id()).is_some(), "suspended txns stay findable");

        // Cleanup cannot reclaim R while C (begun before R committed) lives.
        assert_eq!(m.cleanup_suspended(&locks), 0);
        assert!(locks.holds(r.id(), &key).contains(LockMode::SiRead));

        // Once C finishes, R is reclaimable and its SIREAD lock disappears.
        c.mark_committed(m.current_ts() + 1);
        m.finish_commit(&c, Vec::new(), false);
        assert_eq!(m.cleanup_suspended(&locks), 1);
        assert_eq!(m.suspended_len(), 0);
        assert!(m.find(r.id()).is_none());
        assert!(locks.holds(r.id(), &key).is_empty());
    }

    #[test]
    fn oldest_active_begin_ignores_finished_transactions() {
        let m = mgr();
        let a = m.begin(IsolationLevel::SnapshotIsolation);
        m.ensure_snapshot(&a);
        let ts = m.allocate_commit_ts();
        m.publish_commit_ts(ts);
        let b = m.begin(IsolationLevel::SnapshotIsolation);
        m.ensure_snapshot(&b);
        assert_eq!(m.oldest_active_begin(), a.begin_ts().unwrap());
        a.mark_committed(m.current_ts() + 1);
        m.finish_commit(&a, Vec::new(), false);
        assert_eq!(m.oldest_active_begin(), b.begin_ts().unwrap());
        b.mark_aborted();
        m.finish_abort(&b);
        assert_eq!(m.oldest_active_begin(), Timestamp::MAX);
    }

    #[test]
    fn oldest_active_begin_scales_across_shards() {
        // Many concurrent snapshot holders spread over every shard; the
        // minimum must be exact regardless of which shard holds it.
        let m = mgr();
        let mut txns = Vec::new();
        for i in 0..(REGISTRY_SHARDS * 3) {
            let t = m.begin(IsolationLevel::SnapshotIsolation);
            m.ensure_snapshot(&t);
            // Advance the clock between begins so begin timestamps differ.
            if i % 3 == 0 {
                let ts = m.allocate_commit_ts();
                m.publish_commit_ts(ts);
            }
            txns.push(t);
        }
        let expected = txns.iter().filter_map(|t| t.begin_ts()).min().unwrap();
        assert_eq!(m.oldest_active_begin(), expected);
        // Retire the oldest; the minimum must move.
        let oldest = txns
            .iter()
            .position(|t| t.begin_ts() == Some(expected))
            .unwrap();
        let t = txns.remove(oldest);
        t.mark_aborted();
        m.finish_abort(&t);
        let expected = txns.iter().filter_map(|t| t.begin_ts()).min().unwrap();
        assert_eq!(m.oldest_active_begin(), expected);
    }

    #[test]
    fn cleanup_reclaims_in_commit_order_and_stops_early() {
        let m = mgr();
        let locks = LockManager::with_defaults();
        // Three suspended readers committing at increasing timestamps, and
        // one active transaction that began between the second and third
        // commit: cleanup must reclaim exactly the first two.
        let mut suspended = Vec::new();
        for _ in 0..2 {
            let r = m.begin(IsolationLevel::SerializableSnapshotIsolation);
            m.ensure_snapshot(&r);
            let ts = m.allocate_commit_ts();
            m.publish_commit_ts(ts);
            r.mark_committed(ts);
            m.finish_commit(&r, Vec::new(), true);
            suspended.push(r);
        }
        let active = m.begin(IsolationLevel::SerializableSnapshotIsolation);
        m.ensure_snapshot(&active);
        let r3 = m.begin(IsolationLevel::SerializableSnapshotIsolation);
        m.ensure_snapshot(&r3);
        let ts = m.allocate_commit_ts();
        m.publish_commit_ts(ts);
        r3.mark_committed(ts);
        m.finish_commit(&r3, Vec::new(), true);

        assert_eq!(m.suspended_len(), 3);
        assert_eq!(m.cleanup_suspended(&locks), 2);
        assert_eq!(m.suspended_len(), 1);
        assert!(m.find(r3.id()).is_some(), "r3 still concurrent with active");
    }

    #[test]
    fn stats_count_lifecycle_events() {
        let m = mgr();
        let locks = LockManager::with_defaults();
        let a = m.begin(IsolationLevel::SerializableSnapshotIsolation);
        let b = m.begin(IsolationLevel::SerializableSnapshotIsolation);
        a.mark_committed(2);
        m.finish_commit(&a, Vec::new(), false);
        b.mark_aborted();
        m.finish_abort(&b);
        m.cleanup_suspended(&locks);
        let s = m.stats();
        assert_eq!(s.started.load(Ordering::Relaxed), 2);
        assert_eq!(s.committed.load(Ordering::Relaxed), 1);
        assert_eq!(s.aborted.load(Ordering::Relaxed), 1);
    }
}
