//! Records the lock-step-vs-fine-grained commit-pipeline comparison in
//! `BENCH_commit.json`.
//!
//! Runs the `commit_micro` harness (whole transactions: begin → reads →
//! writes → commit) at 1/4/8 threads for SI and Serializable SI, plus a
//! contention-heavy pivot workload and a straggler-committer scenario (one
//! committer held inside every commit window while bystanders commit),
//! against two engine configurations:
//!
//! * **baseline** — `Options::with_lockstep_commit()`: conflict marking and
//!   commits serialized under one global mutex, the structure of the thesis
//!   prototype (and of this repo before the fine-grained pipeline);
//! * **pipeline** — the default lock-free/fine-grained commit pipeline
//!   (atomic state words, pair locks, ordered timestamp publication).
//!
//! Prints a comparison table and writes the numbers as JSON so the speedup
//! is recorded in-repo. Usage:
//!
//! ```text
//! cargo run --release -p ssi-bench --bin commit_bench -- \
//!     [--smoke] [--trace trace.jsonl] [output.json]
//! ```
//!
//! `--smoke` shrinks the measurement windows so CI can exercise the binary
//! cheaply; the recorded numbers in the repository come from a full run.
//! `--trace <path>` writes the event trace of the instrumented pass (the
//! final pipeline run with tracing enabled) as JSONL. The instrumented
//! pass's full `Database::metrics()` snapshot is embedded in the output
//! JSON under `"metrics"`, so the bench artifact and the engine's own
//! counters can never disagree.

use std::fmt::Write as _;
use std::time::Duration;

use ssi_bench::commit_micro::{
    preload, run_commit_section_bench, run_commit_workload, run_straggler_bench, CommitThroughput,
    CommitWorkload, StragglerWorkload,
};
use ssi_common::IsolationLevel;
use ssi_core::{Database, Options};

struct Case {
    name: &'static str,
    isolation: IsolationLevel,
    shape: CommitWorkload,
}

struct CaseResult {
    case: Case,
    baseline: CommitThroughput,
    pipeline: CommitThroughput,
}

impl CaseResult {
    fn speedup(&self) -> f64 {
        self.pipeline.committed_per_sec() / self.baseline.committed_per_sec().max(1.0)
    }
}

/// Runs a case `reps` times per configuration, interleaving baseline and
/// pipeline runs so slow drifts of the (shared) container hit both equally,
/// and returns the median run of each by committed throughput.
fn run_case(case: &Case, reps: usize) -> (CommitThroughput, CommitThroughput) {
    let run = |options: Options| {
        let db = Database::open(options);
        preload(&db, case.shape.keys);
        run_commit_workload(&db, case.isolation, &case.shape)
    };
    let mut baseline = Vec::new();
    let mut pipeline = Vec::new();
    for _ in 0..reps {
        baseline.push(run(Options::default().with_lockstep_commit()));
        pipeline.push(run(Options::default()));
    }
    (median_run(baseline), median_run(pipeline))
}

/// Median run by committed throughput.
fn median_run(mut v: Vec<CommitThroughput>) -> CommitThroughput {
    v.sort_by(|a, b| a.committed_per_sec().total_cmp(&b.committed_per_sec()));
    v.remove(v.len() / 2)
}

fn micros(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn main() {
    let mut smoke = false;
    let mut trace_path: Option<String> = None;
    let mut out_path = "BENCH_commit.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--trace" => trace_path = Some(args.next().expect("--trace needs a path")),
            other => out_path = other.to_string(),
        }
    }

    let (duration, warmup) = if smoke {
        (Duration::from_millis(40), Duration::from_millis(10))
    } else {
        (Duration::from_millis(800), Duration::from_millis(200))
    };
    let mixed = |threads: usize, isolation: IsolationLevel, name: &'static str| Case {
        name,
        isolation,
        shape: CommitWorkload {
            threads,
            keys: 4096,
            reads_per_txn: 2,
            writes_per_txn: 2,
            hot: None,
            read_only_pct: 0,
            duration,
            warmup,
        },
    };
    let cases = vec![
        mixed(1, IsolationLevel::SnapshotIsolation, "si_mixed_1t"),
        mixed(4, IsolationLevel::SnapshotIsolation, "si_mixed_4t"),
        mixed(8, IsolationLevel::SnapshotIsolation, "si_mixed_8t"),
        mixed(
            1,
            IsolationLevel::SerializableSnapshotIsolation,
            "ssi_mixed_1t",
        ),
        mixed(
            4,
            IsolationLevel::SerializableSnapshotIsolation,
            "ssi_mixed_4t",
        ),
        mixed(
            8,
            IsolationLevel::SerializableSnapshotIsolation,
            "ssi_mixed_8t",
        ),
        Case {
            name: "ssi_pivot_8t",
            isolation: IsolationLevel::SerializableSnapshotIsolation,
            shape: CommitWorkload {
                threads: 8,
                keys: 4096,
                reads_per_txn: 2,
                writes_per_txn: 1,
                hot: Some(16),
                read_only_pct: 0,
                duration,
                warmup,
            },
        },
    ];

    println!(
        "{:<16} {:>3} {:>13} {:>13} {:>8} {:>9} {:>11} {:>11}",
        "case",
        "thr",
        "baseline c/s",
        "pipeline c/s",
        "speedup",
        "aborts/c",
        "base p99us",
        "pipe p99us"
    );
    let reps = if smoke { 1 } else { 3 };
    let mut results = Vec::new();
    for case in cases {
        let (baseline, pipeline) = run_case(&case, reps);
        let result = CaseResult {
            case,
            baseline,
            pipeline,
        };
        println!(
            "{:<16} {:>3} {:>13.0} {:>13.0} {:>7.2}x {:>9.3} {:>11.1} {:>11.1}",
            result.case.name,
            result.case.shape.threads,
            result.baseline.committed_per_sec(),
            result.pipeline.committed_per_sec(),
            result.speedup(),
            result.pipeline.aborts_per_commit(),
            micros(result.baseline.latency.p99()),
            micros(result.pipeline.latency.p99()),
        );
        results.push(result);
    }

    // Straggler scenario: one committer held inside every commit window
    // (after its timestamp is stamped and deposited, before finalization)
    // while bystanders commit disjoint keys. The number that matters is the
    // bystanders' tail latency: under the lock-step baseline it tracks the
    // hold time (the straggler sleeps holding the global commit gate);
    // under the read-side-resolution pipeline it does not.
    let straggler_hold = if smoke {
        Duration::from_millis(2)
    } else {
        Duration::from_millis(5)
    };
    let straggler_shape = StragglerWorkload {
        threads: 4,
        hold: straggler_hold,
        duration,
        warmup,
    };
    let straggler = |options: Options| {
        let db = Database::open(options);
        preload(&db, 64);
        median_run(
            (0..reps)
                .map(|_| run_straggler_bench(&db, &straggler_shape))
                .collect(),
        )
    };
    let straggler_baseline = straggler(Options::default().with_lockstep_commit());
    let straggler_pipeline = straggler(Options::default());
    println!(
        "{:<16} {:>3} {:>13.0} {:>13.0} {:>7.2}x {:>9.3} {:>11.1} {:>11.1}",
        "straggler_4t",
        straggler_shape.threads,
        straggler_baseline.committed_per_sec(),
        straggler_pipeline.committed_per_sec(),
        straggler_pipeline.committed_per_sec() / straggler_baseline.committed_per_sec().max(1.0),
        straggler_pipeline.aborts_per_commit(),
        micros(straggler_baseline.latency.p99()),
        micros(straggler_pipeline.latency.p99()),
    );
    println!(
        "  straggler hold {:?}: bystander p50/p99/p999 baseline {:.1}/{:.1}/{:.1} us, \
         pipeline {:.1}/{:.1}/{:.1} us",
        straggler_hold,
        micros(straggler_baseline.latency.p50()),
        micros(straggler_baseline.latency.p99()),
        micros(straggler_baseline.latency.p999()),
        micros(straggler_pipeline.latency.p50()),
        micros(straggler_pipeline.latency.p99()),
        micros(straggler_pipeline.latency.p999()),
    );

    // Serialization-point microbenchmark: commit sections only (one-key
    // update transactions, no contention), the capacity that caps
    // multi-core commit scaling.
    let section = |options: Options| {
        let db = Database::open(options);
        preload(&db, 16);
        let mut runs: Vec<f64> = (0..reps)
            .map(|_| run_commit_section_bench(&db, 8, duration))
            .collect();
        runs.sort_by(f64::total_cmp);
        runs[runs.len() / 2]
    };
    let section_baseline = section(Options::default().with_lockstep_commit());
    let section_pipeline = section(Options::default());
    println!(
        "{:<16} {:>3} {:>13.0} {:>13.0} {:>7.2}x {:>9} {:>11} {:>11}",
        "commit_section",
        8,
        section_baseline,
        section_pipeline,
        section_pipeline / section_baseline.max(1.0),
        "-",
        "-",
        "-"
    );

    // Instrumented pass: one pipeline run of the 8-thread contended SSI
    // shape with tracing on, whose unified metrics snapshot goes into the
    // artifact (and whose drained event trace goes to --trace, if given).
    // Kept out of the measured cases above so tracing cost can never skew
    // the recorded throughput comparison.
    let obs_shape = CommitWorkload {
        threads: 8,
        keys: 4096,
        reads_per_txn: 2,
        writes_per_txn: 2,
        hot: Some(64),
        read_only_pct: 0,
        duration,
        warmup,
    };
    let obs_db = Database::open(Options::default().with_tracing(4096));
    preload(&obs_db, obs_shape.keys);
    let obs_run = run_commit_workload(
        &obs_db,
        IsolationLevel::SerializableSnapshotIsolation,
        &obs_shape,
    );
    let obs_metrics = obs_db.metrics();
    println!(
        "\ninstrumented pass (tracing on): {:.0} commits/s, {} aborts, \
         commit p99 {:.1} us (in-engine {} samples)",
        obs_run.committed_per_sec(),
        obs_metrics.txn.aborted,
        micros(obs_run.latency.p99()),
        obs_metrics.latency.commit.count,
    );
    if let Some(path) = &trace_path {
        let batch = obs_db
            .drain_trace()
            .expect("tracing was enabled on the instrumented pass");
        std::fs::write(path, batch.to_jsonl()).expect("write trace output");
        println!(
            "wrote {} trace events ({} dropped) to {path}",
            batch.events.len(),
            batch.dropped
        );
    }

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"commit_pipeline\",\n");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    json.push_str(
        "  \"comment\": \"committed txns/sec (median of interleaved reps): lock-step \
         global-mutex baseline vs the fine-grained commit pipeline (atomic state words + \
         pair locks + read-side commit resolution over deposit-drain ts publication). \
         Latency percentiles are per successful commit() call, from a log-bucketed \
         histogram (16 sub-buckets per octave, ~6% value resolution). The straggler case \
         holds one committer for hold_ms inside every commit window (post-stamp, \
         pre-finalize) and reports BYSTANDER latency: under the lock-step baseline \
         bystander p99 tracks the hold (they queue on the global gate), under the \
         pipeline it does not (readers resolve provisional commits themselves; nobody \
         waits on publication). CAVEAT: this container has ONE CPU, where a short \
         uncontended mutex wastes no idle cores, so end-to-end throughput ratios \
         compress toward 1.0x; the pipeline's structural win (commit sections of \
         independent transactions overlap instead of serializing) needs >= 2 cores to \
         appear as wall-clock speedup. What IS visible on one CPU: the pipeline never \
         loses, conflict-heavy shapes gain from gate-free conflict marking, and the \
         straggler tail-latency gap is orders of magnitude.\",\n",
    );
    json.push_str("  \"cases\": [\n");
    for r in results.iter() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"threads\": {}, \"isolation\": \"{:?}\", \
             \"baseline_committed_per_sec\": {:.0}, \"pipeline_committed_per_sec\": {:.0}, \
             \"speedup\": {:.3}, \"baseline_aborts_per_commit\": {:.4}, \
             \"pipeline_aborts_per_commit\": {:.4}, \
             \"baseline_p50_us\": {:.1}, \"baseline_p99_us\": {:.1}, \
             \"baseline_p999_us\": {:.1}, \"pipeline_p50_us\": {:.1}, \
             \"pipeline_p99_us\": {:.1}, \"pipeline_p999_us\": {:.1}}}",
            r.case.name,
            r.case.shape.threads,
            r.case.isolation,
            r.baseline.committed_per_sec(),
            r.pipeline.committed_per_sec(),
            r.speedup(),
            r.baseline.aborts_per_commit(),
            r.pipeline.aborts_per_commit(),
            micros(r.baseline.latency.p50()),
            micros(r.baseline.latency.p99()),
            micros(r.baseline.latency.p999()),
            micros(r.pipeline.latency.p50()),
            micros(r.pipeline.latency.p99()),
            micros(r.pipeline.latency.p999()),
        );
        json.push_str(",\n");
    }
    let _ = write!(
        json,
        "    {{\"name\": \"straggler_4t\", \"threads\": {}, \"isolation\": \
         \"SerializableSnapshotIsolation\", \"hold_ms\": {}, \
         \"baseline_committed_per_sec\": {:.0}, \"pipeline_committed_per_sec\": {:.0}, \
         \"speedup\": {:.3}, \"baseline_aborts_per_commit\": {:.4}, \
         \"pipeline_aborts_per_commit\": {:.4}, \
         \"baseline_p50_us\": {:.1}, \"baseline_p99_us\": {:.1}, \
         \"baseline_p999_us\": {:.1}, \"pipeline_p50_us\": {:.1}, \
         \"pipeline_p99_us\": {:.1}, \"pipeline_p999_us\": {:.1}}}",
        straggler_shape.threads,
        straggler_hold.as_millis(),
        straggler_baseline.committed_per_sec(),
        straggler_pipeline.committed_per_sec(),
        straggler_pipeline.committed_per_sec() / straggler_baseline.committed_per_sec().max(1.0),
        straggler_baseline.aborts_per_commit(),
        straggler_pipeline.aborts_per_commit(),
        micros(straggler_baseline.latency.p50()),
        micros(straggler_baseline.latency.p99()),
        micros(straggler_baseline.latency.p999()),
        micros(straggler_pipeline.latency.p50()),
        micros(straggler_pipeline.latency.p99()),
        micros(straggler_pipeline.latency.p999()),
    );
    json.push_str(",\n");
    let _ = writeln!(
        json,
        "    {{\"name\": \"commit_section_8t\", \"threads\": 8, \"isolation\": \
         \"SerializableSnapshotIsolation\", \"baseline_committed_per_sec\": {:.0}, \
         \"pipeline_committed_per_sec\": {:.0}, \"speedup\": {:.3}, \
         \"baseline_aborts_per_commit\": 0.0, \"pipeline_aborts_per_commit\": 0.0}}",
        section_baseline,
        section_pipeline,
        section_pipeline / section_baseline.max(1.0),
    );
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"metrics\": {}\n}}", obs_metrics.to_json());

    std::fs::write(&out_path, &json).expect("write bench output");
    println!("\nwrote {out_path}");
}
