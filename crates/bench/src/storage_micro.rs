//! Multi-threaded storage-layer microbenchmark harness.
//!
//! Drives N reader threads against M writer threads on one table — point
//! reads, point writes (install + commit-stamp) and optional range scans —
//! and reports operations per second. The same harness runs against the
//! sharded [`ssi_storage::Table`] and the pre-sharding
//! [`BaselineTable`](crate::baseline::BaselineTable), so the
//! `storage_concurrent` bench and the `storage_bench` binary measure the
//! speedup rather than asserting it.

use std::ops::Bound;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use ssi_common::{TableId, TxnId};
use ssi_storage::Table;

use crate::baseline::BaselineTable;

/// Storage implementations the harness can drive.
pub trait StorageUnderTest: Sync {
    fn install_committed(&self, key: &[u8], txn: TxnId, value: Vec<u8>, commit_ts: u64);
    /// Returns the visible value's length (0 when invisible); forces the
    /// value to be materialized so both implementations do comparable work.
    fn read_len(&self, key: &[u8], reader: TxnId, snapshot_ts: u64) -> usize;
    /// Full-table scan; returns the number of visible rows.
    fn scan_count(&self, reader: TxnId, snapshot_ts: u64) -> usize;
    /// Garbage-collects versions no snapshot at or after `horizon` can see.
    fn purge(&self, horizon: u64);
}

impl StorageUnderTest for Table {
    fn install_committed(&self, key: &[u8], txn: TxnId, value: Vec<u8>, commit_ts: u64) {
        let v = self.install_version(key, txn, Some(value));
        v.mark_committed(commit_ts);
    }

    fn read_len(&self, key: &[u8], reader: TxnId, snapshot_ts: u64) -> usize {
        self.read(key, reader, snapshot_ts)
            .value
            .map_or(0, |v| v.len())
    }

    fn scan_count(&self, reader: TxnId, snapshot_ts: u64) -> usize {
        self.scan(Bound::Unbounded, Bound::Unbounded, reader, snapshot_ts)
            .iter()
            .filter(|e| e.value.is_some())
            .count()
    }

    fn purge(&self, horizon: u64) {
        self.purge_old_versions(horizon);
    }
}

impl StorageUnderTest for BaselineTable {
    fn install_committed(&self, key: &[u8], txn: TxnId, value: Vec<u8>, commit_ts: u64) {
        let v = self.install_version(key, txn, Some(value));
        v.mark_committed(commit_ts);
    }

    fn read_len(&self, key: &[u8], reader: TxnId, snapshot_ts: u64) -> usize {
        self.read(key, reader, snapshot_ts)
            .value
            .map_or(0, |v| v.len())
    }

    fn scan_count(&self, reader: TxnId, snapshot_ts: u64) -> usize {
        self.scan_all(reader, snapshot_ts).len()
    }

    fn purge(&self, horizon: u64) {
        self.purge_versions(horizon);
    }
}

/// Builds a sharded table preloaded with `rows` committed 64-byte values.
pub fn setup_sharded(rows: u64) -> Table {
    let table = Table::new(TableId(1), "storage_micro");
    preload(&table, rows);
    table
}

/// Builds a baseline table with the same contents.
pub fn setup_baseline(rows: u64) -> BaselineTable {
    let table = BaselineTable::new();
    preload(&table, rows);
    table
}

fn preload<T: StorageUnderTest>(table: &T, rows: u64) {
    for i in 0..rows {
        table.install_committed(&i.to_be_bytes(), TxnId(1), vec![i as u8; 64], 10);
    }
}

/// Workload shape of one harness run.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadShape {
    /// Point-reader threads.
    pub readers: usize,
    /// Writer threads (install + commit-stamp).
    pub writers: usize,
    /// Scanning threads (full-table snapshot scans).
    pub scanners: usize,
    /// Keys in the table.
    pub rows: u64,
    /// Measured wall-clock duration.
    pub duration: Duration,
}

/// Result of one harness run.
#[derive(Clone, Copy, Debug, Default)]
pub struct StorageThroughput {
    pub reads: u64,
    pub writes: u64,
    pub scans: u64,
    pub elapsed: Duration,
}

impl StorageThroughput {
    pub fn reads_per_sec(&self) -> f64 {
        self.reads as f64 / self.elapsed.as_secs_f64()
    }

    pub fn writes_per_sec(&self) -> f64 {
        self.writes as f64 / self.elapsed.as_secs_f64()
    }

    pub fn scans_per_sec(&self) -> f64 {
        self.scans as f64 / self.elapsed.as_secs_f64()
    }
}

/// Runs the workload shape against `table` and reports throughput.
pub fn run_storage_workload<T: StorageUnderTest>(
    table: &T,
    shape: WorkloadShape,
) -> StorageThroughput {
    let stop = AtomicBool::new(false);
    let reads = AtomicU64::new(0);
    let writes = AtomicU64::new(0);
    let scans = AtomicU64::new(0);
    let start = Instant::now();

    std::thread::scope(|s| {
        for r in 0..shape.readers {
            let (stop, reads) = (&stop, &reads);
            s.spawn(move || {
                let reader = TxnId(1_000_000 + r as u64);
                // Each thread strides through the key space from its own
                // offset so readers do not share cache lines in lockstep.
                let mut i = (r as u64) * 7919;
                let mut local = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for _ in 0..64 {
                        i = i.wrapping_add(7919);
                        let key = (i % shape.rows).to_be_bytes();
                        std::hint::black_box(table.read_len(&key, reader, u64::MAX - 2));
                        local += 1;
                    }
                }
                reads.fetch_add(local, Ordering::Relaxed);
            });
        }
        for w in 0..shape.writers {
            let (stop, writes) = (&stop, &writes);
            s.spawn(move || {
                let mut i = (w as u64) * 104_729;
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for _ in 0..16 {
                        i = i.wrapping_add(104_729);
                        let key = (i % shape.rows).to_be_bytes();
                        let txn = TxnId(2_000_000 + w as u64 * 1_000_000_000 + n);
                        table.install_committed(&key, txn, vec![w as u8; 64], 100 + n);
                        n += 1;
                        // Keep chains short, as the engine's version GC
                        // would: purge everything older than the newest
                        // commit every few thousand writes.
                        if n.is_multiple_of(4096) {
                            table.purge(100 + n);
                        }
                    }
                }
                writes.fetch_add(n, Ordering::Relaxed);
            });
        }
        for c in 0..shape.scanners {
            let (stop, scans) = (&stop, &scans);
            s.spawn(move || {
                let reader = TxnId(3_000_000 + c as u64);
                let mut local = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    std::hint::black_box(table.scan_count(reader, u64::MAX - 2));
                    local += 1;
                }
                scans.fetch_add(local, Ordering::Relaxed);
            });
        }
        std::thread::sleep(shape.duration);
        stop.store(true, Ordering::Relaxed);
    });

    StorageThroughput {
        reads: reads.load(Ordering::Relaxed),
        writes: writes.load(Ordering::Relaxed),
        scans: scans.load(Ordering::Relaxed),
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_drives_both_implementations() {
        let shape = WorkloadShape {
            readers: 2,
            writers: 1,
            scanners: 1,
            rows: 128,
            duration: Duration::from_millis(50),
        };
        let sharded = setup_sharded(shape.rows);
        let out = run_storage_workload(&sharded, shape);
        assert!(out.reads > 0 && out.writes > 0 && out.scans > 0);

        let baseline = setup_baseline(shape.rows);
        let out = run_storage_workload(&baseline, shape);
        assert!(out.reads > 0 && out.writes > 0 && out.scans > 0);
    }
}
