//! The TPC-C++ Credit Check anomaly (Sec. 5.3.3, Example 5 of the thesis).
//!
//! The Credit Check transaction reads a customer's balance and undelivered
//! orders and writes the customer's credit rating; New Order reads the
//! rating and inserts orders; Payment updates the balance. Interleaving a
//! Credit Check with a concurrent Payment and New Order can commit a credit
//! rating computed from a state that never existed in any serial order.
//! Under Serializable SI one of the participants aborts instead.

use serializable_si::core::MvsgReport;
use serializable_si::{Database, IsolationLevel, Options, TableRef, Transaction};

/// A miniature credit-check schema: one customer with a balance, a credit
/// limit of 1000, a credit flag, and an "open orders" total.
struct Fixture {
    db: Database,
    t: TableRef,
}

fn get_i64(txn: &mut Transaction, t: &TableRef, key: &[u8]) -> i64 {
    txn.get(t, key)
        .unwrap()
        .map(|v| String::from_utf8_lossy(&v).parse().unwrap())
        .unwrap_or(0)
}

fn put_i64(txn: &mut Transaction, t: &TableRef, key: &[u8], v: i64) -> serializable_si::Result<()> {
    txn.put(t, key, v.to_string().as_bytes())
}

impl Fixture {
    fn new(level: IsolationLevel) -> Self {
        let db = Database::open(Options::default().with_isolation(level).with_history());
        let t = db.create_table("credit").unwrap();
        let mut setup = db.begin();
        // Delivered-but-unpaid balance of $900 and no open orders; the
        // credit limit is $1000.
        put_i64(&mut setup, &t, b"c_balance", 900).unwrap();
        put_i64(&mut setup, &t, b"open_orders", 0).unwrap();
        setup.put(&t, b"c_credit", b"GC").unwrap();
        setup.commit().unwrap();
        Fixture { db, t }
    }

    /// New Order of `amount`: reads the credit flag (the customer is shown
    /// whether they are in bad standing) and adds an open order.
    fn new_order(&self, txn: &mut Transaction, amount: i64) -> serializable_si::Result<String> {
        let credit = txn
            .get(&self.t, b"c_credit")?
            .map(|v| String::from_utf8_lossy(&v).into_owned())
            .unwrap_or_default();
        let open = get_i64(txn, &self.t, b"open_orders");
        put_i64(txn, &self.t, b"open_orders", open + amount)?;
        Ok(credit)
    }

    /// Payment of `amount`: reduces the outstanding balance.
    fn payment(&self, txn: &mut Transaction, amount: i64) -> serializable_si::Result<()> {
        let balance = get_i64(txn, &self.t, b"c_balance");
        put_i64(txn, &self.t, b"c_balance", balance - amount)
    }

    /// Credit Check run in one piece (reads and the flag write together);
    /// used by the sanity test below. The anomaly test interleaves the same
    /// steps manually instead.
    fn credit_check(&self, txn: &mut Transaction) -> serializable_si::Result<()> {
        let total = get_i64(txn, &self.t, b"c_balance") + get_i64(txn, &self.t, b"open_orders");
        let flag: &[u8] = if total > 1000 { b"BC" } else { b"GC" };
        txn.put(&self.t, b"c_credit", flag)
    }
}

/// Sanity: run the three programs strictly serially — every level must end
/// with the same, correct credit flag.
#[test]
fn serial_credit_check_is_correct_at_every_level() {
    for level in IsolationLevel::evaluated() {
        let fixture = Fixture::new(level);
        let db = &fixture.db;

        let mut t = db.begin();
        fixture.new_order(&mut t, 200).unwrap();
        t.commit().unwrap();

        let mut t = db.begin();
        fixture.credit_check(&mut t).unwrap();
        t.commit().unwrap();

        // balance 900 + open orders 200 = 1100 > 1000 → bad credit.
        let mut check = db.begin_read_only();
        assert_eq!(
            check.get(&fixture.t, b"c_credit").unwrap().as_deref(),
            Some(b"BC".as_slice()),
            "{level}"
        );
        check.commit().unwrap();

        let mut t = db.begin();
        fixture.payment(&mut t, 500).unwrap();
        t.commit().unwrap();
        let mut t = db.begin();
        fixture.credit_check(&mut t).unwrap();
        t.commit().unwrap();

        let mut check = db.begin_read_only();
        assert_eq!(
            check.get(&fixture.t, b"c_credit").unwrap().as_deref(),
            Some(b"GC".as_slice()),
            "{level}: paying off the balance must restore good credit"
        );
        check.commit().unwrap();
    }
}

/// Runs Example 5's interleaving:
///
/// 1. New Order ($200) commits → outstanding total $1100.
/// 2. Credit Check begins (snapshot shows $1100).
/// 3. Payment ($500) commits → total back to $600.
/// 4. New Order ($100) commits, shown "GC".
/// 5. Credit Check commits "BC".
/// 6. New Order ($150) is shown "BC" even though the customer never saw the
///    overdraft after their payment — not possible in any serial order.
///
/// Returns (whether every transaction committed, whether the recorded
/// history is serializable).
fn run_example5(level: IsolationLevel) -> (bool, bool) {
    let fixture = Fixture::new(level);
    let db = &fixture.db;
    let mut all_ok = true;

    // Step 1.
    let mut t = db.begin();
    let step1 = fixture.new_order(&mut t, 200).and_then(|_| t.commit());
    all_ok &= step1.is_ok();

    // Step 2: Credit Check starts and performs its reads now.
    let mut cc = db.begin();
    let read_both = |cc: &mut serializable_si::Transaction| -> serializable_si::Result<i64> {
        Ok(get_i64(cc, &fixture.t, b"c_balance") + get_i64(cc, &fixture.t, b"open_orders"))
    };
    let cc_reads = read_both(&mut cc);
    let cc_usable = cc_reads.is_ok();

    // Step 3: Payment commits concurrently.
    let mut pay = db.begin();
    let step3 = fixture.payment(&mut pay, 500).and_then(|_| pay.commit());
    all_ok &= step3.is_ok();

    // Step 4: another New Order commits concurrently with the credit check.
    let mut no2 = db.begin();
    let step4 = fixture.new_order(&mut no2, 100).and_then(|_| no2.commit());
    all_ok &= step4.is_ok();

    // Step 5: the Credit Check writes the flag computed from its snapshot.
    let step5 = if cc_usable {
        let total = cc_reads.unwrap();
        let flag: &[u8] = if total > 1000 { b"BC" } else { b"GC" };
        cc.put(&fixture.t, b"c_credit", flag)
            .and_then(|_| cc.commit())
    } else {
        Err(serializable_si::Error::TransactionClosed)
    };
    all_ok &= step5.is_ok();

    let report: MvsgReport = db.history().unwrap().analyze();
    (all_ok, report.is_serializable())
}

#[test]
fn example5_interleaving_commits_and_is_nonserializable_under_si() {
    let (all_committed, serializable) = run_example5(IsolationLevel::SnapshotIsolation);
    assert!(all_committed, "plain SI lets every step commit");
    assert!(
        !serializable,
        "the committed history must contain a cycle (this is Example 5)"
    );
}

#[test]
fn example5_interleaving_is_broken_up_by_serializable_si() {
    let (all_committed, serializable) = run_example5(IsolationLevel::SerializableSnapshotIsolation);
    assert!(
        !all_committed,
        "Serializable SI must abort at least one participant"
    );
    assert!(serializable, "whatever did commit must be serializable");
}

#[test]
fn full_tpcc_workload_under_ssi_keeps_history_serializable() {
    use serializable_si::workloads::tpcc::ScaleFactor;
    use serializable_si::{run_workload, RunConfig, TpccConfig, TpccWorkload};
    use std::time::Duration;

    let db = Database::open(Options::default().with_history());
    let workload = TpccWorkload::setup(
        &db,
        TpccConfig {
            scale: ScaleFactor::test_scale(1),
            skip_ytd_updates: false,
            stock_level_mix: false,
            new_order_rollback: 0.01,
        },
    );
    let stats = run_workload(
        &db,
        &workload,
        &RunConfig {
            mpl: 6,
            warmup: Duration::from_millis(50),
            duration: Duration::from_secs(2),
            seed: 1,
        },
    );
    assert!(stats.commits > 0);
    let report = db.history().unwrap().analyze();
    assert!(
        report.is_serializable(),
        "TPC-C++ under Serializable SI must stay serializable; cycle: {:?}",
        report.cycle
    );
}
