//! Crash recovery: rebuild the committed state of a durable directory into
//! a fresh catalog (invariants in the crate docs).

use std::path::Path;

use ssi_common::{TableId, Timestamp};
use ssi_storage::{Catalog, IndexKeySpec, Table};

use crate::checkpoint::{load_snapshot, RECOVERY_TXN_ID};
use crate::error::{ctx, WalError, WalOp, WalResult};
use crate::record::{decode_stream, CommitRecord, Record};
use crate::vfs::{StdVfs, Vfs};
use crate::{is_snapshot_tmp_name, list_segments, list_snapshots};

/// What recovery found and rebuilt.
#[derive(Clone, Debug, Default)]
pub struct Recovered {
    /// Timestamp of the snapshot recovery started from (0 = none).
    pub snapshot_ts: Timestamp,
    /// Highest committed timestamp restored; the engine must restore its
    /// commit/begin clocks to at least this value.
    pub max_commit_ts: Timestamp,
    /// Commit records replayed from the log (beyond the snapshot).
    pub txns_replayed: u64,
    /// Log segments scanned.
    pub segments_scanned: u64,
    /// True if a segment ended in a torn tail (half-written frame) that was
    /// discarded.
    pub torn_tail: bool,
    /// Orphaned checkpoint temp files (`snapshot-*.tmp`) deleted. A crash
    /// or I/O failure mid-checkpoint leaves one; they are never valid
    /// snapshots and recovery sweeps them.
    pub tmp_files_removed: u64,
    /// Duplicate commit records dropped. The flusher's re-emission retry
    /// path can write a commit's frame into a fresh segment while an
    /// earlier copy already reached the old one; recovery keeps one.
    pub duplicate_commits: u64,
    /// First free segment sequence number: the reopened log appends here.
    pub next_segment_seq: u64,
}

/// [`recover_into_with`] on the production VFS.
pub fn recover_into(dir: &Path, catalog: &Catalog) -> WalResult<Recovered> {
    recover_into_with(&StdVfs, dir, catalog)
}

/// Rebuilds the committed state persisted in `dir` into `catalog`:
///
/// 1. delete orphaned checkpoint temp files (a crashed or failed
///    checkpoint leaves `snapshot-*.tmp` behind; never valid state);
/// 2. load the newest snapshot — a snapshot that exists but does not
///    decode is a hard error, because the segments it covers are pruned
///    and nothing can fill the gap;
/// 3. scan every log segment in sequence order, stopping a segment at the
///    first torn or corrupt frame;
/// 4. apply create-table records, then replay every whole commit record
///    with `ts >` the snapshot timestamp, in commit-timestamp order —
///    deduplicated by commit timestamp, since the flusher's re-emission
///    retry can leave the same commit framed in two segments — so each
///    key's version chain is rebuilt newest-first.
///
/// Replayed versions are installed committed at their original timestamps
/// under the reserved [`RECOVERY_TXN_ID`], so running recovery twice over
/// the same directory yields the same state (idempotence), and a snapshot
/// taken by a later checkpoint round-trips exactly.
///
/// Every transaction the pre-crash engine acknowledged as durably
/// committed is recovered: its record was fsynced before `commit`
/// returned (group-commit mode), records are whole-transaction frames,
/// and the log is timestamp-ordered — a torn tail can only remove a
/// suffix of *unacknowledged* commits.
pub fn recover_into_with(vfs: &dyn Vfs, dir: &Path, catalog: &Catalog) -> WalResult<Recovered> {
    let mut recovered = Recovered::default();

    // 1. Sweep checkpoint temp litter. Deletion is best-effort per file
    // (a tmp that cannot be removed is merely ignored — it can never be
    // mistaken for a snapshot), but the directory listing itself must
    // succeed or nothing below can be trusted.
    for name in ctx(vfs.read_dir(dir), WalOp::Read, dir)? {
        if is_snapshot_tmp_name(&name) && vfs.remove_file(&dir.join(name)).is_ok() {
            recovered.tmp_files_removed += 1;
        }
    }

    // 2. The newest snapshot. It must decode: checkpointing prunes the
    // segments a snapshot covers, so "skip the corrupt snapshot" would
    // not fall back to anything — it would silently recover a gapped,
    // near-empty state and report success. A snapshot that exists but
    // does not decode is therefore a hard recovery error. (Older
    // leftover snapshots — a crash between rename and prune — are
    // equally unusable: their covering segments may already be gone.)
    let snapshots = ctx(list_snapshots(vfs, dir), WalOp::Read, dir)?;
    let snapshot = match snapshots.last() {
        None => None,
        Some((ts, path)) => Some(load_snapshot(vfs, path).ok_or_else(|| {
            WalError::corrupt(
                path,
                format!(
                    "checkpoint snapshot at ts {ts} exists but is corrupt; \
                     refusing to recover a gapped state"
                ),
            )
        })?),
    };
    if let Some((ts, tables)) = snapshot {
        recovered.snapshot_ts = ts;
        recovered.max_commit_ts = ts;
        for table in tables {
            let handle = catalog
                .create_table_with_id(TableId(table.id), &table.name)
                .map_err(|e| WalError::corrupt(dir, format!("snapshot catalog clash: {e}")))?;
            for (key, commit_ts, value) in table.rows {
                install_committed(&handle, &key, commit_ts, Some(value));
            }
        }
    }

    // 3. Scan segments; collect whole commit records past the snapshot.
    //
    // A torn or corrupt frame can only be the tail of the segment that was
    // current when a crash hit — segments are append-only and never
    // reopened for writing. So corruption ends *that segment's* prefix,
    // but later segments (written by later incarnations that already
    // recovered past the same tear) are fully trustworthy and must still
    // be replayed: breaking out of the whole scan here would silently drop
    // acknowledged commits from every post-reopen segment. The torn tail
    // itself is truncated away (best-effort) so the garbage bytes are not
    // left in front of nothing forever.
    let mut commits: Vec<CommitRecord> = Vec::new();
    let segments = ctx(list_segments(vfs, dir), WalOp::Read, dir)?;
    recovered.next_segment_seq = segments.last().map_or(1, |(seq, _)| seq + 1);
    for (_, path) in &segments {
        recovered.segments_scanned += 1;
        let bytes = ctx(vfs.read(path), WalOp::Read, path)?;
        let (records, valid_prefix, err) = decode_stream(&bytes);
        if err.is_some() {
            recovered.torn_tail = true;
            truncate_torn_tail(vfs, path, valid_prefix as u64);
        }
        for record in records {
            match record {
                Record::CreateTable { table, name } => {
                    // Idempotent: the snapshot (or an earlier segment, or a
                    // re-emitted duplicate frame) may already have created
                    // it.
                    let _ = catalog.create_table_with_id(table, &name);
                }
                Record::CreateIndex {
                    index,
                    table,
                    name,
                    unique,
                    spec,
                } => {
                    // Registration backfills over whatever chains are
                    // resident now (the snapshot); commits replayed later
                    // maintain entries through `install_version`, so the
                    // apply order is immaterial. A missing base table means
                    // its create record was lost with a torn tail — the
                    // index record was logged after it, so skipping is the
                    // same prefix-loss recovery commits get. The spec is
                    // CRC-covered; an undecodable one is structural
                    // corruption and skipping it just drops the index.
                    match (catalog.table_by_id(table), IndexKeySpec::decode(&spec)) {
                        (Ok(handle), Some(spec)) => {
                            let _ =
                                catalog.create_index_with_id(index, &name, &handle, unique, spec);
                        }
                        _ => recovered.torn_tail = true,
                    }
                }
                Record::Commit(commit) => {
                    if commit.commit_ts > recovered.snapshot_ts {
                        commits.push(commit);
                    }
                }
            }
        }
    }

    // 4. Replay in commit-timestamp order (the log already is, per the
    // sealing protocol; sorting makes recovery robust to reordered
    // segments too). Commit timestamps are unique — the publication clock
    // hands each commit its own tick — so two records with the same
    // timestamp are the same commit, framed twice by the flusher's
    // re-emission retry; keep the first. Write order within a transaction
    // is preserved.
    commits.sort_by_key(|c| c.commit_ts);
    let before = commits.len();
    commits.dedup_by_key(|c| c.commit_ts);
    recovered.duplicate_commits = (before - commits.len()) as u64;
    for commit in commits {
        // The clock must resume past *every* timestamp present in the log
        // — including commits skipped below — or post-recovery commits
        // would reuse timestamps already occupied by logged records.
        recovered.max_commit_ts = recovered.max_commit_ts.max(commit.commit_ts);
        if replay_commit(catalog, &commit).is_err() {
            // A commit naming an unknown table: its create record was lost
            // with a torn tail (creates are logged *before* the table is
            // reachable by any writer — log-first — so only tail loss
            // produces this). Skip just this commit — later commits
            // against known tables are acknowledged, valid data and must
            // still replay.
            recovered.torn_tail = true;
            continue;
        }
        recovered.txns_replayed += 1;
    }
    Ok(recovered)
}

/// Cuts a segment back to its valid frame prefix after a torn tail was
/// found. Best-effort: if the truncation cannot be performed (read-only
/// filesystem, permissions) recovery still works — `decode_stream` stops
/// at the same point every time — the garbage just stays on disk.
fn truncate_torn_tail(vfs: &dyn Vfs, path: &Path, valid_prefix: u64) {
    let result = vfs.open_write(path).and_then(|file| {
        file.set_len(valid_prefix)?;
        file.sync_all()
    });
    let _ = result;
}

fn replay_commit(catalog: &Catalog, commit: &CommitRecord) -> Result<(), ()> {
    // Resolve all tables first so a commit is applied all-or-nothing.
    let mut tables = Vec::with_capacity(commit.writes.len());
    for write in &commit.writes {
        tables.push(catalog.table_by_id(write.table).map_err(|_| ())?);
    }
    for (write, table) in commit.writes.iter().zip(tables) {
        install_committed(&table, &write.key, commit.commit_ts, write.value.clone());
    }
    Ok(())
}

fn install_committed(
    table: &std::sync::Arc<Table>,
    key: &[u8],
    commit_ts: Timestamp,
    value: Option<Vec<u8>>,
) {
    let version = table.install_version(key, RECOVERY_TXN_ID, value);
    version.mark_committed(commit_ts);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{SyncPolicy, WalWriter};
    use crate::record::WriteEntry;
    use crate::testutil::temp_dir;
    use crate::{Checkpointer, WalErrorKind};
    use ssi_common::TxnId;
    use std::ops::Bound;

    fn put(wal: &WalWriter, ts: Timestamp, key: &[u8], value: &[u8]) {
        wal.submit(
            ts,
            TxnId(ts),
            vec![WriteEntry {
                table: TableId(1),
                key: key.to_vec(),
                value: Some(value.to_vec()),
            }],
        );
        wal.seal_upto(ts).unwrap();
    }

    fn dump(catalog: &Catalog, name: &str, at: Timestamp) -> Vec<(Vec<u8>, Vec<u8>)> {
        catalog
            .table(name)
            .unwrap()
            .scan(Bound::Unbounded, Bound::Unbounded, TxnId(999), at)
            .into_iter()
            .filter_map(|e| e.value.map(|v| (e.key, v.to_vec())))
            .collect()
    }

    #[test]
    fn log_only_recovery_rebuilds_tables_and_rows() {
        let dir = temp_dir("rec-log");
        {
            let wal = WalWriter::open(&dir, 1, SyncPolicy::Never).unwrap();
            wal.append_create_table(TableId(1), "t").unwrap();
            put(&wal, 2, b"a", b"1");
            put(&wal, 3, b"a", b"2");
            put(&wal, 4, b"b", b"9");
            wal.sync().unwrap();
        }
        let catalog = Catalog::new();
        let rec = recover_into(&dir, &catalog).unwrap();
        assert_eq!(rec.max_commit_ts, 4);
        assert_eq!(rec.txns_replayed, 3);
        assert!(!rec.torn_tail);
        assert_eq!(rec.next_segment_seq, 2);
        // Newest value wins; the chain keeps history (snapshot at ts 2
        // still sees the old value).
        assert_eq!(
            dump(&catalog, "t", 10),
            vec![
                (b"a".to_vec(), b"2".to_vec()),
                (b"b".to_vec(), b"9".to_vec())
            ]
        );
        assert_eq!(dump(&catalog, "t", 2), vec![(b"a".to_vec(), b"1".to_vec())]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tombstones_replay_as_deletes() {
        let dir = temp_dir("rec-tomb");
        {
            let wal = WalWriter::open(&dir, 1, SyncPolicy::Never).unwrap();
            wal.append_create_table(TableId(1), "t").unwrap();
            put(&wal, 2, b"a", b"1");
            wal.submit(
                3,
                TxnId(3),
                vec![WriteEntry {
                    table: TableId(1),
                    key: b"a".to_vec(),
                    value: None,
                }],
            );
            wal.seal_upto(3).unwrap();
            wal.sync().unwrap();
        }
        let catalog = Catalog::new();
        recover_into(&dir, &catalog).unwrap();
        assert_eq!(dump(&catalog, "t", 10), vec![]);
        assert_eq!(dump(&catalog, "t", 2), vec![(b"a".to_vec(), b"1".to_vec())]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_recovers_exact_prefix() {
        let dir = temp_dir("rec-torn");
        {
            let wal = WalWriter::open(&dir, 1, SyncPolicy::Never).unwrap();
            wal.append_create_table(TableId(1), "t").unwrap();
            for ts in 2..=6u64 {
                put(&wal, ts, &[ts as u8], b"v");
            }
            wal.sync().unwrap();
        }
        let path = crate::segment_path(&dir, 1);
        let full = std::fs::read(&path).unwrap();
        // Cut the log at every byte; recovery must always succeed and
        // rebuild a prefix of the committed transactions.
        let mut last_count = 0;
        for cut in 0..=full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let catalog = Catalog::new();
            let rec = recover_into(&dir, &catalog).unwrap();
            assert!(rec.txns_replayed >= last_count || cut == full.len());
            if cut < full.len() {
                last_count = rec.txns_replayed.max(last_count);
            }
            // Replayed prefix: exactly txns 2..2+n.
            if let Ok(t) = catalog.table("t") {
                let rows = t.scan(Bound::Unbounded, Bound::Unbounded, TxnId(99), 100);
                assert_eq!(rows.len() as u64, rec.txns_replayed);
            } else {
                assert_eq!(rec.txns_replayed, 0);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn segments_after_a_torn_segment_still_replay() {
        // Regression: a torn tail in segment N must not swallow segments
        // written *after* a reopen (their commits were acknowledged by a
        // later incarnation and are fully valid). The torn garbage itself
        // must be truncated away.
        let dir = temp_dir("rec-torn-multiseg");
        {
            let wal = WalWriter::open(&dir, 1, SyncPolicy::Never).unwrap();
            wal.append_create_table(TableId(1), "t").unwrap();
            put(&wal, 2, b"a", b"1");
            put(&wal, 3, b"b", b"2");
            wal.sync().unwrap();
        }
        // Crash: garbage half-frame at the tail of segment 1.
        let seg1 = crate::segment_path(&dir, 1);
        let valid_len = std::fs::metadata(&seg1).unwrap().len();
        let mut bytes = std::fs::read(&seg1).unwrap();
        bytes.extend_from_slice(&[0xDE, 0xAD, 0xBE, 0xEF, 0x01]);
        std::fs::write(&seg1, &bytes).unwrap();

        // Reopen-incarnation: recovery sees the tear, then new acknowledged
        // commits land in segment 2.
        {
            let catalog = Catalog::new();
            let rec = recover_into(&dir, &catalog).unwrap();
            assert!(rec.torn_tail);
            assert_eq!(rec.txns_replayed, 2);
            let wal = WalWriter::open(&dir, rec.next_segment_seq, SyncPolicy::Never).unwrap();
            put(&wal, 4, b"c", b"3");
            wal.sync().unwrap();
        }

        // Final recovery: the segment-2 commit must be there.
        let catalog = Catalog::new();
        let rec = recover_into(&dir, &catalog).unwrap();
        assert_eq!(rec.txns_replayed, 3, "post-reopen commit was dropped");
        assert_eq!(rec.max_commit_ts, 4);
        assert_eq!(
            dump(&catalog, "t", 10),
            vec![
                (b"a".to_vec(), b"1".to_vec()),
                (b"b".to_vec(), b"2".to_vec()),
                (b"c".to_vec(), b"3".to_vec()),
            ]
        );
        // The garbage tail was truncated off segment 1 by the first
        // recovery, so the tear does not resurface.
        assert_eq!(std::fs::metadata(&seg1).unwrap().len(), valid_len);
        assert!(!rec.torn_tail, "truncated tear must not be reported again");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_index_records_replay_and_backfill() {
        use ssi_storage::{IndexKeyPart, IndexKeySpec};
        let spec = IndexKeySpec {
            layout: vec![],
            parts: vec![IndexKeyPart::PrimaryKeySlice(0, 1)],
        };
        let dir = temp_dir("rec-index");
        {
            let wal = WalWriter::open(&dir, 1, SyncPolicy::Never).unwrap();
            wal.append_create_table(TableId(1), "t").unwrap();
            put(&wal, 2, b"a", b"1");
            // The index is created mid-log: the commit before it must be
            // covered by backfill, the ones after by replay maintenance.
            wal.append_create_index(TableId(2), TableId(1), "t_by_pk", false, spec.encode())
                .unwrap();
            put(&wal, 3, b"b", b"2");
            put(&wal, 4, b"b", b"3");
            wal.submit(
                5,
                TxnId(5),
                vec![WriteEntry {
                    table: TableId(1),
                    key: b"a".to_vec(),
                    value: None,
                }],
            );
            wal.seal_upto(5).unwrap();
            wal.sync().unwrap();
        }
        let catalog = Catalog::new();
        let rec = recover_into(&dir, &catalog).unwrap();
        assert_eq!(rec.txns_replayed, 4);
        assert!(!rec.torn_tail);
        let index = catalog.index("t_by_pk").unwrap();
        assert_eq!(index.id(), TableId(2));
        assert_eq!(index.table_id(), TableId(1));
        // `a` has a live version (the tombstone is a later version of the
        // same chain, but the committed v1 is still resident) and `b` has
        // two resident versions collapsing onto one entry.
        assert_eq!(index.entry_count(), 2);
        // Idempotence: recovering again (create-index record re-applied
        // against an existing registration) must not double the refcounts.
        let catalog2 = Catalog::new();
        recover_into(&dir, &catalog2).unwrap();
        assert_eq!(catalog2.index("t_by_pk").unwrap().entry_count(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_plus_log_recovery_and_idempotence() {
        let dir = temp_dir("rec-snap");
        // Build state, checkpoint at ts 3, then two more commits in the log.
        {
            let wal = WalWriter::open(&dir, 1, SyncPolicy::Never).unwrap();
            wal.append_create_table(TableId(1), "t").unwrap();
            put(&wal, 2, b"a", b"1");
            put(&wal, 3, b"b", b"2");
            let catalog = Catalog::new();
            let t = catalog.create_table("t").unwrap();
            for (k, v, ts) in [(b"a", b"1", 2u64), (b"b", b"2", 3)] {
                let ver = t.install_version(k, TxnId(9), Some(v.to_vec()));
                ver.mark_committed(ts);
            }
            let (cut, old_seq) = wal.rotate(|| 3).unwrap();
            Checkpointer::new(&dir).run(&catalog, cut, old_seq).unwrap();
            put(&wal, 4, b"a", b"3");
            put(&wal, 5, b"c", b"4");
            wal.sync().unwrap();
        }
        let catalog = Catalog::new();
        let rec = recover_into(&dir, &catalog).unwrap();
        assert_eq!(rec.snapshot_ts, 3);
        assert_eq!(rec.txns_replayed, 2);
        assert_eq!(rec.max_commit_ts, 5);
        let expected = vec![
            (b"a".to_vec(), b"3".to_vec()),
            (b"b".to_vec(), b"2".to_vec()),
            (b"c".to_vec(), b"4".to_vec()),
        ];
        assert_eq!(dump(&catalog, "t", 10), expected);

        // Idempotence: recovering the same directory again gives the same
        // state and clocks.
        let catalog2 = Catalog::new();
        let rec2 = recover_into(&dir, &catalog2).unwrap();
        assert_eq!(rec2.max_commit_ts, rec.max_commit_ts);
        assert_eq!(rec2.snapshot_ts, rec.snapshot_ts);
        assert_eq!(dump(&catalog2, "t", 10), expected);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshot_is_a_hard_recovery_error() {
        // A snapshot's covering segments are pruned, so "skip the corrupt
        // snapshot" would silently recover a gapped state: recovery must
        // refuse instead.
        let dir = temp_dir("rec-badsnap");
        {
            let wal = WalWriter::open(&dir, 1, SyncPolicy::Never).unwrap();
            wal.append_create_table(TableId(1), "t").unwrap();
            put(&wal, 2, b"a", b"1");
            let catalog = Catalog::new();
            let t = catalog.create_table("t").unwrap();
            let v = t.install_version(b"a", TxnId(9), Some(b"1".to_vec()));
            v.mark_committed(2);
            let (cut, old_seq) = wal.rotate(|| 2).unwrap();
            Checkpointer::new(&dir).run(&catalog, cut, old_seq).unwrap();
        }
        let snap = crate::snapshot_path(&dir, 2);
        let mut bytes = std::fs::read(&snap).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&snap, &bytes).unwrap();

        let catalog = Catalog::new();
        let err = recover_into(&dir, &catalog).unwrap_err();
        assert_eq!(
            err.kind,
            WalErrorKind::Corrupt,
            "recovery must refuse an undecodable snapshot: {err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_directory_recovers_to_empty_state() {
        let dir = temp_dir("rec-empty");
        let catalog = Catalog::new();
        let rec = recover_into(&dir, &catalog).unwrap();
        assert_eq!(rec.max_commit_ts, 0);
        assert_eq!(rec.next_segment_seq, 1);
        assert!(catalog.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn orphaned_checkpoint_tmp_files_are_swept() {
        // A crash (or injected fault) mid-checkpoint leaves a
        // snapshot-*.tmp; recovery must delete it and never read it as a
        // snapshot — even when its contents happen to be a fully valid
        // snapshot image (crash exactly between fsync and rename).
        let dir = temp_dir("rec-orphan-tmp");
        {
            let wal = WalWriter::open(&dir, 1, SyncPolicy::Never).unwrap();
            wal.append_create_table(TableId(1), "t").unwrap();
            put(&wal, 2, b"a", b"1");
            wal.sync().unwrap();
        }
        std::fs::write(dir.join("snapshot-00000000000000ff.tmp"), b"half").unwrap();
        std::fs::write(dir.join("snapshot-0000000000000100.tmp"), b"").unwrap();

        let catalog = Catalog::new();
        let rec = recover_into(&dir, &catalog).unwrap();
        assert_eq!(rec.tmp_files_removed, 2);
        assert_eq!(
            rec.snapshot_ts, 0,
            "tmp files must not be read as snapshots"
        );
        assert_eq!(rec.txns_replayed, 1);
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty());
        // Second recovery: nothing left to sweep.
        let rec2 = recover_into(&dir, &Catalog::new()).unwrap();
        assert_eq!(rec2.tmp_files_removed, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_commit_frames_replay_once() {
        // The flusher's re-emission retry can frame the same commit into
        // two segments (the first copy's fsync failed transiently but the
        // bytes landed). Recovery must apply it once.
        let dir = temp_dir("rec-dup");
        {
            let wal = WalWriter::open(&dir, 1, SyncPolicy::Never).unwrap();
            wal.append_create_table(TableId(1), "t").unwrap();
            put(&wal, 2, b"a", b"1");
            put(&wal, 3, b"b", b"2");
            wal.sync().unwrap();
        }
        // Simulate re-emission: copy segment 1's frames into segment 2.
        let seg1 = std::fs::read(crate::segment_path(&dir, 1)).unwrap();
        std::fs::write(crate::segment_path(&dir, 2), &seg1).unwrap();

        let catalog = Catalog::new();
        let rec = recover_into(&dir, &catalog).unwrap();
        assert_eq!(rec.txns_replayed, 2);
        assert_eq!(rec.duplicate_commits, 2);
        assert_eq!(rec.max_commit_ts, 3);
        assert_eq!(
            dump(&catalog, "t", 10),
            vec![
                (b"a".to_vec(), b"1".to_vec()),
                (b"b".to_vec(), b"2".to_vec())
            ]
        );
        // Each key must carry exactly one version (no duplicate chain
        // entries from the double replay).
        let t = catalog.table("t").unwrap();
        let rows = t.scan(Bound::Unbounded, Bound::Unbounded, TxnId(99), 100);
        assert_eq!(rows.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
