//! Run the sibench microbenchmark (Sec. 5.2 of the thesis): a min-value
//! query and a random-increment update over a table of N rows, comparing the
//! three concurrency-control algorithms.
//!
//! The interesting shape (Figs. 6.6–6.11): SI and Serializable SI keep
//! queries and updates from blocking each other, so their throughput stays
//! close; S2PL serializes the query's shared locks against the update's
//! exclusive locks and falls behind as soon as there is any concurrency,
//! especially for small tables where every update hits a row the query needs.
//!
//! ```bash
//! cargo run --release --example sibench -- [items] [queries_per_update] [mpl] [seconds]
//! ```

use std::time::Duration;

use serializable_si::{run_workload, Database, IsolationLevel, Options, RunConfig, SiBench};

fn main() {
    let mut args = std::env::args().skip(1);
    let items: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(100);
    let queries_per_update: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);
    let mpl: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let seconds: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2);

    println!(
        "sibench: {items} items, {queries_per_update} queries/update, MPL {mpl}, {seconds}s per level\n"
    );
    println!(
        "{:<6} {:>12} {:>12} {:>12} {:>10}",
        "level", "commits/s", "queries", "updates", "aborts"
    );

    for level in IsolationLevel::evaluated() {
        let db = Database::open(Options::default().with_isolation(level));
        let bench = SiBench::setup(&db, items, queries_per_update);
        let stats = run_workload(
            &db,
            &bench,
            &RunConfig {
                mpl,
                warmup: Duration::from_millis(200),
                duration: Duration::from_secs(seconds),
                seed: 7,
            },
        );
        println!(
            "{:<6} {:>12.0} {:>12} {:>12} {:>10}",
            level.label(),
            stats.throughput(),
            stats.per_type_commits.first().copied().unwrap_or(0),
            stats.per_type_commits.get(1).copied().unwrap_or(0),
            stats.cc_aborts(),
        );
    }
}
