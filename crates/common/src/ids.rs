//! Identifier and timestamp types shared across the engine.

use std::fmt;

/// Logical timestamp drawn from the global transaction-manager counter.
///
/// Timestamps order both transaction begins and commits on a single axis, as
/// in the paper: a transaction `T` sees a version `v` iff `commit(creator(v))
/// <= begin(T)`. Timestamp `0` is reserved ("not yet assigned").
pub type Timestamp = u64;

/// The smallest timestamp; used as "not assigned" / "before everything".
pub const TS_ZERO: Timestamp = 0;

/// A timestamp larger than any the engine will ever assign.
pub const TS_INFINITY: Timestamp = u64::MAX;

/// Unique identifier of a transaction for the lifetime of a [`Database`].
///
/// Identifiers are never reused; they are assigned from a monotonically
/// increasing counter and are totally ordered by age (smaller id = older
/// transaction), which the victim-selection policies rely on.
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId(pub u64);

impl TxnId {
    /// Sentinel id used before a real id is known (never assigned to a live
    /// transaction).
    pub const INVALID: TxnId = TxnId(0);

    /// Returns the raw numeric id.
    #[inline]
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// True if this is the [`TxnId::INVALID`] sentinel.
    #[inline]
    pub fn is_valid(self) -> bool {
        self.0 != 0
    }
}

impl fmt::Debug for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Identifier of a table within a database catalog.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TableId(pub u32);

impl TableId {
    /// Returns the raw numeric id.
    #[inline]
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tbl{}", self.0)
    }
}

/// Isolation level requested when beginning a transaction.
///
/// The engine implements the three levels compared throughout the paper's
/// evaluation, plus a read-committed level used to demonstrate weak-isolation
/// anomalies in tests.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum IsolationLevel {
    /// Read committed: reads see the latest committed version at the time of
    /// the read; writes lock. Provided for completeness (Sec. 2.3 of the
    /// thesis discusses weak isolation); not part of the evaluation.
    ReadCommitted,
    /// Classic snapshot isolation (Sec. 2.5): reads from a begin-time
    /// snapshot, first-committer-wins on write/write conflicts, no read
    /// locks. Permits write skew.
    SnapshotIsolation,
    /// Serializable isolation implemented with strict two-phase locking
    /// (Sec. 2.2.1): shared read locks and exclusive write locks held until
    /// commit, gap locks against phantoms.
    StrictTwoPhaseLocking,
    /// The paper's contribution (Ch. 3): snapshot isolation plus SIREAD
    /// locks and rw-antidependency tracking, aborting a transaction whenever
    /// two consecutive rw-edges are detected.
    #[default]
    SerializableSnapshotIsolation,
}

impl IsolationLevel {
    /// Short label used in benchmark reports ("SI", "SSI", "S2PL", "RC").
    pub fn label(self) -> &'static str {
        match self {
            IsolationLevel::ReadCommitted => "RC",
            IsolationLevel::SnapshotIsolation => "SI",
            IsolationLevel::StrictTwoPhaseLocking => "S2PL",
            IsolationLevel::SerializableSnapshotIsolation => "SSI",
        }
    }

    /// True for levels that read from a begin-time snapshot (SI and SSI).
    pub fn uses_snapshot(self) -> bool {
        matches!(
            self,
            IsolationLevel::SnapshotIsolation | IsolationLevel::SerializableSnapshotIsolation
        )
    }

    /// True for the level that acquires blocking shared read locks.
    pub fn uses_read_locks(self) -> bool {
        matches!(self, IsolationLevel::StrictTwoPhaseLocking)
    }

    /// All levels exercised by the paper's evaluation, in the order the
    /// figures list them.
    pub fn evaluated() -> [IsolationLevel; 3] {
        [
            IsolationLevel::SnapshotIsolation,
            IsolationLevel::SerializableSnapshotIsolation,
            IsolationLevel::StrictTwoPhaseLocking,
        ]
    }
}

impl fmt::Display for IsolationLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_id_ordering_matches_age() {
        let older = TxnId(3);
        let younger = TxnId(10);
        assert!(older < younger);
        assert!(older.is_valid());
        assert!(!TxnId::INVALID.is_valid());
    }

    #[test]
    fn txn_id_display() {
        assert_eq!(format!("{}", TxnId(42)), "T42");
        assert_eq!(format!("{:?}", TxnId(42)), "T42");
    }

    #[test]
    fn table_id_debug() {
        assert_eq!(format!("{:?}", TableId(7)), "tbl7");
        assert_eq!(TableId(7).as_u32(), 7);
    }

    #[test]
    fn isolation_labels_are_distinct() {
        let mut labels: Vec<&str> = IsolationLevel::evaluated()
            .iter()
            .map(|l| l.label())
            .collect();
        labels.push(IsolationLevel::ReadCommitted.label());
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn snapshot_levels() {
        assert!(IsolationLevel::SnapshotIsolation.uses_snapshot());
        assert!(IsolationLevel::SerializableSnapshotIsolation.uses_snapshot());
        assert!(!IsolationLevel::StrictTwoPhaseLocking.uses_snapshot());
        assert!(IsolationLevel::StrictTwoPhaseLocking.uses_read_locks());
        assert!(!IsolationLevel::SnapshotIsolation.uses_read_locks());
    }

    #[test]
    fn default_is_ssi() {
        assert_eq!(
            IsolationLevel::default(),
            IsolationLevel::SerializableSnapshotIsolation
        );
    }

    #[test]
    fn timestamp_constants() {
        assert_eq!(TS_ZERO, 0);
        assert_eq!(TS_INFINITY, u64::MAX);
    }
}
