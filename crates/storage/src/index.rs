//! Ordered secondary indexes over the version-chained tables.
//!
//! # Protocol: transactional index maintenance
//!
//! A secondary index is a refcounted ordered map from *entry keys* to the
//! rows that claim them. The entry key is a memcomparable composite of the
//! extracted index key and the row's primary key (see [`encode_entry`]), so
//! one index key can be claimed by many rows (non-unique indexes) and a
//! range scan over an index-key interval is one contiguous entry range.
//!
//! Maintenance is tied to *chain membership*, not to commit state:
//!
//! * [`crate::Table::install_version`] adds one entry reference for the new
//!   version's extracted key (tombstones extract nothing and add nothing);
//! * [`crate::Table::unlink_version`] (abort path) releases the reference —
//!   but only when the version was actually removed from the chain;
//! * version GC ([`crate::Table::purge_old_versions`]) releases one
//!   reference per version it physically drops.
//!
//! The invariant is exact: an entry's refcount equals the number of
//! *resident* chain versions of its primary key whose payload extracts to
//! the entry's index key. Superseded entries therefore linger until GC
//! reclaims the superseded row versions — which is precisely the safety
//! property predicate reads need: as long as any live snapshot can see a
//! row version, the entry that leads a scan to it is still present. Scans
//! compensate for the lingering side by *re-extracting* from the row
//! version actually visible to their snapshot and filtering entries that no
//! longer match; uniqueness checks likewise consult the newest committed
//! row version rather than trusting entry presence.
//!
//! Because entries carry no committed/uncommitted state of their own, crash
//! recovery needs no separate index log: replaying version installs (and
//! create-index backfill over already-loaded chains) rebuilds exactly the
//! refcounts the invariant demands.

use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::Arc;

use parking_lot::RwLock;

use ssi_common::TableId;

/// Typed field of a row-value layout, in [`ssi_common::encoding::ValueWriter`]
/// order. The index only needs enough type information to *skip* fields and
/// to re-encode the extracted one order-preservingly.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FieldKind {
    /// 4-byte little-endian unsigned.
    U32,
    /// 8-byte little-endian unsigned.
    U64,
    /// 8-byte little-endian signed.
    I64,
    /// 8-byte little-endian float.
    F64,
    /// `u32` little-endian length prefix + raw bytes.
    Str,
}

impl FieldKind {
    fn tag(self) -> u8 {
        match self {
            FieldKind::U32 => 0,
            FieldKind::U64 => 1,
            FieldKind::I64 => 2,
            FieldKind::F64 => 3,
            FieldKind::Str => 4,
        }
    }

    fn from_tag(tag: u8) -> Option<FieldKind> {
        Some(match tag {
            0 => FieldKind::U32,
            1 => FieldKind::U64,
            2 => FieldKind::I64,
            3 => FieldKind::F64,
            4 => FieldKind::Str,
            _ => return None,
        })
    }
}

/// One component of an extracted index key.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IndexKeyPart {
    /// A byte range `[start, end)` of the primary key, copied verbatim
    /// (primary keys are already order-preserving composites).
    PrimaryKeySlice(u32, u32),
    /// The value field at this ordinal of the layout, re-encoded
    /// order-preservingly (big-endian ints, sign-biased `i64`/`f64`,
    /// terminator-escaped strings).
    ValueField(u32),
}

/// How to derive an index key from a `(primary key, value)` pair.
#[derive(Clone, PartialEq, Debug)]
pub struct IndexKeySpec {
    /// Field layout of the indexed table's values.
    pub layout: Vec<FieldKind>,
    /// Components of the index key, concatenated in order.
    pub parts: Vec<IndexKeyPart>,
}

impl IndexKeySpec {
    /// Extracts the order-preserving index key of a row, or `None` when the
    /// row does not conform to the layout (such rows are simply not
    /// indexed; recovery must tolerate arbitrary bytes).
    pub fn extract(&self, pk: &[u8], value: &[u8]) -> Option<Vec<u8>> {
        let mut out = Vec::new();
        for part in &self.parts {
            match *part {
                IndexKeyPart::PrimaryKeySlice(start, end) => {
                    let (start, end) = (start as usize, end as usize);
                    if start > end || end > pk.len() {
                        return None;
                    }
                    out.extend_from_slice(&pk[start..end]);
                }
                IndexKeyPart::ValueField(ordinal) => {
                    let (kind, bytes) = self.field(value, ordinal as usize)?;
                    match kind {
                        FieldKind::U32 => {
                            let v = u32::from_le_bytes(bytes.try_into().ok()?);
                            out.extend_from_slice(&v.to_be_bytes());
                        }
                        FieldKind::U64 => {
                            let v = u64::from_le_bytes(bytes.try_into().ok()?);
                            out.extend_from_slice(&v.to_be_bytes());
                        }
                        FieldKind::I64 => {
                            let v = i64::from_le_bytes(bytes.try_into().ok()?);
                            out.extend_from_slice(&((v as u64) ^ (1 << 63)).to_be_bytes());
                        }
                        FieldKind::F64 => {
                            // Standard total-order trick: flip all bits of
                            // negatives, just the sign bit of positives.
                            let raw = u64::from_le_bytes(bytes.try_into().ok()?);
                            let biased = if raw & (1 << 63) != 0 {
                                !raw
                            } else {
                                raw ^ (1 << 63)
                            };
                            out.extend_from_slice(&biased.to_be_bytes());
                        }
                        FieldKind::Str => {
                            // Same escape scheme as `KeyBuilder::str`.
                            for &b in bytes {
                                if b == 0 {
                                    out.extend_from_slice(&[0x00, 0x01]);
                                } else {
                                    out.push(b);
                                }
                            }
                            out.extend_from_slice(&[0x00, 0x00]);
                        }
                    }
                }
            }
        }
        Some(out)
    }

    /// Locates field `ordinal` in an encoded value: walks the layout with
    /// checked reads, returning the field's kind and raw (little-endian)
    /// bytes.
    fn field<'v>(&self, value: &'v [u8], ordinal: usize) -> Option<(FieldKind, &'v [u8])> {
        let mut pos = 0usize;
        for (i, &kind) in self.layout.iter().enumerate() {
            let len = match kind {
                FieldKind::U32 => 4,
                FieldKind::U64 | FieldKind::I64 | FieldKind::F64 => 8,
                FieldKind::Str => {
                    let pfx = value.get(pos..pos + 4)?;
                    pos += 4;
                    u32::from_le_bytes(pfx.try_into().ok()?) as usize
                }
            };
            let bytes = value.get(pos..pos + len)?;
            if i == ordinal {
                return Some((kind, bytes));
            }
            pos += len;
        }
        None
    }

    /// Serializes the spec to opaque bytes (stored in the WAL create-index
    /// record and shipped over the wire).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.layout.len() + self.parts.len() * 9);
        out.extend_from_slice(&(self.layout.len() as u32).to_le_bytes());
        for kind in &self.layout {
            out.push(kind.tag());
        }
        out.extend_from_slice(&(self.parts.len() as u32).to_le_bytes());
        for part in &self.parts {
            match *part {
                IndexKeyPart::PrimaryKeySlice(start, end) => {
                    out.push(0);
                    out.extend_from_slice(&start.to_le_bytes());
                    out.extend_from_slice(&end.to_le_bytes());
                }
                IndexKeyPart::ValueField(ordinal) => {
                    out.push(1);
                    out.extend_from_slice(&ordinal.to_le_bytes());
                }
            }
        }
        out
    }

    /// Inverse of [`IndexKeySpec::encode`].
    pub fn decode(bytes: &[u8]) -> Option<IndexKeySpec> {
        let mut pos = 0usize;
        let u32_at = |pos: &mut usize| -> Option<u32> {
            let b = bytes.get(*pos..*pos + 4)?;
            *pos += 4;
            Some(u32::from_le_bytes(b.try_into().ok()?))
        };
        let n_layout = u32_at(&mut pos)? as usize;
        let mut layout = Vec::with_capacity(n_layout);
        for _ in 0..n_layout {
            layout.push(FieldKind::from_tag(*bytes.get(pos)?)?);
            pos += 1;
        }
        let n_parts = u32_at(&mut pos)? as usize;
        let mut parts = Vec::with_capacity(n_parts);
        for _ in 0..n_parts {
            let tag = *bytes.get(pos)?;
            pos += 1;
            parts.push(match tag {
                0 => {
                    let start = u32_at(&mut pos)?;
                    let end = u32_at(&mut pos)?;
                    IndexKeyPart::PrimaryKeySlice(start, end)
                }
                1 => IndexKeyPart::ValueField(u32_at(&mut pos)?),
                _ => return None,
            });
        }
        if pos != bytes.len() {
            return None;
        }
        Some(IndexKeySpec { layout, parts })
    }
}

/// Encodes an index entry key: the escaped index key, a terminator, then the
/// raw primary key. `0x00` bytes of the index key are escaped as
/// `0x00 0xFF`, the terminator is `0x00 0x00`, so (a) distinct
/// `(index_key, pk)` pairs map to distinct entry keys, and (b) entry order
/// equals `(index_key, pk)` lexicographic order — which is what makes
/// [`entry_range`] a single contiguous `BTreeMap` range.
pub fn encode_entry(index_key: &[u8], pk: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(index_key.len() + pk.len() + 2);
    escape_into(index_key, &mut out);
    out.extend_from_slice(&[0x00, 0x00]);
    out.extend_from_slice(pk);
    out
}

fn escape_into(index_key: &[u8], out: &mut Vec<u8>) {
    for &b in index_key {
        if b == 0 {
            out.extend_from_slice(&[0x00, 0xFF]);
        } else {
            out.push(b);
        }
    }
}

/// Decodes an entry key back into `(index_key, pk)`; `None` if malformed.
pub fn decode_entry(entry: &[u8]) -> Option<(Vec<u8>, Vec<u8>)> {
    let mut index_key = Vec::new();
    let mut i = 0usize;
    while i < entry.len() {
        let b = entry[i];
        if b != 0 {
            index_key.push(b);
            i += 1;
            continue;
        }
        match entry.get(i + 1)? {
            0xFF => {
                index_key.push(0);
                i += 2;
            }
            0x00 => return Some((index_key, entry[i + 2..].to_vec())),
            _ => return None,
        }
    }
    None
}

/// Maps index-*key* bounds onto entry-space bounds, so that the resulting
/// entry range contains exactly the entries whose index key falls in the
/// requested interval (for every primary key).
pub fn entry_range(lower: Bound<&[u8]>, upper: Bound<&[u8]>) -> (Bound<Vec<u8>>, Bound<Vec<u8>>) {
    let with_sep = |key: &[u8], sep: [u8; 2]| {
        let mut out = Vec::with_capacity(key.len() + 2);
        escape_into(key, &mut out);
        out.extend_from_slice(&sep);
        out
    };
    let lo = match lower {
        // First possible entry of `a` is esc(a) ++ 00 00 ++ "" (empty pk).
        Bound::Included(a) => Bound::Included(with_sep(a, [0x00, 0x00])),
        // Every entry of `a` is below esc(a) ++ 00 FF; every entry of a
        // strictly greater key is at or above it (continuations after
        // esc(a) sort terminator 00 00 < escape 00 FF < literal 01..FF).
        Bound::Excluded(a) => Bound::Included(with_sep(a, [0x00, 0xFF])),
        Bound::Unbounded => Bound::Unbounded,
    };
    let hi = match upper {
        Bound::Included(b) => Bound::Excluded(with_sep(b, [0x00, 0xFF])),
        Bound::Excluded(b) => Bound::Excluded(with_sep(b, [0x00, 0x00])),
        Bound::Unbounded => Bound::Unbounded,
    };
    (lo, hi)
}

/// Static definition of a secondary index.
#[derive(Clone, Debug)]
pub struct IndexDef {
    /// Index id, drawn from the same id space as table ids so lock keys and
    /// history records address index space without a new key type.
    pub id: TableId,
    /// Index name (shares the catalog's name namespace with tables).
    pub name: String,
    /// The indexed table.
    pub table: TableId,
    /// Unique indexes additionally enforce at most one live row per index
    /// key (checked by the engine under an index-point lock).
    pub unique: bool,
    /// Key-extraction recipe.
    pub spec: IndexKeySpec,
}

/// A secondary index: definition plus the refcounted entry map (see the
/// module docs for the maintenance invariant).
pub struct Index {
    def: IndexDef,
    entries: RwLock<BTreeMap<Arc<[u8]>, usize>>,
}

impl Index {
    /// Creates an empty index.
    pub fn new(def: IndexDef) -> Self {
        Index {
            def,
            entries: RwLock::new(BTreeMap::new()),
        }
    }

    /// Index id (same id space as tables).
    pub fn id(&self) -> TableId {
        self.def.id
    }

    /// Index name.
    pub fn name(&self) -> &str {
        &self.def.name
    }

    /// Id of the indexed table.
    pub fn table_id(&self) -> TableId {
        self.def.table
    }

    /// True for unique indexes.
    pub fn unique(&self) -> bool {
        self.def.unique
    }

    /// The key-extraction spec.
    pub fn spec(&self) -> &IndexKeySpec {
        &self.def.spec
    }

    /// Extracts the entry key a row of this table claims, or `None` for
    /// unindexable rows.
    pub fn entry_of(&self, pk: &[u8], value: &[u8]) -> Option<Vec<u8>> {
        self.def
            .spec
            .extract(pk, value)
            .map(|ik| encode_entry(&ik, pk))
    }

    /// Adds one resident-version reference to an entry, creating it at
    /// refcount 1 if absent.
    pub fn add_ref(&self, entry: &[u8]) {
        let mut entries = self.entries.write();
        if let Some(refs) = entries.get_mut(entry) {
            *refs += 1;
        } else {
            entries.insert(Arc::from(entry), 1);
        }
    }

    /// Releases one resident-version reference, removing the entry when the
    /// count reaches zero. A miss is a bug in the maintenance protocol; it
    /// is ignored in release builds (the entry is already gone, which is
    /// the direction safety cares about) but asserted in debug builds.
    pub fn release_ref(&self, entry: &[u8]) {
        let mut entries = self.entries.write();
        match entries.get_mut(entry) {
            Some(refs) if *refs > 1 => *refs -= 1,
            Some(_) => {
                entries.remove(entry);
            }
            None => debug_assert!(false, "released an index entry reference twice"),
        }
    }

    /// All entry keys in an *entry-space* range (callers map index-key
    /// bounds through [`entry_range`] first), in order, up to `limit`.
    pub fn entries_in_range(
        &self,
        lower: Bound<&[u8]>,
        upper: Bound<&[u8]>,
        limit: Option<usize>,
    ) -> Vec<Arc<[u8]>> {
        let entries = self.entries.read();
        let iter = entries
            .range::<[u8], _>((lower, upper))
            .map(|(k, _)| k.clone());
        match limit {
            Some(n) => iter.take(n).collect(),
            None => iter.collect(),
        }
    }

    /// The first entry strictly after `entry`, if any (the gap-lock anchor
    /// for inserts into this index).
    pub fn next_entry_after(&self, entry: &[u8]) -> Option<Arc<[u8]>> {
        self.entries
            .read()
            .range::<[u8], _>((Bound::Excluded(entry), Bound::Unbounded))
            .next()
            .map(|(k, _)| k.clone())
    }

    /// Number of distinct entries currently present.
    pub fn entry_count(&self) -> usize {
        self.entries.read().len()
    }
}

impl std::fmt::Debug for Index {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Index")
            .field("name", &self.def.name)
            .field("unique", &self.def.unique)
            .field("entries", &self.entry_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> IndexKeySpec {
        IndexKeySpec {
            layout: vec![FieldKind::I64, FieldKind::Str, FieldKind::U32],
            parts: vec![IndexKeyPart::ValueField(1)],
        }
    }

    fn value(balance: i64, name: &str, n: u32) -> Vec<u8> {
        ssi_common::encoding::ValueWriter::new()
            .i64(balance)
            .str(name)
            .u32(n)
            .build()
    }

    #[test]
    fn extraction_walks_the_layout() {
        let s = spec();
        let k = s.extract(b"pk", &value(-5, "smith", 7)).unwrap();
        let k2 = s.extract(b"pk", &value(99, "smith", 0)).unwrap();
        assert_eq!(k, k2, "only the extracted field matters");
        assert!(s.extract(b"pk", b"short").is_none(), "malformed row");
    }

    #[test]
    fn extracted_keys_preserve_field_order() {
        let s = spec();
        let k = |name: &str| s.extract(b"p", &value(0, name, 0)).unwrap();
        assert!(k("a") < k("ab"));
        assert!(k("ab") < k("b"));
        let ints = IndexKeySpec {
            layout: vec![FieldKind::I64, FieldKind::Str, FieldKind::U32],
            parts: vec![IndexKeyPart::ValueField(0)],
        };
        let ik = |v: i64| ints.extract(b"p", &value(v, "x", 0)).unwrap();
        assert!(ik(-10) < ik(-1));
        assert!(ik(-1) < ik(0));
        assert!(ik(0) < ik(42));
    }

    #[test]
    fn pk_slice_parts_copy_verbatim() {
        let s = IndexKeySpec {
            layout: vec![],
            parts: vec![IndexKeyPart::PrimaryKeySlice(0, 2)],
        };
        assert_eq!(s.extract(b"abcd", b"").unwrap(), b"ab");
        assert!(s.extract(b"a", b"").is_none(), "slice out of range");
    }

    #[test]
    fn spec_roundtrips_through_bytes() {
        let s = IndexKeySpec {
            layout: vec![FieldKind::U64, FieldKind::Str, FieldKind::F64],
            parts: vec![
                IndexKeyPart::PrimaryKeySlice(0, 8),
                IndexKeyPart::ValueField(1),
            ],
        };
        assert_eq!(IndexKeySpec::decode(&s.encode()), Some(s));
        assert_eq!(IndexKeySpec::decode(b"garbage"), None);
    }

    #[test]
    fn entry_encoding_roundtrips_and_orders() {
        let e = encode_entry(b"key\x00with\x00nuls", b"pk1");
        assert_eq!(
            decode_entry(&e),
            Some((b"key\x00with\x00nuls".to_vec(), b"pk1".to_vec()))
        );
        // Order equals (index_key, pk) order, including across embedded
        // nuls and key/pk boundaries.
        let pairs: [(&[u8], &[u8]); 6] = [
            (b"a", b""),
            (b"a", b"p1"),
            (b"a\x00", b"p0"),
            (b"a\x01", b""),
            (b"ab", b"p"),
            (b"b", b""),
        ];
        let encoded: Vec<Vec<u8>> = pairs.iter().map(|(k, p)| encode_entry(k, p)).collect();
        for w in encoded.windows(2) {
            assert!(w[0] < w[1], "entry order must match pair order");
        }
    }

    #[test]
    fn entry_range_selects_exactly_the_keys_in_bounds() {
        let idx = Index::new(IndexDef {
            id: TableId(9),
            name: "i".into(),
            table: TableId(1),
            unique: false,
            spec: spec(),
        });
        let all: Vec<(&[u8], &[u8])> = vec![
            (b"a", b"p1"),
            (b"b", b"p1"),
            (b"b", b"p2"),
            (b"b\x00", b"p1"),
            (b"c", b"p9"),
        ];
        for (k, p) in &all {
            idx.add_ref(&encode_entry(k, p));
        }
        let keys_in = |lo: Bound<&[u8]>, hi: Bound<&[u8]>| -> Vec<Vec<u8>> {
            let (lo, hi) = entry_range(lo, hi);
            idx.entries_in_range(as_bound_ref(&lo), as_bound_ref(&hi), None)
                .iter()
                .map(|e| decode_entry(e).unwrap().0)
                .collect()
        };
        fn as_bound_ref(b: &Bound<Vec<u8>>) -> Bound<&[u8]> {
            match b {
                Bound::Included(v) => Bound::Included(v.as_slice()),
                Bound::Excluded(v) => Bound::Excluded(v.as_slice()),
                Bound::Unbounded => Bound::Unbounded,
            }
        }
        assert_eq!(
            keys_in(Bound::Included(b"b"), Bound::Included(b"b")),
            vec![b"b".to_vec(), b"b".to_vec()],
            "inclusive point range finds both claimants of b and nothing else"
        );
        assert_eq!(
            keys_in(Bound::Excluded(b"b"), Bound::Unbounded),
            vec![b"b\x00".to_vec(), b"c".to_vec()],
            "exclusive lower skips every entry of b but not b's extensions"
        );
        assert_eq!(
            keys_in(Bound::Unbounded, Bound::Excluded(b"b")),
            vec![b"a".to_vec()],
        );
        assert_eq!(keys_in(Bound::Unbounded, Bound::Unbounded).len(), 5);
    }

    #[test]
    fn refcounts_track_residency() {
        let idx = Index::new(IndexDef {
            id: TableId(9),
            name: "i".into(),
            table: TableId(1),
            unique: true,
            spec: spec(),
        });
        let e = encode_entry(b"smith", b"pk");
        idx.add_ref(&e);
        idx.add_ref(&e);
        assert_eq!(idx.entry_count(), 1);
        idx.release_ref(&e);
        assert_eq!(idx.entry_count(), 1, "one resident version still claims it");
        idx.release_ref(&e);
        assert_eq!(idx.entry_count(), 0);
        assert!(idx.next_entry_after(b"").is_none());
    }
}
