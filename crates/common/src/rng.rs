//! Random-distribution helpers for the workloads.
//!
//! TPC-C prescribes a particular non-uniform random distribution (NURand) for
//! customer and item selection; SmallBank uses a uniform distribution with a
//! configurable hotspot; sibench uses plain uniform selection. A Zipfian
//! generator is also provided for ablation experiments on skewed access.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Deterministic small RNG seeded per worker thread.
///
/// Workload code takes `&mut WorkloadRng` so experiments are reproducible for
/// a given seed while different workers still see independent streams.
pub struct WorkloadRng {
    rng: SmallRng,
    /// TPC-C NURand constant C for customer-id selection (fixed per run).
    c_cust: u64,
    /// TPC-C NURand constant C for item-id selection.
    c_item: u64,
    /// TPC-C NURand constant C for customer-last-name selection.
    c_name: u64,
}

impl WorkloadRng {
    /// Creates a generator from a seed; worker `i` of an experiment typically
    /// uses `seed + i`.
    pub fn new(seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let c_cust = rng.gen_range(0..1024);
        let c_item = rng.gen_range(0..8192);
        let c_name = rng.gen_range(0..256);
        Self {
            rng,
            c_cust,
            c_item,
            c_name,
        }
    }

    /// Uniform integer in `[lo, hi]` (inclusive), as TPC-C's `rand(x..y)`.
    pub fn uniform(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        self.rng.gen_range(lo..=hi)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Returns true with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.gen::<f64>() < p
    }

    /// Picks an index in `[0, n)` uniformly.
    pub fn index(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n)
    }

    /// TPC-C NURand(A, x, y): non-uniform distribution over `[x, y]`.
    fn nurand(&mut self, a: u64, c: u64, x: u64, y: u64) -> u64 {
        let r1 = self.uniform(0, a);
        let r2 = self.uniform(x, y);
        (((r1 | r2) + c) % (y - x + 1)) + x
    }

    /// TPC-C customer id selection: NURand(1023, 1, 3000).
    pub fn nurand_customer(&mut self, customers_per_district: u64) -> u64 {
        self.nurand(1023, self.c_cust, 1, customers_per_district)
    }

    /// TPC-C item id selection: NURand(8191, 1, 100000).
    pub fn nurand_item(&mut self, item_count: u64) -> u64 {
        self.nurand(8191, self.c_item, 1, item_count)
    }

    /// TPC-C last-name index selection: NURand(255, 0, 999).
    pub fn nurand_name(&mut self) -> u64 {
        self.nurand(255, self.c_name, 0, 999)
    }

    /// Uniform selection with a hotspot: with probability `hot_prob` the
    /// value is drawn from the first `hot_n` items, otherwise from the whole
    /// range `[0, n)`. SmallBank's high-contention configurations use this.
    pub fn hotspot(&mut self, n: u64, hot_n: u64, hot_prob: f64) -> u64 {
        if hot_n > 0 && hot_n < n && self.chance(hot_prob) {
            self.uniform(0, hot_n - 1)
        } else {
            self.uniform(0, n - 1)
        }
    }
}

/// TPC-C customer last name from a running number (spec clause 4.3.2.3).
pub fn tpcc_last_name(num: u64) -> String {
    const SYLLABLES: [&str; 10] = [
        "BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING",
    ];
    let n = num % 1000;
    format!(
        "{}{}{}",
        SYLLABLES[(n / 100) as usize],
        SYLLABLES[((n / 10) % 10) as usize],
        SYLLABLES[(n % 10) as usize]
    )
}

/// A Zipfian distribution over `[0, n)` with exponent `theta`, using the
/// Gray et al. rejection-free method (precomputed zeta), as used by YCSB.
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zeta_n: f64,
    eta: f64,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` items with skew `theta`
    /// (`0 < theta < 1`; larger is more skewed).
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "Zipf requires at least one item");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0,1)");
        let zeta_n = Self::zeta(n, theta);
        let zeta_2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta_2 / zeta_n);
        Self {
            n,
            theta,
            alpha,
            zeta_n,
            eta,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        let mut sum = 0.0;
        for i in 1..=n {
            sum += 1.0 / (i as f64).powf(theta);
        }
        sum
    }

    /// Draws the next value in `[0, n)`; item 0 is the most popular.
    pub fn sample(&self, rng: &mut WorkloadRng) -> u64 {
        let u = rng.unit();
        let uz = u * self.zeta_n;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = ((self.eta * u - self.eta + 1.0).powf(self.alpha) * self.n as f64) as u64;
        v.min(self.n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = WorkloadRng::new(1);
        for _ in 0..1000 {
            let v = rng.uniform(5, 9);
            assert!((5..=9).contains(&v));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = WorkloadRng::new(42);
        let mut b = WorkloadRng::new(42);
        let va: Vec<u64> = (0..32).map(|_| a.uniform(0, 1_000_000)).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.uniform(0, 1_000_000)).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = WorkloadRng::new(1);
        let mut b = WorkloadRng::new(2);
        let va: Vec<u64> = (0..32).map(|_| a.uniform(0, 1_000_000)).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.uniform(0, 1_000_000)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn nurand_customer_in_range() {
        let mut rng = WorkloadRng::new(7);
        for _ in 0..1000 {
            let c = rng.nurand_customer(3000);
            assert!((1..=3000).contains(&c));
        }
    }

    #[test]
    fn nurand_item_in_range() {
        let mut rng = WorkloadRng::new(7);
        for _ in 0..1000 {
            let i = rng.nurand_item(100_000);
            assert!((1..=100_000).contains(&i));
        }
    }

    #[test]
    fn nurand_is_nonuniform() {
        // NURand should concentrate mass compared to uniform: the most
        // frequent value should appear clearly more often than n/len.
        let mut rng = WorkloadRng::new(3);
        let mut counts = vec![0u32; 101];
        for _ in 0..20_000 {
            let v = rng.nurand(99, 12, 1, 100);
            counts[v as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        assert!(max as f64 > 1.5 * (20_000.0 / 100.0));
    }

    #[test]
    fn last_name_examples() {
        assert_eq!(tpcc_last_name(0), "BARBARBAR");
        assert_eq!(tpcc_last_name(371), "PRICALLYOUGHT");
        assert_eq!(tpcc_last_name(999), "EINGEINGEING");
        assert_eq!(tpcc_last_name(1999), "EINGEINGEING");
    }

    #[test]
    fn hotspot_prefers_hot_set() {
        let mut rng = WorkloadRng::new(11);
        let mut hot = 0;
        let trials = 10_000;
        for _ in 0..trials {
            if rng.hotspot(1000, 10, 0.9) < 10 {
                hot += 1;
            }
        }
        // ~90% hot + ~1% of the uniform tail.
        assert!(hot as f64 / trials as f64 > 0.8);
    }

    #[test]
    fn zipf_in_range_and_skewed() {
        let z = Zipf::new(100, 0.9);
        let mut rng = WorkloadRng::new(5);
        let mut counts = vec![0u32; 100];
        for _ in 0..20_000 {
            let v = z.sample(&mut rng) as usize;
            assert!(v < 100);
            counts[v] += 1;
        }
        // Head must be much more popular than the tail.
        assert!(counts[0] > 10 * counts[90].max(1));
    }

    #[test]
    #[should_panic]
    fn zipf_rejects_empty_domain() {
        let _ = Zipf::new(0, 0.5);
    }
}
