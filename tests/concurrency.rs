//! Multi-threaded stress tests: many client threads hammering small hot
//! sets, checking that every isolation level keeps its promises under real
//! concurrency (not just under the hand-built interleavings of the other
//! test files), and that the engine does not leak resources.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serializable_si::{Database, Error, IsolationLevel, Options, TableRef};

fn retrying<T>(mut body: impl FnMut() -> Result<T, Error>) -> T {
    loop {
        match body() {
            Ok(v) => return v,
            Err(e) if e.is_retryable() => continue,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
}

fn setup_counters(db: &Database, n: u64) -> TableRef {
    let table = db.create_table("counters").unwrap();
    let mut txn = db.begin();
    for i in 0..n {
        txn.put(&table, &i.to_be_bytes(), b"0").unwrap();
    }
    txn.commit().unwrap();
    table
}

fn read_counter(db: &Database, table: &TableRef, i: u64) -> i64 {
    let mut txn = db.begin();
    let v = txn
        .get(table, &i.to_be_bytes())
        .unwrap()
        .map(|v| String::from_utf8_lossy(&v).parse().unwrap())
        .unwrap_or(0);
    txn.commit().unwrap();
    v
}

/// Increment-heavy workload: no increments may be lost at any isolation
/// level that enforces first-committer-wins or two-phase locking.
#[test]
fn concurrent_increments_are_never_lost() {
    for level in IsolationLevel::evaluated() {
        let db = Database::open(Options::default().with_isolation(level));
        let table = setup_counters(&db, 4);
        let per_thread = 200u64;
        let threads = 8;

        std::thread::scope(|scope| {
            for t in 0..threads {
                let db = db.clone();
                let table = table.clone();
                scope.spawn(move || {
                    for i in 0..per_thread {
                        let key = ((t + i) % 4).to_be_bytes();
                        retrying(|| {
                            let mut txn = db.begin();
                            let value: i64 = txn
                                .get_for_update(&table, &key)?
                                .map(|v| String::from_utf8_lossy(&v).parse().unwrap())
                                .unwrap_or(0);
                            txn.put(&table, &key, (value + 1).to_string().as_bytes())?;
                            txn.commit()
                        });
                    }
                });
            }
        });

        let total: i64 = (0..4).map(|i| read_counter(&db, &table, i)).sum();
        assert_eq!(
            total,
            (threads * per_thread) as i64,
            "{level}: increments were lost"
        );
    }
}

/// The bank-transfer invariant: total money is conserved by transfers, and
/// under serializable levels the "no account goes negative" rule also holds.
#[test]
fn concurrent_transfers_conserve_money_under_ssi() {
    let db = Database::open(Options::default());
    let accounts = 8u64;
    let initial = 1000i64;
    let table = db.create_table("bank").unwrap();
    let mut txn = db.begin();
    for i in 0..accounts {
        txn.put(&table, &i.to_be_bytes(), initial.to_string().as_bytes())
            .unwrap();
    }
    txn.commit().unwrap();

    let transfers = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for t in 0..6u64 {
            let db = db.clone();
            let table = table.clone();
            let transfers = transfers.clone();
            scope.spawn(move || {
                for i in 0..150u64 {
                    let from = (t + i) % accounts;
                    let to = (t + i * 3 + 1) % accounts;
                    if from == to {
                        continue;
                    }
                    let amount = 1 + (i % 50) as i64;
                    retrying(|| {
                        let mut txn = db.begin();
                        let src: i64 = String::from_utf8_lossy(
                            &txn.get(&table, &from.to_be_bytes())?.unwrap(),
                        )
                        .parse()
                        .unwrap();
                        let dst: i64 =
                            String::from_utf8_lossy(&txn.get(&table, &to.to_be_bytes())?.unwrap())
                                .parse()
                                .unwrap();
                        if src < amount {
                            txn.rollback();
                            return Ok(());
                        }
                        txn.put(
                            &table,
                            &from.to_be_bytes(),
                            (src - amount).to_string().as_bytes(),
                        )?;
                        txn.put(
                            &table,
                            &to.to_be_bytes(),
                            (dst + amount).to_string().as_bytes(),
                        )?;
                        txn.commit()?;
                        transfers.fetch_add(1, Ordering::Relaxed);
                        Ok(())
                    });
                }
            });
        }
    });

    let mut txn = db.begin();
    let rows = txn
        .scan(
            &table,
            std::ops::Bound::Unbounded,
            std::ops::Bound::Unbounded,
        )
        .unwrap();
    txn.commit().unwrap();
    let balances: Vec<i64> = rows
        .iter()
        .map(|(_, v)| String::from_utf8_lossy(v).parse().unwrap())
        .collect();
    assert_eq!(
        balances.iter().sum::<i64>(),
        accounts as i64 * initial,
        "money must be conserved"
    );
    assert!(
        balances.iter().all(|b| *b >= 0),
        "the overdraft check is read-then-write; Serializable SI must keep it \
         correct: {balances:?}"
    );
    assert!(transfers.load(Ordering::Relaxed) > 0);
}

/// Readers scanning while writers insert: every scan must observe a
/// consistent prefix-sum invariant (every insert writes two rows whose
/// values sum to zero), which SI's consistent snapshots guarantee.
#[test]
fn snapshot_scans_see_consistent_states_during_inserts() {
    let db = Database::open(Options::default());
    let table = db.create_table("pairs").unwrap();

    std::thread::scope(|scope| {
        // Writer: inserts pairs (+v, -v) in one transaction each.
        let writer_db = db.clone();
        let writer_table = table.clone();
        scope.spawn(move || {
            for i in 0..300u64 {
                retrying(|| {
                    let mut txn = writer_db.begin();
                    txn.put(&writer_table, format!("p{i:05}a").as_bytes(), b"7")?;
                    txn.put(&writer_table, format!("p{i:05}b").as_bytes(), b"-7")?;
                    txn.commit()
                });
            }
        });

        // Readers: the sum over all rows must always be zero.
        for _ in 0..3 {
            let reader_db = db.clone();
            let reader_table = table.clone();
            scope.spawn(move || {
                for _ in 0..50 {
                    let mut txn = reader_db.begin_read_only();
                    let rows = txn
                        .scan(
                            &reader_table,
                            std::ops::Bound::Unbounded,
                            std::ops::Bound::Unbounded,
                        )
                        .unwrap();
                    txn.commit().unwrap();
                    let sum: i64 = rows
                        .iter()
                        .map(|(_, v)| String::from_utf8_lossy(v).parse::<i64>().unwrap())
                        .sum();
                    assert_eq!(sum, 0, "scan observed a half-applied insert");
                }
            });
        }
    });
}

/// After all clients are done the engine must have released every lock and
/// reclaimed every suspended transaction.
#[test]
fn no_resource_leaks_after_heavy_churn() {
    let db = Database::open(Options::default());
    let table = setup_counters(&db, 16);

    std::thread::scope(|scope| {
        for t in 0..8u64 {
            let db = db.clone();
            let table = table.clone();
            scope.spawn(move || {
                for i in 0..200u64 {
                    let key = ((t * 31 + i) % 16).to_be_bytes();
                    // Alternate reads, writes and scans.
                    retrying(|| {
                        let mut txn = db.begin();
                        match i % 3 {
                            0 => {
                                txn.get(&table, &key)?;
                            }
                            1 => {
                                let v = txn.get_for_update(&table, &key)?;
                                let n: i64 = v
                                    .map(|v| String::from_utf8_lossy(&v).parse().unwrap())
                                    .unwrap_or(0);
                                txn.put(&table, &key, (n + 1).to_string().as_bytes())?;
                            }
                            _ => {
                                txn.scan_prefix(&table, &key[..4])?;
                            }
                        }
                        txn.commit()
                    });
                }
            });
        }
    });

    // Two empty write transactions force cleanup of everything suspended.
    for _ in 0..2 {
        let mut txn = db.begin();
        txn.put(&table, b"zzz-cleanup", b"1").unwrap();
        txn.commit().unwrap();
    }
    assert_eq!(db.transaction_manager().suspended_len(), 0);
    assert_eq!(db.lock_manager().grant_count(), 0);
    // Old versions can be reclaimed once nothing is running.
    let stats = db.purge();
    assert!(
        stats.versions > 0,
        "version GC should reclaim overwritten versions"
    );
}
