//! The dedicated WAL flusher: a background loop that fsyncs the sealed
//! prefix of the log when the batch ages out or a size threshold trips.
//!
//! # Why a dedicated thread
//!
//! Committer-elected group commit (the [`crate::log::SyncPolicy::GroupCommit`]
//! default) amortizes fsyncs only as far as committers naturally pile up:
//! whichever committer finds no flush running syncs immediately, so under
//! light load every commit still pays a full device sync, and under heavy
//! load the batch is bounded by how many committers arrive *during* one
//! fsync. A dedicated flusher decouples the two: committers only seal and
//! park, and the flusher syncs when
//!
//! * the oldest unsynced record has waited [`FlusherConfig::max_delay`]
//!   (the latency bound an acknowledged commit pays at worst, plus one
//!   fsync), or
//! * [`FlusherConfig::max_batch_bytes`] have been sealed since the last
//!   sync (don't sit on a huge batch just because the clock says wait), or
//! * a flush is forced ([`crate::WalWriter::request_flush`] — tests
//!   single-stepping the thread, clean shutdown), or
//! * shutdown is requested (every remaining sealed record is drained
//!   before the loop exits, so close never strands an acknowledged or
//!   sealable commit).
//!
//! In buffered mode ([`crate::log::SyncPolicy::Never`]) nobody parks, but
//! the same loop bounds the crash-loss window: the tail of the log reaches
//! the device at most `max_delay` (plus one fsync) after it was sealed,
//! instead of "whenever the next checkpoint or clean close happens".
//!
//! # Protocol
//!
//! The loop is three phases driven entirely through [`crate::WalWriter`]
//! state (no channels): **wait for work** (something sealed or retired is
//! not yet durable), **let the batch age** (woken early by the size
//! threshold, force, or shutdown), **flush** (one pass over every retired
//! segment plus the current one, then advance `durable_ts` and wake the
//! parked committers).
//!
//! # Retry policy
//!
//! With the log's unsynced-frame buffer enabled, a flush-pass failure
//! classified *transient* or *out-of-space* (see [`crate::WalError`]) is
//! retried up to [`FlusherConfig::retry_budget`] times, sleeping
//! [`FlusherConfig::retry_backoff`] between attempts. The retry honours
//! the "fsync reports an error only once" rule: a file whose fsync failed
//! is never fsynced again — the buffered unsynced frames are re-emitted to
//! a *fresh* segment and the retry fsyncs that instead. An out-of-space
//! failure additionally triggers one checkpoint-to-reclaim attempt per
//! incident (pruning covered segments frees log space) before the backoff.
//! Only when the budget is exhausted — or the failure is fatal, or
//! buffering is off — does the loop poison the log, wake everyone (parked
//! committers observe the poison and error out, exactly like the
//! committer-elected path), and exit, since a poisoned log can never vouch
//! for durability again.
//!
//! The `observe` callback is the deterministic test hook: it fires at each
//! phase transition (see [`FlushEvent`]) and may block, so a test can
//! single-step the thread — same pattern as the transaction manager's
//! sweep-pause hook.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use ssi_common::Timestamp;

use crate::error::{WalError, WalOp};
use crate::log::{FlusherWork, PoisonCause, WalWriter};

/// Tuning knobs of the dedicated flusher loop.
#[derive(Clone, Copy, Debug)]
pub struct FlusherConfig {
    /// Upper bound on how long a sealed record waits for its fsync — the
    /// latency an acknowledged group-commit pays at worst (plus the fsync
    /// itself and scheduling).
    pub max_delay: Duration,
    /// Flush early once this many bytes have been sealed since the last
    /// sync, regardless of age.
    pub max_batch_bytes: u64,
    /// How many times a transient (or reclaimable) flush failure is
    /// retried before the log is poisoned. Zero restores first-failure
    /// poisoning.
    pub retry_budget: u32,
    /// Sleep between retry attempts.
    pub retry_backoff: Duration,
}

impl Default for FlusherConfig {
    fn default() -> Self {
        FlusherConfig {
            max_delay: Duration::from_millis(2),
            max_batch_bytes: 1 << 20,
            retry_budget: 4,
            retry_backoff: Duration::from_millis(5),
        }
    }
}

/// Why a flush pass fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushReason {
    /// The oldest unsynced record reached [`FlusherConfig::max_delay`].
    AgedOut,
    /// [`FlusherConfig::max_batch_bytes`] were sealed since the last sync.
    BatchFull,
    /// [`crate::WalWriter::request_flush`] forced the pass.
    Forced,
    /// Shutdown drain: flush whatever is left, then exit.
    Shutdown,
}

/// Phase transitions of the flusher loop, reported through the `observe`
/// hook so tests can trace — and, by blocking in the hook, single-step —
/// the thread deterministically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushEvent {
    /// Unsynced work was found; the batch window is open up to `target`.
    BatchOpened { target: Timestamp },
    /// A flush pass is about to run.
    Flushing { reason: FlushReason },
    /// A flush pass completed; everything `<= durable` is on the device.
    Flushed { durable: Timestamp },
    /// A flush pass failed retryably; attempt `attempt` of the budget is
    /// about to run (after reclaim/backoff and, for fsync failures,
    /// re-emission to a fresh segment).
    Retrying { attempt: u32 },
    /// The log is poisoned; the loop wakes all waiters and exits.
    Poisoned,
}

impl WalWriter {
    /// Runs the dedicated flusher until `shutdown` is set *and* everything
    /// sealed has been drained (or until the log is poisoned). Call from a
    /// background thread after [`WalWriter::attach_flusher`]; `observe`
    /// fires at each [`FlushEvent`] and may block (test single-stepping).
    pub fn flusher_loop(
        &self,
        config: &FlusherConfig,
        shutdown: &AtomicBool,
        observe: &mut dyn FnMut(FlushEvent),
    ) {
        debug_assert!(self.has_flusher(), "attach_flusher before flusher_loop");
        loop {
            match self.flusher_wait_for_work(shutdown) {
                FlusherWork::Shutdown => return,
                FlusherWork::Poisoned => {
                    observe(FlushEvent::Poisoned);
                    self.wake_committers();
                    return;
                }
                FlusherWork::Work => {}
            }
            observe(FlushEvent::BatchOpened {
                target: self.sealed_ts(),
            });
            // Batch-accumulation window: wait until the oldest unsynced
            // record ages out, letting more commits pile into the batch —
            // cut short by the size threshold, a forced flush, or shutdown.
            let reason = loop {
                if self.is_poisoned() {
                    break None;
                }
                // Consume a pending force *before* the shutdown check: a
                // leftover force flag with nothing to flush would otherwise
                // keep `flusher_wait_for_work` reporting work forever.
                let forced = self.take_force_flush();
                if shutdown.load(Ordering::Acquire) {
                    break Some(FlushReason::Shutdown);
                }
                if forced {
                    break Some(FlushReason::Forced);
                }
                if self.unsynced_batch_bytes() >= config.max_batch_bytes {
                    break Some(FlushReason::BatchFull);
                }
                match self.batch_age() {
                    // Work with no open window (a retired-only race):
                    // flush immediately rather than risk a stall.
                    None => break Some(FlushReason::AgedOut),
                    Some(age) if age >= config.max_delay => {
                        break Some(FlushReason::AgedOut);
                    }
                    Some(age) => self.flusher_wait_window(
                        config.max_delay - age,
                        shutdown,
                        config.max_batch_bytes,
                    ),
                }
            };
            let Some(reason) = reason else {
                observe(FlushEvent::Poisoned);
                self.wake_committers();
                return;
            };
            observe(FlushEvent::Flushing { reason });
            if !self.flush_with_retry(config, observe) {
                return;
            }
        }
    }

    /// One flush, retried per the budget. Returns false when the loop must
    /// exit (the log is poisoned — by this failure or someone else).
    fn flush_with_retry(
        &self,
        config: &FlusherConfig,
        observe: &mut dyn FnMut(FlushEvent),
    ) -> bool {
        let mut attempt: u32 = 0;
        let mut reclaim_attempted = false;
        // Set after an fsync failure: the errored file must never be
        // fsynced again, so the buffered frames are re-emitted to a fresh
        // segment before the next pass.
        let mut needs_reemit = false;
        loop {
            let result = if needs_reemit {
                self.reemit_unsynced()
            } else {
                Ok(())
            };
            let result: Result<Timestamp, WalError> = match result {
                Ok(()) => {
                    needs_reemit = false;
                    self.flush_pass()
                }
                Err(e) => Err(e),
            };
            let error = match result {
                Ok(durable) => {
                    observe(FlushEvent::Flushed { durable });
                    return true;
                }
                Err(e) => e,
            };
            if self.is_poisoned() {
                // The failure already poisoned the log (no buffering, or a
                // rollback failure) — or a test hook did. Either way the
                // pass woke nobody new; do it here and exit.
                observe(FlushEvent::Poisoned);
                self.wake_all();
                return false;
            }
            if error.op == WalOp::Fsync && self.buffers_unsynced() {
                needs_reemit = true;
            }
            if !error.is_retryable() || attempt >= config.retry_budget {
                self.poison_with(if error.is_reclaimable() {
                    PoisonCause::OutOfSpace
                } else {
                    PoisonCause::Io
                });
                observe(FlushEvent::Poisoned);
                self.wake_all();
                return false;
            }
            attempt += 1;
            self.stats().fsync_retries.fetch_add(1, Ordering::Relaxed);
            observe(FlushEvent::Retrying { attempt });
            if error.is_reclaimable() && !reclaim_attempted {
                // ENOSPC: try to free log space by checkpointing (prunes
                // covered segments) once per incident, then retry without
                // burning wall-clock on the backoff.
                reclaim_attempted = true;
                self.try_reclaim();
            } else {
                std::thread::sleep(config.retry_backoff);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::SyncPolicy;
    use crate::record::WriteEntry;
    use crate::testutil::temp_dir;
    use crate::vfs::{FaultMode, FaultOp, FaultRule, FaultVfs};
    use ssi_common::{TableId, TxnId};
    use std::sync::atomic::AtomicU64;
    use std::sync::{Arc, Mutex};

    fn entry(key: &[u8]) -> WriteEntry {
        WriteEntry {
            table: TableId(1),
            key: key.to_vec(),
            value: Some(b"v".to_vec()),
        }
    }

    /// Spawns the flusher loop; returns (shutdown flag, join handle, events).
    fn spawn_flusher(
        wal: &Arc<WalWriter>,
        config: FlusherConfig,
    ) -> (
        Arc<AtomicBool>,
        std::thread::JoinHandle<()>,
        Arc<Mutex<Vec<FlushEvent>>>,
    ) {
        wal.attach_flusher();
        let shutdown = Arc::new(AtomicBool::new(false));
        let events = Arc::new(Mutex::new(Vec::new()));
        let handle = {
            let wal = wal.clone();
            let shutdown = shutdown.clone();
            let events = events.clone();
            std::thread::spawn(move || {
                wal.flusher_loop(&config, &shutdown, &mut |e| {
                    events.lock().unwrap().push(e);
                });
            })
        };
        (shutdown, handle, events)
    }

    #[test]
    fn flusher_covers_parked_committers_and_drains_on_shutdown() {
        let dir = temp_dir("flusher-basic");
        let wal = Arc::new(WalWriter::open(&dir, 1, SyncPolicy::GroupCommit).unwrap());
        let config = FlusherConfig {
            max_delay: Duration::from_millis(5),
            ..FlusherConfig::default()
        };
        let (shutdown, handle, _events) = spawn_flusher(&wal, config);

        // 8 committer threads seal + park; the flusher must cover them all.
        let next_ts = Arc::new(AtomicU64::new(1));
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let wal = wal.clone();
                let next_ts = next_ts.clone();
                s.spawn(move || {
                    for i in 0..10u64 {
                        let ts = next_ts.fetch_add(1, Ordering::Relaxed) + 1;
                        wal.submit(ts, TxnId(t * 100 + i), vec![entry(&ts.to_be_bytes())]);
                        wal.seal_upto(ts).unwrap();
                        wal.wait_durable(ts).unwrap();
                    }
                });
            }
        });
        assert_eq!(wal.stats().records.load(Ordering::Relaxed), 80);
        // Every fsync on this path came from the flusher, none from a
        // self-elected committer.
        let fsyncs = wal.stats().fsyncs.load(Ordering::Relaxed);
        let flusher_fsyncs = wal.stats().flusher_fsyncs.load(Ordering::Relaxed);
        assert!(fsyncs >= 1);
        assert_eq!(fsyncs, flusher_fsyncs, "a committer self-elected");
        // Clean path: the retry machinery must not have fired.
        assert_eq!(wal.stats().fsync_retries.load(Ordering::Relaxed), 0);
        assert_eq!(wal.stats().io_failures.load(Ordering::Relaxed), 0);

        shutdown.store(true, Ordering::Release);
        wal.request_flush();
        handle.join().unwrap();
        assert!(wal.durable_ts() >= wal.sealed_ts());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn forced_flush_single_steps_an_idle_window() {
        let dir = temp_dir("flusher-force");
        let wal = Arc::new(WalWriter::open(&dir, 1, SyncPolicy::GroupCommit).unwrap());
        // Effectively-infinite window: only a force can trigger the pass.
        let config = FlusherConfig {
            max_delay: Duration::from_secs(3600),
            max_batch_bytes: u64::MAX,
            ..FlusherConfig::default()
        };
        let (shutdown, handle, events) = spawn_flusher(&wal, config);

        wal.submit(2, TxnId(1), vec![entry(b"a")]);
        wal.seal_upto(2).unwrap();
        // Sealed but not durable: the window is open and nothing fires.
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(wal.durable_ts(), 0);

        wal.request_flush();
        // The forced pass must land; poll its effect.
        for _ in 0..200 {
            if wal.durable_ts() >= 2 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(wal.durable_ts() >= 2, "forced flush never landed");
        assert!(events.lock().unwrap().iter().any(|e| matches!(
            e,
            FlushEvent::Flushing {
                reason: FlushReason::Forced
            }
        )));

        shutdown.store(true, Ordering::Release);
        wal.request_flush();
        handle.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn size_threshold_trips_before_the_window_ages_out() {
        let dir = temp_dir("flusher-size");
        let wal = Arc::new(WalWriter::open(&dir, 1, SyncPolicy::GroupCommit).unwrap());
        let config = FlusherConfig {
            max_delay: Duration::from_secs(3600),
            max_batch_bytes: 64,
            ..FlusherConfig::default()
        };
        let (shutdown, handle, events) = spawn_flusher(&wal, config);

        for ts in 2..6u64 {
            wal.submit(ts, TxnId(ts), vec![entry(&ts.to_be_bytes())]);
            wal.seal_upto(ts).unwrap();
        }
        for _ in 0..200 {
            if wal.durable_ts() >= 5 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(wal.durable_ts() >= 5, "size threshold never tripped");
        assert!(events.lock().unwrap().iter().any(|e| matches!(
            e,
            FlushEvent::Flushing {
                reason: FlushReason::BatchFull
            }
        )));

        shutdown.store(true, Ordering::Release);
        wal.request_flush();
        handle.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn poison_wakes_parked_committers_with_errors_and_stops_the_loop() {
        let dir = temp_dir("flusher-poison");
        let wal = Arc::new(WalWriter::open(&dir, 1, SyncPolicy::GroupCommit).unwrap());
        let config = FlusherConfig {
            max_delay: Duration::from_secs(3600),
            max_batch_bytes: u64::MAX,
            ..FlusherConfig::default()
        };
        let (_shutdown, handle, events) = spawn_flusher(&wal, config);

        std::thread::scope(|s| {
            let mut committers = Vec::new();
            for ts in 2..6u64 {
                let wal = wal.clone();
                committers.push(s.spawn(move || {
                    wal.submit(ts, TxnId(ts), vec![entry(&ts.to_be_bytes())]);
                    wal.seal_upto(ts).unwrap();
                    wal.wait_durable(ts)
                }));
            }
            // Let them all seal and park (records counted at seal time).
            while wal.stats().records.load(Ordering::Relaxed) < 4 {
                std::thread::sleep(Duration::from_millis(1));
            }
            wal.poison();
            for c in committers {
                let result = c.join().unwrap();
                assert!(result.is_err(), "a parked committer was acked after poison");
            }
        });
        handle.join().unwrap(); // the loop must exit on its own
        assert!(events
            .lock()
            .unwrap()
            .iter()
            .any(|e| matches!(e, FlushEvent::Poisoned)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_hands_the_old_segment_to_the_flusher() {
        let dir = temp_dir("flusher-rotate");
        let wal = Arc::new(WalWriter::open(&dir, 1, SyncPolicy::GroupCommit).unwrap());
        wal.attach_flusher();

        wal.submit(2, TxnId(1), vec![entry(b"a")]);
        wal.seal_upto(2).unwrap();
        let before = wal.stats().fsyncs.load(Ordering::Relaxed);
        // With a flusher attached, rotation itself must not fsync (the old
        // segment is queued instead) and must not advance durability.
        let (cut, old_seq) = wal.rotate(|| 2).unwrap();
        assert_eq!((cut, old_seq), (2, 1));
        assert_eq!(wal.current_segment(), 2);
        assert_eq!(wal.stats().fsyncs.load(Ordering::Relaxed), before);
        assert_eq!(wal.durable_ts(), 0, "handoff must defer durability");

        // One flush pass covers the retired segment and the new one.
        let durable = wal.flush_pass().unwrap();
        assert!(durable >= 2, "retired segment not covered: {durable}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn buffered_mode_gets_a_periodic_sync_lag_bound() {
        let dir = temp_dir("flusher-buffered");
        let wal = Arc::new(WalWriter::open(&dir, 1, SyncPolicy::Never).unwrap());
        let config = FlusherConfig {
            max_delay: Duration::from_millis(5),
            max_batch_bytes: u64::MAX,
            ..FlusherConfig::default()
        };
        let (shutdown, handle, _events) = spawn_flusher(&wal, config);

        // Buffered commits never wait, but the flusher must still push the
        // sealed tail to the device within the lag bound.
        wal.submit(2, TxnId(1), vec![entry(b"a")]);
        wal.seal_upto(2).unwrap();
        wal.wait_durable(2).unwrap(); // returns immediately in Never mode
        for _ in 0..400 {
            if wal.durable_ts() >= 2 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(wal.durable_ts() >= 2, "periodic sync never ran");
        assert!(wal.stats().flusher_fsyncs.load(Ordering::Relaxed) >= 1);

        shutdown.store(true, Ordering::Release);
        wal.request_flush();
        handle.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_fsync_failure_is_retried_without_poisoning() {
        let dir = temp_dir("flusher-retry");
        let fault = FaultVfs::new(vec![FaultRule::new(
            FaultOp::Fsync,
            FaultMode::FailTimes(2),
            std::io::ErrorKind::Interrupted,
        )
        .on_path("segment-")]);
        let wal = Arc::new(
            WalWriter::open_with(fault.handle(), &dir, 1, SyncPolicy::GroupCommit, true).unwrap(),
        );
        let config = FlusherConfig {
            max_delay: Duration::from_millis(2),
            retry_backoff: Duration::from_millis(1),
            ..FlusherConfig::default()
        };
        let (shutdown, handle, events) = spawn_flusher(&wal, config);

        // The committer must be acknowledged despite two injected fsync
        // failures: the flusher retries by re-emission.
        wal.submit(2, TxnId(1), vec![entry(b"a")]);
        wal.seal_upto(2).unwrap();
        wal.wait_durable(2).unwrap();

        assert!(!wal.is_poisoned(), "transient faults must not poison");
        assert!(wal.stats().fsync_retries.load(Ordering::Relaxed) >= 1);
        assert!(events
            .lock()
            .unwrap()
            .iter()
            .any(|e| matches!(e, FlushEvent::Retrying { .. })));

        shutdown.store(true, Ordering::Release);
        wal.request_flush();
        handle.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn exhausted_retry_budget_poisons_and_errors_parked_committers() {
        let dir = temp_dir("flusher-budget");
        let fault = FaultVfs::new(vec![FaultRule::new(
            FaultOp::Fsync,
            FaultMode::FailAlways,
            std::io::ErrorKind::Interrupted,
        )
        .on_path("segment-")]);
        let wal = Arc::new(
            WalWriter::open_with(fault.handle(), &dir, 1, SyncPolicy::GroupCommit, true).unwrap(),
        );
        let config = FlusherConfig {
            max_delay: Duration::from_millis(2),
            retry_budget: 3,
            retry_backoff: Duration::from_millis(1),
            ..FlusherConfig::default()
        };
        let (_shutdown, handle, events) = spawn_flusher(&wal, config);

        wal.submit(2, TxnId(1), vec![entry(b"a")]);
        wal.seal_upto(2).unwrap();
        let err = wal.wait_durable(2).unwrap_err();
        assert_eq!(err.kind, crate::error::WalErrorKind::Poisoned);
        assert_eq!(wal.poison_cause(), Some(PoisonCause::Io));

        handle.join().unwrap(); // loop exits after poisoning
        let events = events.lock().unwrap();
        let retries = events
            .iter()
            .filter(|e| matches!(e, FlushEvent::Retrying { .. }))
            .count();
        assert_eq!(retries, 3, "must exhaust exactly the budget");
        assert!(events.iter().any(|e| matches!(e, FlushEvent::Poisoned)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fatal_fsync_failure_poisons_immediately_despite_budget() {
        let dir = temp_dir("flusher-fatal");
        let fault = FaultVfs::new(vec![FaultRule::new(
            FaultOp::Fsync,
            FaultMode::FailAlways,
            std::io::ErrorKind::PermissionDenied,
        )
        .on_path("segment-")]);
        let wal = Arc::new(
            WalWriter::open_with(fault.handle(), &dir, 1, SyncPolicy::GroupCommit, true).unwrap(),
        );
        let config = FlusherConfig {
            max_delay: Duration::from_millis(2),
            retry_backoff: Duration::from_millis(1),
            ..FlusherConfig::default()
        };
        let (_shutdown, handle, events) = spawn_flusher(&wal, config);

        wal.submit(2, TxnId(1), vec![entry(b"a")]);
        wal.seal_upto(2).unwrap();
        assert!(wal.wait_durable(2).is_err());
        handle.join().unwrap();
        let events = events.lock().unwrap();
        assert!(
            !events
                .iter()
                .any(|e| matches!(e, FlushEvent::Retrying { .. })),
            "fatal failures must not burn retries"
        );
        assert!(events.iter().any(|e| matches!(e, FlushEvent::Poisoned)));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
