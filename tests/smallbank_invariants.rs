//! SmallBank under concurrency: throughput is irrelevant here, the question
//! is purely whether each isolation level preserves the application's
//! invariants when many clients hammer a small hot set of customers
//! (Sec. 2.8.4/2.8.5: the Bal → WC → TS dangerous structure).

use std::time::Duration;

use serializable_si::workloads::smallbank::SmallBankConfig;
use serializable_si::{run_workload, Database, IsolationLevel, Options, RunConfig, SmallBank};

fn run_bank(level: IsolationLevel, customers: u64, seconds: u64) -> (SmallBank, Database, u64) {
    let db = Database::open(Options::default().with_isolation(level));
    let bank = SmallBank::setup(
        &db,
        SmallBankConfig {
            customers,
            ops_per_txn: 1,
            initial_balance: 100,
            mitigation: Default::default(),
        },
    );
    let stats = run_workload(
        &db,
        &bank,
        &RunConfig {
            mpl: 8,
            warmup: Duration::from_millis(50),
            duration: Duration::from_secs(seconds),
            seed: 20_08,
        },
    );
    (bank, db, stats.commits)
}

#[test]
fn serializable_si_preserves_the_no_overdraft_invariant() {
    // Very hot: only 4 customers, so WriteCheck/TransactSavings write skew
    // would show up quickly if it were possible.
    let (bank, db, commits) = run_bank(IsolationLevel::SerializableSnapshotIsolation, 4, 2);
    assert!(
        commits > 100,
        "the run should make progress ({commits} commits)"
    );
    assert_eq!(
        bank.negative_savings_accounts(&db),
        0,
        "Serializable SI must never drive a savings balance negative"
    );
}

#[test]
fn strict_two_phase_locking_preserves_the_invariant() {
    let (bank, db, commits) = run_bank(IsolationLevel::StrictTwoPhaseLocking, 4, 2);
    assert!(
        commits > 50,
        "the run should make progress ({commits} commits)"
    );
    assert_eq!(bank.negative_savings_accounts(&db), 0);
}

/// The SmallBank anomaly the thesis describes in Sec. 2.8.4: the dangerous
/// structure Balance → WriteCheck → TransactSavings → Balance. We drive the
/// exact interleaving of (Fekete et al. 2004) against the SmallBank tables:
/// WriteCheck reads both balances, TransactSavings withdraws the savings and
/// commits, a Balance query then observes the withdrawal but not the check,
/// and finally WriteCheck commits. Under plain SI everything commits and the
/// recorded history contains a cycle; under Serializable SI one participant
/// aborts.
fn run_smallbank_read_only_anomaly(level: IsolationLevel) -> (bool, bool) {
    use ssi_common::encoding::{decode_i64, encode_i64, KeyBuilder};

    let db = Database::open(Options::default().with_isolation(level).with_history());
    let _bank = SmallBank::setup(
        &db,
        SmallBankConfig {
            customers: 2,
            ops_per_txn: 1,
            initial_balance: 100,
            mitigation: Default::default(),
        },
    );
    let savings = db.table("savings").unwrap();
    let checking = db.table("checking").unwrap();
    let key = KeyBuilder::new().u64(0).build();

    // Give customer 0 the textbook starting state: savings 100, checking 0.
    let mut txn = db.begin();
    txn.put(&savings, &key, &encode_i64(100)).unwrap();
    txn.put(&checking, &key, &encode_i64(0)).unwrap();
    txn.commit().unwrap();

    let read = |txn: &mut serializable_si::Transaction, table| -> i64 {
        txn.get(table, &key)
            .unwrap()
            .map(|v| decode_i64(&v))
            .unwrap_or(0)
    };

    let mut all_committed = true;

    // WriteCheck($50): reads both balances (sum 100 >= 50, so no penalty),
    // but does not write yet.
    let mut wc = db.begin();
    let wc_sav = read(&mut wc, &savings);
    let wc_chk = read(&mut wc, &checking);

    // TransactSavings(-100): withdraws the whole savings balance and commits.
    let mut ts = db.begin();
    let ts_sav = read(&mut ts, &savings);
    let ts_ok = ts
        .put(&savings, &key, &encode_i64(ts_sav - 100))
        .and_then(|_| ts.commit())
        .is_ok();
    all_committed &= ts_ok;

    // Balance: starts after TransactSavings committed, sees savings 0 but
    // checking still 0 (WriteCheck has not committed yet).
    let mut bal = db.begin_read_only();
    let observed = read(&mut bal, &savings) + read(&mut bal, &checking);
    all_committed &= bal.commit().is_ok();
    assert_eq!(observed, 0, "Balance must see the withdrawal only");

    // WriteCheck finally debits checking (no penalty, based on its stale
    // snapshot) and tries to commit.
    let wc_ok = wc
        .put(&checking, &key, &encode_i64(wc_chk - 50))
        .and_then(|_| wc.commit())
        .is_ok();
    let _ = wc_sav;
    all_committed &= wc_ok;

    let serializable = db.history().unwrap().analyze().is_serializable();
    (all_committed, serializable)
}

#[test]
fn plain_si_commits_the_smallbank_anomaly() {
    let (all_committed, serializable) =
        run_smallbank_read_only_anomaly(IsolationLevel::SnapshotIsolation);
    assert!(all_committed, "plain SI lets all three programs commit");
    assert!(
        !serializable,
        "the committed history must contain the Bal → WC → TS cycle"
    );
}

#[test]
fn serializable_si_prevents_the_smallbank_anomaly() {
    let (all_committed, serializable) =
        run_smallbank_read_only_anomaly(IsolationLevel::SerializableSnapshotIsolation);
    assert!(!all_committed, "one of the programs must abort");
    assert!(serializable);
}

#[test]
fn page_granularity_engine_also_preserves_the_invariant() {
    // The Berkeley-DB-style configuration (page locks, basic conflict
    // flags): coarser detection means more false positives, but safety must
    // be unaffected.
    let db = Database::open(Options::berkeley_like(20));
    let bank = SmallBank::setup(
        &db,
        SmallBankConfig {
            customers: 16,
            ops_per_txn: 1,
            initial_balance: 100,
            mitigation: Default::default(),
        },
    );
    let stats = run_workload(
        &db,
        &bank,
        &RunConfig {
            mpl: 8,
            warmup: Duration::from_millis(50),
            duration: Duration::from_secs(2),
            seed: 4,
        },
    );
    assert!(stats.commits > 0);
    assert_eq!(bank.negative_savings_accounts(&db), 0);
    // With only 20 pages for 16 customers across three tables, unsafe
    // aborts (including false positives) should actually occur.
    assert!(
        stats.aborts[2] > 0,
        "expected some unsafe aborts at page granularity, got {:?}",
        stats.aborts
    );
}

#[test]
fn complex_transactions_remain_serializable() {
    // The "10 operations per transaction" workload of Sec. 6.1.4.
    let db = Database::open(Options::default());
    let bank = SmallBank::setup(
        &db,
        SmallBankConfig {
            customers: 10,
            ops_per_txn: 10,
            initial_balance: 100,
            mitigation: Default::default(),
        },
    );
    let stats = run_workload(
        &db,
        &bank,
        &RunConfig {
            mpl: 6,
            warmup: Duration::from_millis(50),
            duration: Duration::from_secs(2),
            seed: 77,
        },
    );
    assert!(stats.commits > 0);
    assert_eq!(bank.negative_savings_accounts(&db), 0);
}

#[test]
fn no_locks_or_suspended_transactions_leak_after_a_run() {
    let (_bank, db, _commits) = run_bank(IsolationLevel::SerializableSnapshotIsolation, 8, 1);
    // Once every worker has finished, a final empty write transaction
    // triggers cleanup; afterwards nothing should linger.
    let t = db.table("checking").unwrap();
    let mut txn = db.begin();
    txn.put(&t, b"\xff\xff cleanup", b"x").unwrap();
    txn.commit().unwrap();
    let mut txn = db.begin();
    txn.put(&t, b"\xff\xff cleanup", b"y").unwrap();
    txn.commit().unwrap();
    assert_eq!(db.transaction_manager().suspended_len(), 0);
    assert_eq!(
        db.lock_manager().grant_count(),
        0,
        "all locks must be released after cleanup"
    );
}
