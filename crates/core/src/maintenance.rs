//! Background maintenance: supervised threads that take durability and
//! reclamation work off the commit path.
//!
//! The [`MaintenanceHub`] owns up to two threads, both optional, both
//! started by `Database::try_open` and joined before the database releases
//! its on-disk WAL lock (see `DbInner::drop`):
//!
//! * **the dedicated WAL flusher** — runs `ssi-wal`'s
//!   [`flusher loop`](ssi_wal::flusher): group-commit committers enqueue
//!   and park, the flusher fsyncs the sealed prefix when the batch reaches
//!   [`crate::MaintenanceOptions::flush_max_delay`] or the size threshold
//!   trips, and checkpoint rotation hands it the old segment so the device
//!   sync happens off the append lock;
//! * **the incremental GC thread** — every
//!   [`crate::MaintenanceOptions::gc_interval`] it purges the next
//!   [`crate::MaintenanceOptions::gc_shards_per_pass`] storage shards of
//!   every table ([`ssi_storage::Table::purge_shard`]) at the pinned safe
//!   horizon, advancing a wrapping shard cursor — so reclamation is spread
//!   into small slices, no lock is held for longer than one shard, and the
//!   commit path does zero purge work (inline
//!   [`crate::Options::purge_every_commits`] is skipped while the thread
//!   runs). Passes are attributed to
//!   [`crate::ManagerStats::background_purge_runs`].
//!
//! # Deterministic stepping
//!
//! Both threads report phase transitions through one injectable hook
//! ([`MaintenanceHook`], installed with `Database::set_maintenance_hook`) —
//! the same pattern as the transaction manager's sweep-pause hook. The
//! hook may block, so a test can hold a thread at a step point; combined
//! with `Database::step_flusher` / `Database::step_gc` (which force one
//! pass regardless of timers) and effectively-infinite intervals, tests
//! single-step the threads with no wall-clock dependence.
//!
//! # Shutdown
//!
//! `shutdown_and_join` sets the shared stop flag, kicks both threads, and
//! joins them: the flusher drains every sealed record before exiting (no
//! acknowledged — or even sealable — commit is left un-fsynced by a clean
//! close), the GC thread finishes at most one pass. Only after the join
//! does `DbInner` drop the durable state and with it the directory lock, so
//! a fast reopen can never race a still-flushing old incarnation.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use ssi_common::DegradedReason;
use ssi_obs::{EngineMetrics, EventKind};
use ssi_storage::{Catalog, PurgeStats, SHARD_COUNT};
use ssi_wal::{FlushEvent, FlusherConfig, PoisonCause, WalWriter};

use crate::health::HealthCell;
use crate::manager::TransactionManager;
use crate::options::MaintenanceOptions;

/// Phase transitions of the background threads, reported through the
/// [`MaintenanceHook`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MaintenanceEvent {
    /// The dedicated WAL flusher changed phase (batch opened, flushing,
    /// flushed, poisoned).
    Flusher(FlushEvent),
    /// A background GC pass is starting at this shard-cursor position.
    GcPassStart { first_shard: usize },
    /// A background GC pass finished, having reclaimed this much.
    GcPassEnd { versions: u64, chains: u64 },
}

/// Test instrumentation callback: invoked at every [`MaintenanceEvent`]
/// with no internal lock held, so it may block to single-step the thread.
pub type MaintenanceHook = Arc<dyn Fn(&MaintenanceEvent) + Send + Sync>;

/// State shared between the hub handle and its threads.
struct HubShared {
    shutdown: AtomicBool,
    /// GC wakeup (interval waits park here; `step_gc` and shutdown kick it).
    gc_mu: Mutex<()>,
    gc_cv: Condvar,
    gc_force: AtomicBool,
    /// Test-only step hook; `None` (one relaxed load) in normal operation.
    hook: Mutex<Option<MaintenanceHook>>,
    hook_set: AtomicBool,
}

impl HubShared {
    fn observe(&self, event: MaintenanceEvent) {
        if self.hook_set.load(Ordering::Relaxed) {
            let hook = self.hook.lock().clone();
            if let Some(hook) = hook {
                hook(&event);
            }
        }
    }
}

/// Owner of the background maintenance threads (module docs above).
pub(crate) struct MaintenanceHub {
    shared: Arc<HubShared>,
    /// The log the flusher serves, kept to kick it on shutdown.
    wal: Option<Arc<WalWriter>>,
    flusher: Option<JoinHandle<()>>,
    gc: Option<JoinHandle<()>>,
}

impl MaintenanceHub {
    /// Starts the configured threads; `None` when the options ask for no
    /// background work (or none is applicable — e.g. a flusher delay with
    /// durability off). `wal` must already have had `attach_flusher`
    /// called when a flusher is requested.
    pub(crate) fn start(
        options: &MaintenanceOptions,
        wal: Option<Arc<WalWriter>>,
        catalog: Arc<Catalog>,
        txns: Arc<TransactionManager>,
        health: Arc<HealthCell>,
        metrics: Arc<EngineMetrics>,
    ) -> Option<MaintenanceHub> {
        let flusher_wal = match (&wal, options.flush_max_delay) {
            (Some(wal), Some(_)) if wal.has_flusher() => Some(wal.clone()),
            _ => None,
        };
        if flusher_wal.is_none() && options.gc_interval.is_none() {
            return None;
        }
        let shared = Arc::new(HubShared {
            shutdown: AtomicBool::new(false),
            gc_mu: Mutex::new(()),
            gc_cv: Condvar::new(),
            gc_force: AtomicBool::new(false),
            hook: Mutex::new(None),
            hook_set: AtomicBool::new(false),
        });
        let flusher = flusher_wal.as_ref().map(|wal| {
            let wal = wal.clone();
            let shared = shared.clone();
            let health = health.clone();
            let txns = txns.clone();
            let config = FlusherConfig {
                max_delay: options.flush_max_delay.expect("checked above"),
                max_batch_bytes: options.flush_max_bytes.max(1),
                retry_budget: options.flush_retry_budget,
                retry_backoff: options.flush_retry_backoff,
            };
            std::thread::Builder::new()
                .name("ssi-wal-flusher".into())
                .spawn(move || {
                    // Panic containment: the loop runs arbitrary test hooks
                    // and must never die silently — a vanished flusher
                    // would park the next committer forever. A panic
                    // poisons the log (waking every parked committer with
                    // an error) and degrades health, exactly like a fatal
                    // I/O failure.
                    let run = catch_unwind(AssertUnwindSafe(|| {
                        wal.flusher_loop(&config, &shared.shutdown, &mut |event| {
                            match event {
                                FlushEvent::Retrying { .. } => {
                                    let stats = txns.stats();
                                    stats.wal_fsync_retries.fetch_add(1, Ordering::Relaxed);
                                    stats.wal_faults_observed.fetch_add(1, Ordering::Relaxed);
                                }
                                FlushEvent::Poisoned => {
                                    let stats = txns.stats();
                                    stats.wal_faults_observed.fetch_add(1, Ordering::Relaxed);
                                    degrade(&health, &txns, wal_degrade_reason(&wal));
                                }
                                _ => {}
                            }
                            shared.observe(MaintenanceEvent::Flusher(event));
                        });
                    }));
                    if run.is_err() {
                        wal.poison_with(PoisonCause::Panic);
                        wal.wake_all();
                        degrade(&health, &txns, DegradedReason::WalThreadPanic);
                    }
                })
                .expect("spawn wal flusher thread")
        });
        let gc = options.gc_interval.map(|interval| {
            let shared = shared.clone();
            let health = health.clone();
            let txns = txns.clone();
            let shards_per_pass = options.gc_shards_per_pass.max(1);
            std::thread::Builder::new()
                .name("ssi-gc".into())
                .spawn(move || {
                    let run = catch_unwind(AssertUnwindSafe(|| {
                        gc_loop(
                            &shared,
                            &catalog,
                            &txns,
                            &metrics,
                            interval,
                            shards_per_pass,
                        )
                    }));
                    if run.is_err() {
                        // A dead GC thread stops reclamation but not
                        // correctness: degrade (surfacing it through the
                        // health API) without blocking writes.
                        degrade(&health, &txns, DegradedReason::GcThreadPanic);
                    }
                })
                .expect("spawn gc thread")
        });
        Some(MaintenanceHub {
            shared,
            wal: flusher_wal,
            flusher,
            gc,
        })
    }

    /// True when the hub runs a dedicated WAL flusher.
    pub(crate) fn has_flusher(&self) -> bool {
        self.flusher.is_some()
    }

    /// True when the hub runs a background GC thread.
    pub(crate) fn has_gc(&self) -> bool {
        self.gc.is_some()
    }

    /// Installs (or clears) the step hook.
    pub(crate) fn set_hook(&self, hook: Option<MaintenanceHook>) {
        self.shared
            .hook_set
            .store(hook.is_some(), Ordering::Relaxed);
        *self.shared.hook.lock() = hook;
    }

    /// Forces one background GC pass now, regardless of the interval.
    /// Asynchronous: returns before the pass runs (observe it through the
    /// hook, or poll `ManagerStats::background_purge_runs`).
    pub(crate) fn step_gc(&self) {
        self.shared.gc_force.store(true, Ordering::Release);
        drop(self.shared.gc_mu.lock());
        self.shared.gc_cv.notify_all();
    }

    /// Stops and joins every thread (see the module docs, § Shutdown).
    /// Idempotent; also run by `Drop`.
    pub(crate) fn shutdown_and_join(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(wal) = &self.wal {
            // Prompt wakeup; the flusher drains all sealed work and exits.
            wal.request_flush();
        }
        drop(self.shared.gc_mu.lock());
        self.shared.gc_cv.notify_all();
        if let Some(t) = self.flusher.take() {
            let _ = t.join();
        }
        if let Some(t) = self.gc.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MaintenanceHub {
    fn drop(&mut self) {
        self.shutdown_and_join();
    }
}

/// `Healthy → Degraded{reason}` with the transition counted exactly once
/// in [`crate::ManagerStats::degraded_transitions`].
fn degrade(health: &HealthCell, txns: &TransactionManager, reason: DegradedReason) {
    if health.degrade(reason) {
        txns.stats()
            .degraded_transitions
            .fetch_add(1, Ordering::Relaxed);
    }
}

/// Maps a poisoned log's recorded cause onto the degradation reason.
fn wal_degrade_reason(wal: &WalWriter) -> DegradedReason {
    match wal.poison_cause().unwrap_or(PoisonCause::Io) {
        PoisonCause::Io => DegradedReason::WalPoisoned,
        PoisonCause::OutOfSpace => DegradedReason::OutOfSpace,
        PoisonCause::Panic => DegradedReason::WalThreadPanic,
    }
}

/// The background GC thread: purge `shards_per_pass` shards of every table
/// per tick, at the pinned safe horizon, behind a wrapping shard cursor.
fn gc_loop(
    shared: &HubShared,
    catalog: &Catalog,
    txns: &TransactionManager,
    metrics: &EngineMetrics,
    interval: Duration,
    shards_per_pass: usize,
) {
    let mut cursor = 0usize;
    loop {
        // Interval wait, cut short by step_gc or shutdown.
        {
            let mut guard = shared.gc_mu.lock();
            let deadline = Instant::now() + interval;
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if shared.gc_force.swap(false, Ordering::AcqRel) {
                    break;
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                shared.gc_cv.wait_for(&mut guard, deadline - now);
            }
        }
        shared.observe(MaintenanceEvent::GcPassStart {
            first_shard: cursor,
        });
        let t0 = Instant::now();
        let horizon = txns.gc_horizon();
        let mut stats = PurgeStats::at(horizon);
        for table in catalog.tables() {
            for i in 0..shards_per_pass.min(SHARD_COUNT) {
                stats.merge(&table.purge_shard(cursor + i, horizon));
            }
        }
        cursor = (cursor + shards_per_pass) % SHARD_COUNT;
        txns.stats().record_purge(&stats, true);
        let elapsed = t0.elapsed();
        metrics.gc_pass.record(elapsed);
        metrics.trace.emit(
            EventKind::GcPass,
            stats.versions,
            stats.chains,
            elapsed.as_nanos() as u64,
        );
        shared.observe(MaintenanceEvent::GcPassEnd {
            versions: stats.versions,
            chains: stats.chains,
        });
    }
}
