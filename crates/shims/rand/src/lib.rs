//! Vendored, API-compatible subset of the `rand` crate.
//!
//! Provides the pieces the workloads use — `SmallRng`, `SeedableRng`,
//! `Rng::gen`, `Rng::gen_range` over integer ranges — backed by
//! xoshiro256++ (the same generator family real `SmallRng` uses on
//! 64-bit targets), seeded through splitmix64. Deterministic for a
//! given seed, not cryptographically secure, exactly like the original.

use std::ops::{Range, RangeInclusive};

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

/// Seeding interface; only `seed_from_u64` is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the full value domain.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u8 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

/// Ranges that `Rng::gen_range` accepts. The target type is a trait
/// parameter (as in real rand) so integer literals infer it from the
/// call site.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Lemire-style rejection to avoid modulo bias.
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let v = rng.next_u64();
        let hi = ((v as u128 * bound as u128) >> 64) as u64;
        let lo = (v as u128 * bound as u128) as u64;
        if lo >= threshold {
            return hi;
        }
    }
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

int_range_impls!(u64, u32, u16, u8, usize);

/// Convenience sampling methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// xoshiro256++ generator.
#[derive(Clone, Debug)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    fn from_seed_u64(seed: u64) -> Self {
        // splitmix64 expansion, as recommended by the xoshiro authors.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        Xoshiro256PlusPlus { s }
    }
}

impl RngCore for Xoshiro256PlusPlus {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    fn seed_from_u64(seed: u64) -> Self {
        Xoshiro256PlusPlus::from_seed_u64(seed)
    }
}

/// Generator namespace mirroring `rand::rngs`.
pub mod rngs {
    /// A small, fast, non-cryptographic generator (xoshiro256++).
    pub type SmallRng = super::Xoshiro256PlusPlus;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5u64..=5);
            assert_eq!(w, 5);
            let idx = rng.gen_range(0usize..3);
            assert!(idx < 3);
        }
    }

    #[test]
    fn unit_floats_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean} not ~0.5");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }
}
