//! Property-based tests.
//!
//! The central property is the paper's correctness claim (Sec. 3.4): for
//! *any* interleaving of *any* set of transactions, the committed
//! transactions under Serializable SI form an acyclic multiversion
//! serialization graph. We generate random small workloads (random read /
//! write / scan / delete steps over a small key space, sliced into random
//! interleavings), execute them single-threaded in the generated order, and
//! check the recorded history with the MVSG verifier.
//!
//! A second property checks the complementary statement for plain SI: it
//! never aborts anything except on write-write conflicts — so every
//! generated schedule without concurrent writes to the same key commits —
//! which guards against the SSI machinery accidentally leaking into the SI
//! code path.

use proptest::prelude::*;

use serializable_si::{Database, IsolationLevel, Options, TableRef, Transaction};

/// One step of a generated transaction.
#[derive(Clone, Debug)]
enum Step {
    Get(u8),
    Put(u8, u8),
    Delete(u8),
    ScanAll,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u8..8).prop_map(Step::Get),
        ((0u8..8), any::<u8>()).prop_map(|(k, v)| Step::Put(k, v)),
        (0u8..8).prop_map(Step::Delete),
        Just(Step::ScanAll),
    ]
}

/// A generated workload: up to 4 transactions of up to 5 steps each, plus an
/// interleaving order.
#[derive(Clone, Debug)]
struct GeneratedWorkload {
    transactions: Vec<Vec<Step>>,
    /// Interleaving: a sequence of transaction indexes; each occurrence
    /// executes that transaction's next step (or its commit once it has no
    /// steps left).
    order: Vec<usize>,
}

fn workload_strategy() -> impl Strategy<Value = GeneratedWorkload> {
    let txns = prop::collection::vec(prop::collection::vec(step_strategy(), 1..5), 2..4);
    txns.prop_flat_map(|transactions| {
        // Each transaction contributes (steps + 1) slots: its steps plus the
        // final commit.
        let slots: Vec<usize> = transactions
            .iter()
            .enumerate()
            .flat_map(|(i, steps)| std::iter::repeat_n(i, steps.len() + 1))
            .collect();
        let order = Just(slots).prop_shuffle();
        (Just(transactions), order).prop_map(|(transactions, order)| GeneratedWorkload {
            transactions,
            order,
        })
    })
}

fn seed_table(db: &Database) -> TableRef {
    let table = db.create_table("t").unwrap();
    let mut txn = db.begin();
    for k in 0u8..8 {
        txn.put(&table, &[k], &[0]).unwrap();
    }
    txn.commit().unwrap();
    table
}

fn apply_step(txn: &mut Transaction, table: &TableRef, step: &Step) -> serializable_si::Result<()> {
    match step {
        Step::Get(k) => txn.get(table, &[*k]).map(|_| ()),
        Step::Put(k, v) => txn.put(table, &[*k], &[*v]),
        Step::Delete(k) => txn.delete(table, &[*k]),
        Step::ScanAll => txn
            .scan(
                table,
                std::ops::Bound::Unbounded,
                std::ops::Bound::Unbounded,
            )
            .map(|_| ()),
    }
}

/// Executes the generated workload at the given isolation level; returns
/// `(number committed, is the recorded history serializable)`.
fn execute(workload: &GeneratedWorkload, level: IsolationLevel) -> (usize, bool) {
    let mut options = Options::default().with_isolation(level).with_history();
    // Single-threaded execution: a blocking lock can never be released by
    // anyone, so keep the timeout short. Timeouts count as aborts.
    options.lock.wait_timeout = std::time::Duration::from_millis(10);
    let db = Database::open(options);
    let table = seed_table(&db);

    let mut handles: Vec<Option<Transaction>> = workload
        .transactions
        .iter()
        .map(|_| Some(db.begin()))
        .collect();
    let mut progress = vec![0usize; workload.transactions.len()];
    let mut committed = 0usize;

    for &txn_idx in &workload.order {
        let steps = &workload.transactions[txn_idx];
        let Some(handle) = handles[txn_idx].as_mut() else {
            continue;
        };
        if progress[txn_idx] < steps.len() {
            let step = &steps[progress[txn_idx]];
            progress[txn_idx] += 1;
            if apply_step(handle, &table, step).is_err() {
                handles[txn_idx] = None; // aborted by the engine
            }
        } else {
            // Commit slot.
            let handle = handles[txn_idx].take().unwrap();
            if handle.commit().is_ok() {
                committed += 1;
            }
        }
    }
    // Roll back anything unfinished.
    for handle in handles.into_iter().flatten() {
        handle.rollback();
    }

    let serializable = db.history().unwrap().analyze().is_serializable();
    (committed, serializable)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        ..ProptestConfig::default()
    })]

    /// The headline property (Theorem of Sec. 3.4): whatever commits under
    /// Serializable SI is conflict-serializable.
    #[test]
    fn ssi_histories_are_always_serializable(workload in workload_strategy()) {
        let (_committed, serializable) =
            execute(&workload, IsolationLevel::SerializableSnapshotIsolation);
        prop_assert!(serializable);
    }

    /// The same property holds for the basic (boolean-flag) variant and at
    /// page granularity — coarser detection may abort more, never less.
    #[test]
    fn ssi_basic_variant_histories_are_serializable(workload in workload_strategy()) {
        let mut options = Options::berkeley_like(4).with_history();
        options.lock.wait_timeout = std::time::Duration::from_millis(10);
        let db = Database::open(options);
        let table = seed_table(&db);

        let mut handles: Vec<Option<Transaction>> =
            workload.transactions.iter().map(|_| Some(db.begin())).collect();
        let mut progress = vec![0usize; workload.transactions.len()];
        for &txn_idx in &workload.order {
            let steps = &workload.transactions[txn_idx];
            let Some(handle) = handles[txn_idx].as_mut() else { continue };
            if progress[txn_idx] < steps.len() {
                let step = &steps[progress[txn_idx]];
                progress[txn_idx] += 1;
                if apply_step(handle, &table, step).is_err() {
                    handles[txn_idx] = None;
                }
            } else {
                let handle = handles[txn_idx].take().unwrap();
                let _ = handle.commit();
            }
        }
        for handle in handles.into_iter().flatten() {
            handle.rollback();
        }
        prop_assert!(db.history().unwrap().analyze().is_serializable());
    }

    /// S2PL histories are serializable as well (sanity for the classic
    /// algorithm our comparison baseline uses).
    #[test]
    fn s2pl_histories_are_always_serializable(workload in workload_strategy()) {
        let (_committed, serializable) =
            execute(&workload, IsolationLevel::StrictTwoPhaseLocking);
        prop_assert!(serializable);
    }

    /// Plain SI only ever aborts on write-write conflicts: if the generated
    /// transactions write disjoint key sets, every one of them commits.
    #[test]
    fn si_commits_everything_when_write_sets_are_disjoint(
        workload in workload_strategy()
    ) {
        // Restrict to disjoint write sets by remapping each transaction's
        // writes into its own key region.
        let mut disjoint = workload.clone();
        for (i, steps) in disjoint.transactions.iter_mut().enumerate() {
            for step in steps.iter_mut() {
                if let Step::Put(k, _) | Step::Delete(k) = step {
                    *k = (*k % 2) + (i as u8) * 2;
                }
            }
        }
        let total = disjoint.transactions.len();
        let (committed, _serializable) =
            execute(&disjoint, IsolationLevel::SnapshotIsolation);
        prop_assert_eq!(committed, total);
    }
}
