//! Data-access operations of a [`Transaction`]: point reads, writes,
//! deletes, locking reads and predicate (range) scans, dispatched on the
//! transaction's isolation level.
//!
//! The Serializable SI paths follow Figs. 3.4–3.7 of the thesis:
//!
//! * `get` takes a non-blocking SIREAD lock, registers a conflict with any
//!   EXCLUSIVE holder, performs the ordinary snapshot read, and registers a
//!   conflict with the creator of every newer version it skipped;
//! * `put`/`delete` take the EXCLUSIVE lock, apply first-committer-wins,
//!   register conflicts with SIREAD holders that overlap the writer, and —
//!   for inserts and deletes at row granularity — do the same on the gap
//!   lock protecting the key range (phantom handling, Sec. 3.5);
//! * `scan` is `get` applied to every row the predicate examines, plus
//!   SIREAD gap locks so later inserts into the scanned range are detected.
//!
//! ## Secondary-index protocol
//!
//! Index predicates move the Sec. 3.5 phantom machinery into *entry
//! space*: lock names are `(index id, encoded entry)` instead of
//! `(table id, row key)`, but the protocol shape is identical.
//!
//! * **Writes** (`index_maintenance`, run before the version is
//!   installed): for every index whose extracted key *changes* (a fresh
//!   claim — insert or rename, never a same-key overwrite), the writer
//!   takes an EXCLUSIVE gap lock on the next entry after its new entry
//!   (supremum if none) and registers rw-conflicts with SIREAD holders, so
//!   concurrent index predicates see the phantom. Unique indexes
//!   additionally serialize claims of one index key under an EXCLUSIVE
//!   *marker* lock on `(index id, index key)` and check the latest
//!   committed state under it — a duplicate claim aborts with the typed
//!   [`AbortReason::UniqueViolation`] at every isolation level, because a
//!   constraint, unlike serializability, cannot be traded away.
//! * **Reads** (`do_index_scan`): entries are probed in order; each visited
//!   entry gets a SIREAD (SSI) or SHARED (S2PL) gap lock, the claiming
//!   row is then read with the ordinary row protocol, and the row's
//!   *current* value is re-extracted to filter entries staled by renames
//!   and deletes (stale entries linger until GC). After the pass the
//!   locked region is swept to a fixpoint — entries installed concurrently
//!   between probe and lock are absorbed, exactly like the row scan's gap
//!   sweep.
//! * **History**: index reads and writes are recorded under the index's id
//!   (reads only for entries that pass the filter; absences as gap
//!   records), so the MVSG verifier checks index predicates like any other
//!   item — see `verify.rs`.

use std::ops::Bound;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use ssi_common::{AbortReason, Bytes, Error, IsolationLevel, Result, Timestamp, TxnId};
use ssi_lock::{LockKey, LockMode};
use ssi_storage::{
    as_ref_bound, clone_bound, decode_entry, encode_entry, entry_range, Index, VisibleRead,
};

use crate::db::{IndexRef, TableRef};
use crate::options::LockGranularity;
use crate::ssi::{self, CallerRole};
use crate::txn::{Transaction, WriteRecord};
use crate::txn_shared::DependencyOutcome;
use crate::verify::{ReadRecord, WriteRecordEntry};

/// How a speculative read (of a provisionally stamped version) resolved.
enum Speculation {
    /// The creator settled as committed meanwhile: an ordinary read.
    Committed,
    /// The creator is still in its commit window; a commit dependency on it
    /// is registered and the value is used speculatively.
    Speculative,
    /// The creator aborted (or retired): the version chain has changed —
    /// or is about to — so the read must be retried.
    Retry,
}

impl Transaction {
    // ------------------------------------------------------------------
    // Public operations
    // ------------------------------------------------------------------

    /// Reads the value of `key`, or `None` if it does not exist (for this
    /// transaction's snapshot / isolation level). The value is a refcounted
    /// handle to the stored version's payload — the snapshot read path
    /// performs no byte copy.
    pub fn get(&mut self, table: &TableRef, key: &[u8]) -> Result<Option<Bytes>> {
        let table = table.clone();
        let key = key.to_vec();
        let t0 = self.db.metrics.read.start();
        let result = self.run_op(move |txn| txn.do_get(&table, &key));
        self.db.metrics.read.finish(t0);
        result
    }

    /// Reads `key` with the intention to update it: the EXCLUSIVE lock is
    /// acquired *before* the value is read, and the latest committed value
    /// is returned (the behaviour of `SELECT … FOR UPDATE` in the InnoDB
    /// prototype, Sec. 4.5). Under SI/SSI the first-committer-wins check is
    /// applied exactly as for a write.
    pub fn get_for_update(&mut self, table: &TableRef, key: &[u8]) -> Result<Option<Bytes>> {
        let table = table.clone();
        let key = key.to_vec();
        self.run_op(move |txn| txn.do_get_for_update(&table, &key))
    }

    /// Writes `value` for `key` (insert or update).
    pub fn put(&mut self, table: &TableRef, key: &[u8], value: &[u8]) -> Result<()> {
        let table = table.clone();
        let key = key.to_vec();
        let value = value.to_vec();
        self.run_op(move |txn| txn.do_write(&table, &key, Some(value)))
    }

    /// Deletes `key` (installs a tombstone version).
    pub fn delete(&mut self, table: &TableRef, key: &[u8]) -> Result<()> {
        let table = table.clone();
        let key = key.to_vec();
        self.run_op(move |txn| txn.do_write(&table, &key, None))
    }

    /// Range scan over `[lower, upper]` bounds, returning visible rows in
    /// key order.
    pub fn scan(
        &mut self,
        table: &TableRef,
        lower: Bound<&[u8]>,
        upper: Bound<&[u8]>,
    ) -> Result<Vec<(Vec<u8>, Bytes)>> {
        let table = table.clone();
        let lower: Bound<Vec<u8>> = clone_bound(lower);
        let upper: Bound<Vec<u8>> = clone_bound(upper);
        let t0 = self.db.metrics.scan.start();
        let result =
            self.run_op(move |txn| txn.do_scan(&table, as_ref_bound(&lower), as_ref_bound(&upper)));
        self.db.metrics.scan.finish(t0);
        result
    }

    /// Range scan over a secondary index: returns `(primary key, row
    /// value)` pairs for every visible row whose extracted index key lies
    /// within the given bounds (which are *raw index keys*, not entry
    /// bytes), ordered by `(index key, primary key)`.
    ///
    /// Resident entries whose visible row version no longer extracts to
    /// them (stale until version GC reclaims the shadowed version) are
    /// filtered out by re-extraction; under SSI their *row* read is still
    /// recorded and SIREAD-locked, so a later rewrite of the row conflicts
    /// with this scan exactly as a newer version would.
    pub fn index_scan(
        &mut self,
        index: &IndexRef,
        lower: Bound<&[u8]>,
        upper: Bound<&[u8]>,
    ) -> Result<Vec<(Vec<u8>, Bytes)>> {
        let index = index.clone();
        let lower: Bound<Vec<u8>> = clone_bound(lower);
        let upper: Bound<Vec<u8>> = clone_bound(upper);
        let t0 = self.db.metrics.scan.start();
        let result = self.run_op(move |txn| {
            txn.do_index_scan(&index, as_ref_bound(&lower), as_ref_bound(&upper))
        });
        self.db.metrics.scan.finish(t0);
        result
    }

    /// [`Transaction::index_scan`] over exactly one index key: every
    /// visible row whose extracted key equals `index_key`, in primary-key
    /// order.
    pub fn index_lookup(
        &mut self,
        index: &IndexRef,
        index_key: &[u8],
    ) -> Result<Vec<(Vec<u8>, Bytes)>> {
        self.index_scan(
            index,
            Bound::Included(index_key),
            Bound::Included(index_key),
        )
    }

    /// Scans all keys starting with `prefix`.
    pub fn scan_prefix(
        &mut self,
        table: &TableRef,
        prefix: &[u8],
    ) -> Result<Vec<(Vec<u8>, Bytes)>> {
        match prefix_upper_bound(prefix) {
            Some(upper) => self.scan(
                table,
                Bound::Included(prefix),
                Bound::Excluded(upper.as_slice()),
            ),
            None => self.scan(table, Bound::Included(prefix), Bound::Unbounded),
        }
    }

    // ------------------------------------------------------------------
    // Lock-name helpers
    // ------------------------------------------------------------------

    fn lock_target(&self, table: &TableRef, key: &[u8]) -> LockKey {
        match &self.db.pages {
            Some(pages) => LockKey::page(table.id(), pages.page_of(key)),
            None => LockKey::record(table.id(), key.to_vec()),
        }
    }

    fn gap_target(&self, table: &TableRef, next: Option<Vec<u8>>) -> LockKey {
        match next {
            Some(k) => LockKey::gap(table.id(), k),
            None => LockKey::supremum(table.id()),
        }
    }

    fn end_gap_target(&self, table: &TableRef, upper: &Bound<&[u8]>) -> LockKey {
        match upper {
            Bound::Unbounded => LockKey::supremum(table.id()),
            Bound::Included(h) => {
                let next = table.table.next_key_after(h);
                self.gap_target(table, next)
            }
            Bound::Excluded(h) => {
                let next = table.table.next_key_at_or_after(h);
                self.gap_target(table, next)
            }
        }
    }

    fn row_granularity(&self) -> bool {
        matches!(self.db.options.granularity, LockGranularity::Row)
    }

    /// Closes a scanned region against phantoms. `visited` holds the keys
    /// the scan processed inside `(from, to)` in ascending order; the
    /// caller must already hold, in `mode`, the gap locks of every visited
    /// key *and* of the region's upper boundary.
    ///
    /// Any other key present in the region was committed into a gap while
    /// the scan was paging. Each one is gap-locked in `mode` as well — an
    /// insert splits a gap, and without a lock on the new key's gap a
    /// *second* insert in front of it would escape detection — and the
    /// region is re-queried until a full pass finds nothing new. After that
    /// fixpoint, every key in the region carries our gap lock, so any later
    /// insert's next-key gap target must collide with a lock this
    /// transaction holds. Returns the newly discovered keys in ascending
    /// order for the caller to read/conflict on.
    ///
    /// The pass count is bounded: a writer storm that lands a fresh insert
    /// inside the race window of every single pass would otherwise starve
    /// the scan. Exhausting the bound aborts this transaction (retryably),
    /// which is sound — an aborted scan imposes no ordering constraints.
    fn sweep_gap_region(
        &mut self,
        table: &TableRef,
        from: Bound<&[u8]>,
        to: Bound<&[u8]>,
        visited: &[Vec<u8>],
        mode: LockMode,
    ) -> Result<Vec<Vec<u8>>> {
        const MAX_PASSES: usize = 16;
        debug_assert!(visited.windows(2).all(|w| w[0] < w[1]));
        let mut seen: Vec<Vec<u8>> = visited.to_vec();
        let mut missed: Vec<Vec<u8>> = Vec::new();
        for _ in 0..MAX_PASSES {
            let mut grew = false;
            for key in table.table.keys_in_range(from, to) {
                let Err(pos) = seen.binary_search(&key) else {
                    continue;
                };
                let outcome = self.acquire(LockKey::gap(table.id(), key.clone()), mode)?;
                if mode == LockMode::SiRead {
                    self.mark_read_conflicts(&outcome.rw_conflicts)?;
                }
                seen.insert(pos, key.clone());
                let mpos = missed.binary_search(&key).unwrap_err();
                missed.insert(mpos, key);
                grew = true;
            }
            if !grew {
                return Ok(missed);
            }
        }
        Err(Error::abort_with_reason(
            AbortReason::GapSweepExhausted,
            self.shared.id(),
        ))
    }

    /// 2PL handling of keys [`Transaction::sweep_gap_region`] discovered:
    /// lock, read and splice each one into the (key-ordered) result.
    fn absorb_missed_rows_2pl(
        &mut self,
        table: &TableRef,
        missed: Vec<Vec<u8>>,
        result: &mut Vec<(Vec<u8>, Bytes)>,
    ) -> Result<()> {
        let id = self.shared.id();
        for key in missed {
            let lock = self.lock_target(table, &key);
            self.acquire(lock, LockMode::Shared)?;
            if let Some(value) = table.table.read_latest_committed(&key, id) {
                let pos = result
                    .binary_search_by(|(k, _)| k.as_slice().cmp(&key))
                    .unwrap_or_else(|p| p);
                result.insert(pos, (key.clone(), value));
            }
            let ts = table.table.newest_committed_ts(&key);
            self.record_read(table, &key, ts, false);
        }
        Ok(())
    }

    /// SSI handling of keys [`Transaction::sweep_gap_region`] discovered:
    /// treat each exactly like a cursor-visited row — row SIREAD first
    /// (without it a later *update* of the phantom key, which takes no gap
    /// lock, would escape both detection channels), then conflict with the
    /// creators of its (invisible) versions under that lock and record the
    /// predicate read for the verifier. Such keys are never visible to the
    /// scan's snapshot — a version committed before the snapshot would have
    /// been in the ordered index when the page was read.
    fn absorb_missed_keys_ssi(
        &mut self,
        table: &TableRef,
        missed: Vec<Vec<u8>>,
        snapshot: Timestamp,
    ) -> Result<()> {
        for key in missed {
            let lock = self.lock_target(table, &key);
            let outcome = self.acquire(lock, LockMode::SiRead)?;
            self.mark_read_conflicts(&outcome.rw_conflicts)?;
            let probe = self.snapshot_read(table, &key, snapshot);
            self.mark_read_conflicts(&probe.newer_creators)?;
            self.record_read(
                table,
                &key,
                probe.read_version_ts,
                probe.speculative_of.is_some(),
            );
        }
        Ok(())
    }

    fn gap_locking_enabled(&self) -> bool {
        self.db.options.detect_phantoms && self.row_granularity()
    }

    // ------------------------------------------------------------------
    // Conflict-marking helpers (Serializable SI)
    // ------------------------------------------------------------------

    /// Marks `self --rw--> writer` for every transaction in `writers`
    /// (this transaction is the reader).
    fn mark_read_conflicts(&self, writers: &[TxnId]) -> Result<()> {
        for w in writers {
            if *w == self.shared.id() {
                continue;
            }
            match self.db.txns.find(*w) {
                Some(writer) => ssi::mark_conflict(
                    &self.db.txns,
                    &self.db.options.ssi,
                    &self.shared,
                    &writer,
                    CallerRole::Reader,
                )?,
                // The creator committed without SIREAD locks or outgoing
                // conflicts and has already been retired (a pure update).
                // Its own flags are irrelevant now, but this reader's
                // outgoing conflict must still be recorded — the reader may
                // be the pivot of a dangerous structure whose outgoing
                // transaction is exactly such a pure writer.
                None => ssi::mark_conflict_with_retired_writer(
                    &self.db.txns,
                    &self.db.options.ssi,
                    &self.shared,
                )?,
            }
        }
        Ok(())
    }

    /// Marks `reader --rw--> self` for every SIREAD holder in `readers`
    /// (this transaction is the writer). Only readers that overlap this
    /// transaction count (Fig. 3.5: "has not committed or committed after
    /// this transaction began").
    fn mark_write_conflicts(&self, readers: &[TxnId]) -> Result<()> {
        let my_begin = self.shared.begin_ts().unwrap_or(Timestamp::MAX);
        for r in readers {
            if *r == self.shared.id() {
                continue;
            }
            if let Some(reader) = self.db.txns.find(*r) {
                let overlaps = match reader.commit_ts() {
                    None => true,
                    Some(commit) => commit > my_begin,
                };
                if overlaps {
                    ssi::mark_conflict(
                        &self.db.txns,
                        &self.db.options.ssi,
                        &reader,
                        &self.shared,
                        CallerRole::Writer,
                    )?;
                }
            }
        }
        Ok(())
    }

    /// Records a read for the history verifier. Reads satisfied by the
    /// transaction's own uncommitted write are skipped: they impose no
    /// ordering constraints between transactions and would otherwise be
    /// indistinguishable from reads of a non-existent key.
    fn record_read(
        &mut self,
        table: &TableRef,
        key: &[u8],
        version_ts: Option<Timestamp>,
        speculative: bool,
    ) {
        if self.db.history.is_some() {
            self.reads.push(ReadRecord {
                table: table.id(),
                key: key.to_vec(),
                version_ts,
                speculative,
            });
        }
    }

    // ------------------------------------------------------------------
    // Speculative-read resolution
    // ------------------------------------------------------------------

    /// Snapshot point read that resolves provisional versions itself
    /// instead of waiting for the creator's timestamp to be published.
    ///
    /// When the storage layer reports the visible version as provisional
    /// (`speculative_of`), the creator is in its commit window with a
    /// stamped timestamp at or below our snapshot. Three cases:
    ///
    /// * the creator already settled as committed — an ordinary read;
    /// * the creator is still committing — the value is taken
    ///   *speculatively* after registering a commit dependency, so an
    ///   eventual abort of the creator dooms this transaction too
    ///   (and our own commit waits for the creator to settle first);
    /// * the creator aborted or retired — the chain is changing under us,
    ///   retry until the read settles.
    ///
    /// The returned read keeps `speculative_of` set only if the value was
    /// actually taken speculatively.
    fn snapshot_read(&mut self, table: &TableRef, key: &[u8], snapshot: Timestamp) -> VisibleRead {
        loop {
            let mut read = table.table.read(key, self.shared.id(), snapshot);
            let Some(creator) = read.speculative_of else {
                return read;
            };
            match self.resolve_speculative_creator(creator) {
                Speculation::Committed => {
                    read.speculative_of = None;
                    return read;
                }
                Speculation::Speculative => {
                    self.db
                        .txns
                        .stats()
                        .speculative_reads
                        .fetch_add(1, Ordering::Relaxed);
                    return read;
                }
                Speculation::Retry => std::hint::spin_loop(),
            }
        }
    }

    /// Resolves the creator of a provisionally stamped version, registering
    /// a commit dependency when it is still in its window. A creator gone
    /// from the registry is ambiguous — committed-and-retired or
    /// aborted-and-retired — but both have already settled the version cell
    /// (plain stamp or un-stamp happen *before* retirement), so a retry
    /// reads the truth.
    fn resolve_speculative_creator(&mut self, creator: TxnId) -> Speculation {
        if self.speculative_deps.iter().any(|d| d.id() == creator) {
            // Already a dependency: our commit waits for it either way.
            return Speculation::Speculative;
        }
        let Some(writer) = self.db.txns.find(creator) else {
            return Speculation::Retry;
        };
        match writer.register_commit_dependent(&self.shared) {
            DependencyOutcome::Committed => Speculation::Committed,
            DependencyOutcome::Aborted => Speculation::Retry,
            DependencyOutcome::Registered => {
                self.db
                    .txns
                    .stats()
                    .commit_dependencies
                    .fetch_add(1, Ordering::Relaxed);
                self.speculative_deps.push(writer);
                Speculation::Speculative
            }
        }
    }

    // ------------------------------------------------------------------
    // Point reads
    // ------------------------------------------------------------------

    fn do_get(&mut self, table: &TableRef, key: &[u8]) -> Result<Option<Bytes>> {
        match self.shared.isolation() {
            IsolationLevel::ReadCommitted => {
                Ok(table.table.read_latest_committed(key, self.shared.id()))
            }
            IsolationLevel::StrictTwoPhaseLocking => {
                let lock = self.lock_target(table, key);
                self.acquire(lock, LockMode::Shared)?;
                let value = table.table.read_latest_committed(key, self.shared.id());
                let ts = table.table.newest_committed_ts(key);
                self.record_read(table, key, ts, false);
                Ok(value)
            }
            IsolationLevel::SnapshotIsolation => {
                let snapshot = self.db.txns.ensure_snapshot(&self.shared);
                let read = self.snapshot_read(table, key, snapshot);
                if !read.read_own_write {
                    self.record_read(
                        table,
                        key,
                        read.read_version_ts,
                        read.speculative_of.is_some(),
                    );
                }
                Ok(read.value)
            }
            IsolationLevel::SerializableSnapshotIsolation => {
                let snapshot = self.db.txns.ensure_snapshot(&self.shared);
                let lock = self.lock_target(table, key);
                // Fig. 3.4: SIREAD lock (never blocks), conflict with any
                // EXCLUSIVE holder…
                let outcome = self.acquire(lock, LockMode::SiRead)?;
                self.mark_read_conflicts(&outcome.rw_conflicts)?;
                // …then the ordinary snapshot read — resolving a creator
                // caught in its commit window instead of waiting for its
                // timestamp to be published — and a conflict with the
                // creator of every newer version.
                let read = self.snapshot_read(table, key, snapshot);
                self.mark_read_conflicts(&read.newer_creators)?;
                if !read.read_own_write {
                    self.record_read(
                        table,
                        key,
                        read.read_version_ts,
                        read.speculative_of.is_some(),
                    );
                }
                Ok(read.value)
            }
        }
    }

    fn do_get_for_update(&mut self, table: &TableRef, key: &[u8]) -> Result<Option<Bytes>> {
        let id = self.shared.id();
        match self.shared.isolation() {
            IsolationLevel::ReadCommitted | IsolationLevel::StrictTwoPhaseLocking => {
                let lock = self.lock_target(table, key);
                self.acquire(lock, LockMode::Exclusive)?;
                let value = table.table.read_latest_committed(key, id);
                let ts = table.table.newest_committed_ts(key);
                self.record_read(table, key, ts, false);
                Ok(value)
            }
            IsolationLevel::SnapshotIsolation | IsolationLevel::SerializableSnapshotIsolation => {
                let lock = self.lock_target(table, key);
                let outcome = self.acquire(lock.clone(), LockMode::Exclusive)?;
                // Snapshot selection is deferred until after the lock is
                // granted (Sec. 4.5), so a transaction whose first statement
                // is a locking read never hits first-committer-wins.
                let snapshot = self.db.txns.ensure_snapshot(&self.shared);
                if let Some(newest) = table.table.newest_committed_ts(key) {
                    if newest > snapshot {
                        return Err(Error::update_conflict(id));
                    }
                }
                if self.shared.isolation() == IsolationLevel::SerializableSnapshotIsolation {
                    self.mark_write_conflicts(&outcome.rw_conflicts)?;
                    self.maybe_upgrade_siread(&lock);
                }
                let value = table.table.read_latest_committed(key, id);
                let ts = table.table.newest_committed_ts(key);
                self.record_read(table, key, ts, false);
                Ok(value)
            }
        }
    }

    // ------------------------------------------------------------------
    // Writes
    // ------------------------------------------------------------------

    /// Drops this transaction's SIREAD lock on an item once it holds the
    /// EXCLUSIVE lock on it (Sec. 3.7.3), if the optimization is enabled.
    ///
    /// The optimization is sound only when the locking granularity matches
    /// the versioning granularity: it relies on first-committer-wins
    /// covering any later writer of the same item. With page-level locks but
    /// row-level versions a different row on the same page would not trip
    /// FCW, so the upgrade is suppressed at page granularity.
    fn maybe_upgrade_siread(&mut self, lock: &LockKey) {
        if !self.db.options.ssi.upgrade_siread || !self.row_granularity() {
            return;
        }
        if let Some(modes) = self.locks.get_mut(lock) {
            if modes.remove(LockMode::SiRead) {
                self.db
                    .locks
                    .unlock(self.shared.id(), lock, LockMode::SiRead);
            }
        }
    }

    fn do_write(&mut self, table: &TableRef, key: &[u8], value: Option<Vec<u8>>) -> Result<()> {
        // Degraded (read-only) or closed: fail fast with the typed error
        // before taking any lock, instead of letting the commit discover a
        // poisoned log later. Reads stay untouched — the in-memory version
        // store is complete and consistent.
        if let Some(err) = self.db.health.write_block_error() {
            return Err(err);
        }
        let id = self.shared.id();
        let isolation = self.shared.isolation();
        let is_delete = value.is_none();

        // Every isolation level locks writes exclusively; under SI/SSI this
        // is what implements first-updater-wins (Sec. 2.5).
        let lock = self.lock_target(table, key);
        let outcome = self.acquire(lock.clone(), LockMode::Exclusive)?;

        if isolation.uses_snapshot() {
            // Snapshot chosen only after the first lock is granted
            // (Sec. 4.5).
            let snapshot = self.db.txns.ensure_snapshot(&self.shared);
            if let Some(newest) = table.table.newest_committed_ts(key) {
                if newest > snapshot {
                    return Err(Error::update_conflict(id));
                }
            }
        }
        if isolation == IsolationLevel::SerializableSnapshotIsolation {
            // Fig. 3.5: conflict with every overlapping SIREAD holder.
            self.mark_write_conflicts(&outcome.rw_conflicts)?;
            self.maybe_upgrade_siread(&lock);
        }

        // Phantom handling: inserts and deletes lock the gap after the key
        // (Fig. 3.7) so concurrent predicate reads notice them. Updates of
        // existing keys do not change predicate results and need no gap
        // lock. Page-level locking subsumes this (Sec. 3.5).
        let is_insert = !table.table.contains_key(key);
        let needs_gap = self.gap_locking_enabled()
            && (is_insert || is_delete)
            && matches!(
                isolation,
                IsolationLevel::StrictTwoPhaseLocking
                    | IsolationLevel::SerializableSnapshotIsolation
            );
        if needs_gap {
            let next = table.table.next_key_after(key);
            let gap = self.gap_target(table, next);
            let gap_outcome = self.acquire(gap, LockMode::Exclusive)?;
            if isolation == IsolationLevel::SerializableSnapshotIsolation {
                self.mark_write_conflicts(&gap_outcome.rw_conflicts)?;
            }
        }

        // Secondary-index side of the write: unique enforcement under the
        // index-point marker lock, entry-space gap locks for fresh claims,
        // and the verifier's index-space write records. Must run *before*
        // the version is installed so the shadowed state is still readable.
        self.index_maintenance(table, key, value.as_deref())?;

        let version = table.table.install_version(key, id, value);
        self.writes.push(WriteRecord {
            table: Arc::clone(&table.table),
            key: key.to_vec(),
            version,
        });
        Ok(())
    }

    // ------------------------------------------------------------------
    // Secondary-index maintenance (writer side)
    // ------------------------------------------------------------------

    /// The index-side protocol of one row write, run before the version is
    /// installed (see the `ssi_storage::index` module docs for the entry
    /// lifecycle; storage maintains the entries themselves at version
    /// install/unlink/purge):
    ///
    /// * a write claiming a *fresh* index key under a unique index takes an
    ///   EXCLUSIVE lock on the `(index id, index key)` point — the marker
    ///   every claimant of that key serializes through, at every isolation
    ///   level — and then checks for a surviving other claimant, aborting
    ///   with [`AbortReason::UniqueViolation`] if one exists. Blocking on
    ///   the marker is what makes two racing inserts deterministic: the
    ///   loser waits out the winner's commit and then sees its claim;
    /// * a fresh claim is an *insert into entry space*: at the phantom-
    ///   detecting levels it locks the gap after the new entry exactly as a
    ///   row insert locks its key gap (Fig. 3.7 applied to the index), so
    ///   concurrent index scans notice it;
    /// * with history recording on, the write is mirrored into index space
    ///   for the MVSG verifier: the new entry as a write, the shadowed old
    ///   entry (key changed or row deleted) as a tombstone write.
    fn index_maintenance(
        &mut self,
        table: &TableRef,
        key: &[u8],
        value: Option<&[u8]>,
    ) -> Result<()> {
        let indexes = table.table.indexes();
        if indexes.is_empty() {
            return Ok(());
        }
        let isolation = self.shared.isolation();
        // The state this write shadows: the latest committed value, or this
        // transaction's own latest pending write of the key.
        let old_value = table.table.read_latest_committed(key, self.shared.id());
        for index in &indexes {
            let old_ik = old_value
                .as_ref()
                .and_then(|v| index.spec().extract(key, v));
            let new_ik = value.and_then(|v| index.spec().extract(key, v));
            let fresh_claim = new_ik.is_some() && new_ik != old_ik;
            if fresh_claim {
                let ik = new_ik.as_deref().expect("fresh_claim implies Some");
                if index.unique() {
                    let marker = LockKey::record(index.id(), ik.to_vec());
                    let outcome = self.acquire(marker, LockMode::Exclusive)?;
                    if isolation == IsolationLevel::SerializableSnapshotIsolation {
                        self.mark_write_conflicts(&outcome.rw_conflicts)?;
                    }
                    self.check_unique(table, index, key, ik)?;
                }
                if self.gap_locking_enabled()
                    && matches!(
                        isolation,
                        IsolationLevel::StrictTwoPhaseLocking
                            | IsolationLevel::SerializableSnapshotIsolation
                    )
                {
                    let entry = encode_entry(ik, key);
                    let gap = match index.next_entry_after(&entry) {
                        Some(next) => LockKey::gap(index.id(), next.to_vec()),
                        None => LockKey::supremum(index.id()),
                    };
                    let gap_outcome = self.acquire(gap, LockMode::Exclusive)?;
                    if isolation == IsolationLevel::SerializableSnapshotIsolation {
                        self.mark_write_conflicts(&gap_outcome.rw_conflicts)?;
                    }
                }
            }
            if self.db.history.is_some() {
                if let Some(ik) = &new_ik {
                    self.index_writes.push(WriteRecordEntry {
                        table: index.id(),
                        key: encode_entry(ik, key),
                        tombstone: false,
                    });
                }
                if let Some(ik) = &old_ik {
                    if old_ik != new_ik {
                        self.index_writes.push(WriteRecordEntry {
                            table: index.id(),
                            key: encode_entry(ik, key),
                            tombstone: true,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Unique-constraint check, under the held marker lock: any *other*
    /// primary key whose latest committed (or this transaction's own
    /// pending) row still extracts to `ik` makes this write a duplicate.
    /// Claims are serialized by the marker, so every resident claimant's
    /// outcome is settled when this runs — a resident entry either belongs
    /// to a committed claim (violation) or to an aborted/superseded version
    /// whose row no longer extracts to `ik` (stale, ignored).
    fn check_unique(
        &mut self,
        table: &TableRef,
        index: &Arc<Index>,
        pk: &[u8],
        ik: &[u8],
    ) -> Result<()> {
        let (lo, hi) = entry_range(Bound::Included(ik), Bound::Included(ik));
        for entry in index.entries_in_range(as_ref_bound(&lo), as_ref_bound(&hi), None) {
            let Some((_, other_pk)) = decode_entry(&entry) else {
                continue;
            };
            if other_pk == pk {
                continue;
            }
            let claimed = table
                .table
                .read_latest_committed(&other_pk, self.shared.id())
                .is_some_and(|v| index.spec().extract(&other_pk, &v).as_deref() == Some(ik));
            if claimed {
                return Err(Error::abort_with_reason(
                    AbortReason::UniqueViolation,
                    self.shared.id(),
                ));
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Predicate reads
    // ------------------------------------------------------------------

    /// All scan variants stream rows through the storage layer's paging
    /// cursor ([`ssi_storage::Table::cursor`]): only one page of chain
    /// handles is materialized at a time and the table's ordered-index lock
    /// is released between pages, so a large scan never blocks writers of
    /// new keys for its whole duration.
    fn do_scan(
        &mut self,
        table: &TableRef,
        lower: Bound<&[u8]>,
        upper: Bound<&[u8]>,
    ) -> Result<Vec<(Vec<u8>, Bytes)>> {
        let id = self.shared.id();
        match self.shared.isolation() {
            IsolationLevel::ReadCommitted => {
                let snapshot = self.db.txns.current_ts();
                let mut result = Vec::new();
                for entry in table.table.cursor(lower, upper, id, snapshot) {
                    // Even read-committed must not return data that can
                    // still roll back: resolve provisional rows the same
                    // way the snapshot levels do (the commit dependency is
                    // settled in `Transaction::commit`).
                    let value = if entry.speculative_of.is_some() {
                        self.snapshot_read(table, &entry.key, snapshot).value
                    } else {
                        entry.value
                    };
                    if let Some(value) = value {
                        result.push((entry.key, value));
                    }
                }
                Ok(result)
            }
            IsolationLevel::StrictTwoPhaseLocking => {
                let snapshot = self.db.txns.current_ts();
                let gap_on = self.gap_locking_enabled();
                let mut result = Vec::new();
                // Region bookkeeping for the phantom sweep: keys visited
                // (and gap-locked) since the last sweep, and where that
                // region starts.
                let mut region_start: Bound<Vec<u8>> = clone_bound(lower);
                let mut batch: Vec<Vec<u8>> = Vec::new();
                for entry in table.table.cursor(lower, upper, id, snapshot) {
                    if gap_on {
                        let gap = LockKey::gap(table.id(), entry.key.clone());
                        self.acquire(gap, LockMode::Shared)?;
                    }
                    let lock = self.lock_target(table, &entry.key);
                    self.acquire(lock, LockMode::Shared)?;
                    // Re-read under the lock: the value may have changed
                    // between the unlocked scan and the lock grant.
                    if let Some(value) = table.table.read_latest_committed(&entry.key, id) {
                        result.push((entry.key.clone(), value));
                    }
                    let ts = table.table.newest_committed_ts(&entry.key);
                    self.record_read(table, &entry.key, ts, false);
                    if gap_on {
                        batch.push(entry.key);
                        if batch.len() >= GAP_SWEEP_BATCH {
                            // Rows committed into the region's gaps before
                            // their gap locks were granted were missed by
                            // the storage scan; lock and include them.
                            let to = Bound::Included(batch.last().unwrap().clone());
                            let missed = self.sweep_gap_region(
                                table,
                                as_ref_bound(&region_start),
                                as_ref_bound(&to),
                                &batch,
                                LockMode::Shared,
                            )?;
                            self.absorb_missed_rows_2pl(table, missed, &mut result)?;
                            region_start = bound_excluded(to);
                            batch.clear();
                        }
                    }
                }
                if gap_on {
                    let end_gap = self.end_gap_target(table, &upper);
                    self.acquire(end_gap, LockMode::Shared)?;
                    let missed = self.sweep_gap_region(
                        table,
                        as_ref_bound(&region_start),
                        upper,
                        &batch,
                        LockMode::Shared,
                    )?;
                    self.absorb_missed_rows_2pl(table, missed, &mut result)?;
                }
                Ok(result)
            }
            IsolationLevel::SnapshotIsolation => {
                let snapshot = self.db.txns.ensure_snapshot(&self.shared);
                let mut result = Vec::new();
                for entry in table.table.cursor(lower, upper, id, snapshot) {
                    let (value, version_ts, own, speculative) = if entry.speculative_of.is_some() {
                        let read = self.snapshot_read(table, &entry.key, snapshot);
                        (
                            read.value,
                            read.read_version_ts,
                            read.read_own_write,
                            read.speculative_of.is_some(),
                        )
                    } else {
                        (
                            entry.value,
                            entry.read_version_ts,
                            entry.read_own_write,
                            false,
                        )
                    };
                    if !own {
                        self.record_read(table, &entry.key, version_ts, speculative);
                    }
                    if let Some(value) = value {
                        result.push((entry.key, value));
                    }
                }
                Ok(result)
            }
            IsolationLevel::SerializableSnapshotIsolation => {
                let snapshot = self.db.txns.ensure_snapshot(&self.shared);
                let gap_on = self.gap_locking_enabled();
                let mut result = Vec::new();
                let mut region_start: Bound<Vec<u8>> = clone_bound(lower);
                let mut batch: Vec<Vec<u8>> = Vec::new();
                for entry in table.table.cursor(lower, upper, id, snapshot) {
                    // Fig. 3.6: every examined row is read under an SIREAD
                    // lock with the usual conflict checks…
                    let lock = self.lock_target(table, &entry.key);
                    let outcome = self.acquire(lock, LockMode::SiRead)?;
                    self.mark_read_conflicts(&outcome.rw_conflicts)?;
                    // …re-probing the version chain *under* the SIREAD so
                    // the paper's lock-then-read order (Fig. 3.4) holds per
                    // row: a writer that installed, committed and released
                    // its EXCLUSIVE lock entirely between the storage page
                    // read and this lock grant is invisible to both the
                    // page's `newer_creators` and the lock table, but a
                    // fresh chain read under the lock cannot miss it. The
                    // probe also resolves provisional rows (registering a
                    // commit dependency on a mid-window creator), so its
                    // result supersedes the page entry's below.
                    let probe = self.snapshot_read(table, &entry.key, snapshot);
                    self.mark_read_conflicts(&probe.newer_creators)?;
                    // …plus an SIREAD gap lock so that inserts into the
                    // scanned range are detected.
                    if gap_on {
                        let gap = LockKey::gap(table.id(), entry.key.clone());
                        let gap_outcome = self.acquire(gap, LockMode::SiRead)?;
                        self.mark_read_conflicts(&gap_outcome.rw_conflicts)?;
                    }
                    if !probe.read_own_write {
                        self.record_read(
                            table,
                            &entry.key,
                            probe.read_version_ts,
                            probe.speculative_of.is_some(),
                        );
                    }
                    if gap_on {
                        batch.push(entry.key.clone());
                        if batch.len() >= GAP_SWEEP_BATCH {
                            // With the region's gap SIREADs held, keys
                            // committed into its gaps before those locks
                            // were granted (phantoms this scan missed) are
                            // in the ordered index: gap-lock each of them
                            // too (so inserts into the sub-gaps they create
                            // are caught) and conflict with their creators
                            // exactly as for a newer version.
                            let to = Bound::Included(batch.last().unwrap().clone());
                            let missed = self.sweep_gap_region(
                                table,
                                as_ref_bound(&region_start),
                                as_ref_bound(&to),
                                &batch,
                                LockMode::SiRead,
                            )?;
                            self.absorb_missed_keys_ssi(table, missed, snapshot)?;
                            region_start = bound_excluded(to);
                            batch.clear();
                        }
                    }
                    if let Some(value) = probe.value {
                        result.push((entry.key, value));
                    }
                }
                if gap_on {
                    let end_gap = self.end_gap_target(table, &upper);
                    let gap_outcome = self.acquire(end_gap, LockMode::SiRead)?;
                    self.mark_read_conflicts(&gap_outcome.rw_conflicts)?;
                    let missed = self.sweep_gap_region(
                        table,
                        as_ref_bound(&region_start),
                        upper,
                        &batch,
                        LockMode::SiRead,
                    )?;
                    self.absorb_missed_keys_ssi(table, missed, snapshot)?;
                }
                Ok(result)
            }
        }
    }

    // ------------------------------------------------------------------
    // Secondary-index scans (reader side)
    // ------------------------------------------------------------------

    /// Records a read in *index space* for the history verifier: the entry
    /// bytes stand in for the key and the index id for the table, and the
    /// version timestamp is that of the row version whose value extracted
    /// to the entry's index key — exactly the writer that recorded the
    /// matching index-space write.
    fn record_index_read(
        &mut self,
        index: &Arc<Index>,
        entry: &[u8],
        version_ts: Option<Timestamp>,
        speculative: bool,
    ) {
        if self.db.history.is_some() {
            self.reads.push(ReadRecord {
                table: index.id(),
                key: entry.to_vec(),
                version_ts,
                speculative,
            });
        }
    }

    /// Entry-space analogue of [`Transaction::end_gap_target`]: the gap
    /// that closes an index scan's upper end against inserts just past it.
    fn index_end_gap(&self, index: &Arc<Index>, upper: &Bound<Vec<u8>>) -> LockKey {
        let next = match upper {
            Bound::Unbounded => None,
            Bound::Included(e) => index
                .entries_in_range(Bound::Excluded(e.as_slice()), Bound::Unbounded, Some(1))
                .into_iter()
                .next(),
            Bound::Excluded(e) => index
                .entries_in_range(Bound::Included(e.as_slice()), Bound::Unbounded, Some(1))
                .into_iter()
                .next(),
        };
        match next {
            Some(e) => LockKey::gap(index.id(), e.to_vec()),
            None => LockKey::supremum(index.id()),
        }
    }

    /// [`Transaction::sweep_gap_region`] transplanted to entry space: the
    /// ordered structure queried at the fixpoint is the index's entry map
    /// instead of the table's key index, and the gap locks taken live in
    /// the index's lock namespace. The soundness argument is identical —
    /// after a clean pass every entry in the region carries this
    /// transaction's gap lock, so a later index insert's next-entry gap
    /// target must collide with one of them.
    fn sweep_index_region(
        &mut self,
        index: &Arc<Index>,
        from: Bound<&[u8]>,
        to: Bound<&[u8]>,
        visited: &[Vec<u8>],
        mode: LockMode,
    ) -> Result<Vec<Vec<u8>>> {
        const MAX_PASSES: usize = 16;
        debug_assert!(visited.windows(2).all(|w| w[0] < w[1]));
        let mut seen: Vec<Vec<u8>> = visited.to_vec();
        let mut missed: Vec<Vec<u8>> = Vec::new();
        for _ in 0..MAX_PASSES {
            let mut grew = false;
            for entry in index.entries_in_range(from, to, None) {
                let entry = entry.to_vec();
                let Err(pos) = seen.binary_search(&entry) else {
                    continue;
                };
                let outcome = self.acquire(LockKey::gap(index.id(), entry.clone()), mode)?;
                if mode == LockMode::SiRead {
                    self.mark_read_conflicts(&outcome.rw_conflicts)?;
                }
                seen.insert(pos, entry.clone());
                let mpos = missed.binary_search(&entry).unwrap_err();
                missed.insert(mpos, entry);
                grew = true;
            }
            if !grew {
                return Ok(missed);
            }
        }
        Err(Error::abort_with_reason(
            AbortReason::GapSweepExhausted,
            self.shared.id(),
        ))
    }

    /// 2PL handling of entries [`Transaction::sweep_index_region`]
    /// discovered: lock and read the entry's row, keep it if its value
    /// still extracts to the entry's index key, splicing in entry order.
    fn absorb_missed_entries_2pl(
        &mut self,
        table: &TableRef,
        index: &Arc<Index>,
        missed: Vec<Vec<u8>>,
        result: &mut Vec<(Vec<u8>, Vec<u8>, Bytes)>,
    ) -> Result<()> {
        let id = self.shared.id();
        for entry in missed {
            let Some((ik, pk)) = decode_entry(&entry) else {
                continue;
            };
            let lock = self.lock_target(table, &pk);
            self.acquire(lock, LockMode::Shared)?;
            let value = table.table.read_latest_committed(&pk, id);
            let ts = table.table.newest_committed_ts(&pk);
            self.record_read(table, &pk, ts, false);
            let live = value
                .as_ref()
                .is_some_and(|v| index.spec().extract(&pk, v).as_deref() == Some(ik.as_slice()));
            if live {
                self.record_index_read(index, &entry, ts, false);
                let pos = result
                    .binary_search_by(|(e, _, _)| e.as_slice().cmp(&entry))
                    .unwrap_or_else(|p| p);
                result.insert(pos, (entry, pk, value.expect("live implies Some")));
            }
        }
        Ok(())
    }

    /// SSI handling of one entry [`Transaction::sweep_index_region`]
    /// discovered: exactly the cursor-visited treatment — row SIREAD,
    /// snapshot probe under it, conflicts with the creators of newer
    /// versions — with the row kept (spliced in entry order) only if its
    /// snapshot-visible value still extracts to the entry's index key.
    fn examine_index_entry_ssi(
        &mut self,
        table: &TableRef,
        index: &Arc<Index>,
        entry: Vec<u8>,
        snapshot: Timestamp,
        result: &mut Vec<(Vec<u8>, Vec<u8>, Bytes)>,
    ) -> Result<()> {
        let Some((ik, pk)) = decode_entry(&entry) else {
            return Ok(());
        };
        let lock = self.lock_target(table, &pk);
        let outcome = self.acquire(lock, LockMode::SiRead)?;
        self.mark_read_conflicts(&outcome.rw_conflicts)?;
        let probe = self.snapshot_read(table, &pk, snapshot);
        self.mark_read_conflicts(&probe.newer_creators)?;
        if !probe.read_own_write {
            self.record_read(
                table,
                &pk,
                probe.read_version_ts,
                probe.speculative_of.is_some(),
            );
        }
        let live = probe
            .value
            .as_ref()
            .is_some_and(|v| index.spec().extract(&pk, v).as_deref() == Some(ik.as_slice()));
        if live {
            if !probe.read_own_write {
                self.record_index_read(
                    index,
                    &entry,
                    probe.read_version_ts,
                    probe.speculative_of.is_some(),
                );
            }
            let pos = result
                .binary_search_by(|(e, _, _)| e.as_slice().cmp(&entry))
                .unwrap_or_else(|p| p);
            result.insert(pos, (entry, pk, probe.value.expect("live implies Some")));
        }
        Ok(())
    }

    /// Index-space analogue of [`Transaction::do_scan`]. The raw
    /// index-key bounds are first mapped to entry-space bounds
    /// ([`entry_range`]); each resident entry in that range names a
    /// `(index key, primary key)` pair whose row is then read under the
    /// level's ordinary row protocol, and kept only if the value the read
    /// actually returned still extracts to the entry's index key — stale
    /// entries awaiting GC filter out here. Gap locks (2PL Shared, SSI
    /// SIREAD) live in the *index's* lock namespace, one per visited entry
    /// plus the region's end gap, closed by the same missed-entry sweep as
    /// row scans; a writer inserting a fresh index key takes the EXCLUSIVE
    /// gap on its successor entry and collides with them.
    fn do_index_scan(
        &mut self,
        index: &IndexRef,
        lower: Bound<&[u8]>,
        upper: Bound<&[u8]>,
    ) -> Result<Vec<(Vec<u8>, Bytes)>> {
        let id = self.shared.id();
        let table = index.table.clone();
        let idx = Arc::clone(&index.index);
        let (lo, hi) = entry_range(lower, upper);
        match self.shared.isolation() {
            IsolationLevel::ReadCommitted => {
                let mut result = Vec::new();
                for entry in idx.entries_in_range(as_ref_bound(&lo), as_ref_bound(&hi), None) {
                    let Some((ik, pk)) = decode_entry(&entry) else {
                        continue;
                    };
                    if let Some(value) = table.table.read_latest_committed(&pk, id) {
                        if idx.spec().extract(&pk, &value).as_deref() == Some(ik.as_slice()) {
                            result.push((pk, value));
                        }
                    }
                }
                Ok(result)
            }
            IsolationLevel::StrictTwoPhaseLocking => {
                let gap_on = self.gap_locking_enabled();
                let mut result: Vec<(Vec<u8>, Vec<u8>, Bytes)> = Vec::new();
                let mut visited: Vec<Vec<u8>> = Vec::new();
                for entry in idx.entries_in_range(as_ref_bound(&lo), as_ref_bound(&hi), None) {
                    let entry_vec = entry.to_vec();
                    if gap_on {
                        self.acquire(LockKey::gap(idx.id(), entry_vec.clone()), LockMode::Shared)?;
                        visited.push(entry_vec.clone());
                    }
                    let Some((ik, pk)) = decode_entry(&entry) else {
                        continue;
                    };
                    let lock = self.lock_target(&table, &pk);
                    self.acquire(lock, LockMode::Shared)?;
                    let value = table.table.read_latest_committed(&pk, id);
                    let ts = table.table.newest_committed_ts(&pk);
                    self.record_read(&table, &pk, ts, false);
                    let live = value.as_ref().is_some_and(|v| {
                        idx.spec().extract(&pk, v).as_deref() == Some(ik.as_slice())
                    });
                    if live {
                        self.record_index_read(&idx, &entry_vec, ts, false);
                        result.push((entry_vec, pk, value.expect("live implies Some")));
                    }
                }
                if gap_on {
                    let end_gap = self.index_end_gap(&idx, &hi);
                    self.acquire(end_gap, LockMode::Shared)?;
                    let missed = self.sweep_index_region(
                        &idx,
                        as_ref_bound(&lo),
                        as_ref_bound(&hi),
                        &visited,
                        LockMode::Shared,
                    )?;
                    self.absorb_missed_entries_2pl(&table, &idx, missed, &mut result)?;
                }
                Ok(result.into_iter().map(|(_, pk, v)| (pk, v)).collect())
            }
            IsolationLevel::SnapshotIsolation => {
                let snapshot = self.db.txns.ensure_snapshot(&self.shared);
                let mut result = Vec::new();
                for entry in idx.entries_in_range(as_ref_bound(&lo), as_ref_bound(&hi), None) {
                    let Some((ik, pk)) = decode_entry(&entry) else {
                        continue;
                    };
                    let read = self.snapshot_read(&table, &pk, snapshot);
                    if !read.read_own_write {
                        self.record_read(
                            &table,
                            &pk,
                            read.read_version_ts,
                            read.speculative_of.is_some(),
                        );
                    }
                    let live = read.value.as_ref().is_some_and(|v| {
                        idx.spec().extract(&pk, v).as_deref() == Some(ik.as_slice())
                    });
                    if live {
                        if !read.read_own_write {
                            self.record_index_read(
                                &idx,
                                &entry,
                                read.read_version_ts,
                                read.speculative_of.is_some(),
                            );
                        }
                        result.push((pk, read.value.expect("live implies Some")));
                    }
                }
                Ok(result)
            }
            IsolationLevel::SerializableSnapshotIsolation => {
                let snapshot = self.db.txns.ensure_snapshot(&self.shared);
                let gap_on = self.gap_locking_enabled();
                let mut result: Vec<(Vec<u8>, Vec<u8>, Bytes)> = Vec::new();
                let mut visited: Vec<Vec<u8>> = Vec::new();
                for entry in idx.entries_in_range(as_ref_bound(&lo), as_ref_bound(&hi), None) {
                    let entry_vec = entry.to_vec();
                    // SIREAD the gap before the entry so inserts into the
                    // scanned entry range are detected…
                    if gap_on {
                        let gap_outcome = self
                            .acquire(LockKey::gap(idx.id(), entry_vec.clone()), LockMode::SiRead)?;
                        self.mark_read_conflicts(&gap_outcome.rw_conflicts)?;
                        visited.push(entry_vec.clone());
                    }
                    let Some((ik, pk)) = decode_entry(&entry) else {
                        continue;
                    };
                    // …then the entry's row under the ordinary Fig. 3.4/3.6
                    // protocol: SIREAD, probe under the lock, conflict with
                    // newer creators.
                    let lock = self.lock_target(&table, &pk);
                    let outcome = self.acquire(lock, LockMode::SiRead)?;
                    self.mark_read_conflicts(&outcome.rw_conflicts)?;
                    let probe = self.snapshot_read(&table, &pk, snapshot);
                    self.mark_read_conflicts(&probe.newer_creators)?;
                    if !probe.read_own_write {
                        self.record_read(
                            &table,
                            &pk,
                            probe.read_version_ts,
                            probe.speculative_of.is_some(),
                        );
                    }
                    let live = probe.value.as_ref().is_some_and(|v| {
                        idx.spec().extract(&pk, v).as_deref() == Some(ik.as_slice())
                    });
                    if live {
                        if !probe.read_own_write {
                            self.record_index_read(
                                &idx,
                                &entry_vec,
                                probe.read_version_ts,
                                probe.speculative_of.is_some(),
                            );
                        }
                        result.push((entry_vec, pk, probe.value.expect("live implies Some")));
                    }
                }
                if gap_on {
                    let end_gap = self.index_end_gap(&idx, &hi);
                    let gap_outcome = self.acquire(end_gap, LockMode::SiRead)?;
                    self.mark_read_conflicts(&gap_outcome.rw_conflicts)?;
                    let missed = self.sweep_index_region(
                        &idx,
                        as_ref_bound(&lo),
                        as_ref_bound(&hi),
                        &visited,
                        LockMode::SiRead,
                    )?;
                    for entry in missed {
                        self.examine_index_entry_ssi(&table, &idx, entry, snapshot, &mut result)?;
                    }
                }
                Ok(result.into_iter().map(|(_, pk, v)| (pk, v)).collect())
            }
        }
    }
}

/// Entries between phantom sweeps of a gap-locking scan: one ordered-index
/// region query per this many visited rows (one per short scan), instead of
/// one per row.
const GAP_SWEEP_BATCH: usize = 32;

/// Turns an inclusive region boundary into the exclusive start of the next
/// region.
fn bound_excluded(b: Bound<Vec<u8>>) -> Bound<Vec<u8>> {
    match b {
        Bound::Included(k) | Bound::Excluded(k) => Bound::Excluded(k),
        Bound::Unbounded => Bound::Unbounded,
    }
}

/// Smallest byte string strictly greater than every string with the given
/// prefix, or `None` when no such bound exists (prefix is all `0xff`).
fn prefix_upper_bound(prefix: &[u8]) -> Option<Vec<u8>> {
    let mut upper = prefix.to_vec();
    while let Some(last) = upper.last() {
        if *last == 0xff {
            upper.pop();
        } else {
            *upper.last_mut().unwrap() += 1;
            return Some(upper);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_upper_bound_basic() {
        assert_eq!(prefix_upper_bound(b"abc"), Some(b"abd".to_vec()));
        assert_eq!(prefix_upper_bound(&[1, 0xff]), Some(vec![2]));
        assert_eq!(prefix_upper_bound(&[0xff, 0xff]), None);
        assert_eq!(prefix_upper_bound(b""), None);
    }

    #[test]
    fn bound_helpers_roundtrip() {
        let owned = clone_bound(Bound::Included(b"k".as_slice()));
        assert!(matches!(as_ref_bound(&owned), Bound::Included(b"k")));
        let owned = clone_bound(Bound::Excluded(b"k".as_slice()));
        assert!(matches!(as_ref_bound(&owned), Bound::Excluded(b"k")));
        let owned: Bound<Vec<u8>> = clone_bound(Bound::Unbounded);
        assert!(matches!(as_ref_bound(&owned), Bound::Unbounded));
    }
}
