//! Records the baseline-vs-sharded storage comparison in
//! `BENCH_storage.json`.
//!
//! Runs the `storage_micro` harness (point readers, writers, scanners on
//! one table) against the sharded `ssi_storage::Table` and the
//! pre-sharding single-`RwLock` `BaselineTable`, prints a comparison
//! table, and writes the numbers as JSON so the speedup is recorded
//! in-repo. Usage:
//!
//! ```text
//! cargo run --release -p ssi-bench --bin storage_bench [output.json]
//! ```

use std::fmt::Write as _;
use std::time::Duration;

use ssi_bench::storage_micro::{
    run_storage_workload, setup_baseline, setup_sharded, StorageThroughput, WorkloadShape,
};

struct CaseResult {
    name: &'static str,
    shape: WorkloadShape,
    baseline: StorageThroughput,
    sharded: StorageThroughput,
}

impl CaseResult {
    fn total_ops_per_sec(t: &StorageThroughput) -> f64 {
        (t.reads + t.writes + t.scans) as f64 / t.elapsed.as_secs_f64()
    }

    fn speedup(&self) -> f64 {
        Self::total_ops_per_sec(&self.sharded) / Self::total_ops_per_sec(&self.baseline)
    }
}

fn run_case(name: &'static str, shape: WorkloadShape) -> CaseResult {
    // Warm-up pass on fresh tables, then the measured pass.
    let sharded = setup_sharded(shape.rows);
    let baseline = setup_baseline(shape.rows);
    let warm = WorkloadShape {
        duration: Duration::from_millis(100),
        ..shape
    };
    run_storage_workload(&sharded, warm);
    run_storage_workload(&baseline, warm);
    let sharded_out = run_storage_workload(&sharded, shape);
    let baseline_out = run_storage_workload(&baseline, shape);
    CaseResult {
        name,
        shape,
        baseline: baseline_out,
        sharded: sharded_out,
    }
}

fn throughput_json(t: &StorageThroughput) -> String {
    format!(
        "{{\"reads_per_sec\": {:.0}, \"writes_per_sec\": {:.0}, \"scans_per_sec\": {:.0}, \"total_ops_per_sec\": {:.0}}}",
        t.reads_per_sec(),
        t.writes_per_sec(),
        t.scans_per_sec(),
        CaseResult::total_ops_per_sec(t)
    )
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_storage.json".to_string());
    let duration = Duration::from_millis(400);
    let rows = 10_000;

    let cases = vec![
        run_case(
            "read_1_thread",
            WorkloadShape {
                readers: 1,
                writers: 0,
                scanners: 0,
                rows,
                duration,
            },
        ),
        run_case(
            "read_8_threads",
            WorkloadShape {
                readers: 8,
                writers: 0,
                scanners: 0,
                rows,
                duration,
            },
        ),
        run_case(
            "mixed_8r_4w",
            WorkloadShape {
                readers: 8,
                writers: 4,
                scanners: 0,
                rows,
                duration,
            },
        ),
        run_case(
            "scan_mix_4r_2s_1w",
            WorkloadShape {
                readers: 4,
                writers: 1,
                scanners: 2,
                rows: 1_000,
                duration,
            },
        ),
    ];

    println!(
        "{:<20} {:>16} {:>16} {:>9}",
        "case", "baseline ops/s", "sharded ops/s", "speedup"
    );
    for case in &cases {
        println!(
            "{:<20} {:>16.0} {:>16.0} {:>8.2}x",
            case.name,
            CaseResult::total_ops_per_sec(&case.baseline),
            CaseResult::total_ops_per_sec(&case.sharded),
            case.speedup()
        );
    }

    let mut json = String::new();
    json.push_str("{\n  \"description\": \"Storage-layer throughput: sharded two-level table vs pre-sharding single-RwLock baseline (storage_micro harness)\",\n");
    let _ = writeln!(json, "  \"rows\": {rows},");
    let _ = writeln!(json, "  \"duration_ms\": {},", duration.as_millis());
    json.push_str("  \"cases\": [\n");
    for (i, case) in cases.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"readers\": {}, \"writers\": {}, \"scanners\": {}, \"baseline\": {}, \"sharded\": {}, \"speedup\": {:.2}}}",
            case.name,
            case.shape.readers,
            case.shape.writers,
            case.shape.scanners,
            throughput_json(&case.baseline),
            throughput_json(&case.sharded),
            case.speedup()
        );
        json.push_str(if i + 1 < cases.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write BENCH_storage.json");
    println!("\nwrote {out_path}");
}
