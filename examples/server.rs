//! Service-layer tour: start the TCP server over an embedded database,
//! connect with the blocking client SDK, run an interactive transaction
//! that spans several requests, demonstrate write skew being caught
//! *across connections*, then drain the server gracefully.
//!
//! ```bash
//! cargo run --release --example server
//! ```

use serializable_si::common::IsolationLevel;
use serializable_si::{Client, Database, Options, Server, ServerOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The engine is embedded; the server wraps it with a framed TCP
    // protocol. Port 0 lets the OS pick a free port.
    let db = Database::open(
        Options::default().with_isolation(IsolationLevel::SerializableSnapshotIsolation),
    );
    let mut server = Server::start(db, ServerOptions::default())?;
    let addr = server.local_addr();
    println!("serving on {addr}");

    // --- autocommit requests -----------------------------------------------
    let mut client = Client::connect(addr)?;
    client.create_table("accounts")?;
    client.put("accounts", b"x", b"100")?;
    client.put("accounts", b"y", b"100")?;
    println!(
        "x = {:?}",
        client.get("accounts", b"x")?.map(String::from_utf8)
    );

    // --- one interactive transaction across many requests ------------------
    let mut txn = client.begin()?;
    txn.put("accounts", b"x", b"70")?;
    let x = txn.get("accounts", b"x")?; // sees its own write
    assert_eq!(x.as_deref(), Some(b"70".as_slice()));
    txn.commit()?; // the ok response is the commit acknowledgement
    println!("interactive transaction committed");

    // --- write skew across two connections ---------------------------------
    // Each transaction checks x + y >= 100 and then withdraws from a
    // different account. Under snapshot isolation both would commit and
    // the invariant would break; the server runs them at Serializable SI,
    // so the dangerous structure costs one of them an abort.
    let mut conn1 = Client::connect(addr)?;
    let mut conn2 = Client::connect(addr)?;
    let mut t1 = conn1.begin()?;
    let mut t2 = conn2.begin()?;
    t1.get("accounts", b"x")?;
    t2.get("accounts", b"x")?;
    t1.get("accounts", b"y")?;
    t2.get("accounts", b"y")?;
    let r1 = t1.put("accounts", b"x", b"0").and_then(|()| t1.commit());
    let r2 = t2.put("accounts", b"y", b"0").and_then(|()| t2.commit());
    println!(
        "write-skew pair over two connections: T1 {}, T2 {}",
        if r1.is_ok() {
            "committed"
        } else {
            "aborted (retry it)"
        },
        if r2.is_ok() {
            "committed"
        } else {
            "aborted (retry it)"
        },
    );
    assert!(r1.is_err() || r2.is_err(), "SSI must catch the skew");

    // --- observability over the wire ---------------------------------------
    let metrics = client.metrics_text()?;
    let server_lines: Vec<&str> = metrics
        .lines()
        .filter(|l| l.starts_with("ssi_server_") && !l.starts_with("# "))
        .collect();
    println!("service-layer metrics:\n  {}", server_lines.join("\n  "));

    // --- graceful drain -----------------------------------------------------
    // Open transactions of idle sessions are rolled back, in-flight
    // requests finish, every thread is joined. No acknowledged commit is
    // ever abandoned by a drain.
    server.shutdown();
    println!("drained; sessions left: {}", server.session_count());
    Ok(())
}
