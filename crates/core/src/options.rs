//! Engine configuration.
//!
//! The options mirror the experimental dimensions of the thesis: lock and
//! conflict-detection granularity (row-level like InnoDB vs page-level like
//! Berkeley DB), the basic vs enhanced conflict representation of Secs. 3.2
//! and 3.6, the SIREAD-upgrade optimization of Sec. 3.7.3, victim selection
//! (Sec. 3.7.2), commit-time log flushing (Sec. 6.1), and the mixed mode that
//! runs read-only transactions at plain SI (Sec. 3.8).

use std::time::Duration;

use ssi_common::IsolationLevel;
use ssi_lock::LockConfig;
use ssi_storage::WalConfig;

/// Granularity at which locks are taken and read-write conflicts detected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockGranularity {
    /// InnoDB-style row-level locking with gap locks for phantom detection.
    Row,
    /// Berkeley-DB-style page-level locking: keys are hashed onto `pages`
    /// pages and all locks name the page, so unrelated rows that share a
    /// page conflict with each other (Sec. 4.2, Sec. 6.1.5).
    Page {
        /// Number of pages each table's keys are spread over.
        pages: u64,
    },
}

impl LockGranularity {
    /// True for page-level granularity.
    pub fn is_page(&self) -> bool {
        matches!(self, LockGranularity::Page { .. })
    }
}

/// Which representation of rw-conflict flags the SSI implementation uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SsiVariant {
    /// Two boolean flags per transaction (Sec. 3.2, Figs. 3.1–3.5). Simple
    /// but aborts in some serializable interleavings (Fig. 3.8).
    Basic,
    /// Transaction references plus commit-time ordering checks (Sec. 3.6,
    /// Figs. 3.9–3.10), reducing false positives. This matches the InnoDB
    /// prototype and is the default.
    #[default]
    Enhanced,
}

/// Which transaction to sacrifice when an unsafe structure is found and
/// either participant could be aborted (Sec. 3.7.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum VictimPolicy {
    /// Abort the pivot (the transaction with both incoming and outgoing
    /// conflicts) unless it has already committed — the paper's default.
    #[default]
    PreferPivot,
    /// Always abort the transaction that detected the conflict (the caller).
    PreferCaller,
    /// Abort the younger of the two transactions, analogous to common
    /// deadlock victim policies.
    PreferYounger,
}

/// Options specific to the Serializable SI algorithm.
#[derive(Clone, Debug)]
pub struct SsiOptions {
    /// Conflict-flag representation.
    pub variant: SsiVariant,
    /// Drop a transaction's SIREAD lock on an item when it acquires the
    /// EXCLUSIVE lock on the same item (read-modify-write), Sec. 3.7.3.
    pub upgrade_siread: bool,
    /// Abort a pivot as soon as both conflicts are present rather than
    /// waiting for its commit (Sec. 3.7.1).
    pub abort_early: bool,
    /// Victim selection policy.
    pub victim: VictimPolicy,
    /// Run conflict marking and commits in lock-step under one global mutex,
    /// reproducing the thesis prototype's kernel-mutex serialization. The
    /// fine-grained commit pipeline (see [`crate::manager`]) is the default;
    /// this fallback exists as the in-tree baseline the `commit_bench`
    /// binary measures the pipeline against.
    pub lockstep_commit: bool,
}

impl Default for SsiOptions {
    fn default() -> Self {
        SsiOptions {
            variant: SsiVariant::Enhanced,
            upgrade_siread: true,
            abort_early: true,
            victim: VictimPolicy::PreferPivot,
            lockstep_commit: false,
        }
    }
}

/// Top-level engine options.
#[derive(Clone, Debug)]
pub struct Options {
    /// Isolation level used by [`crate::Database::begin`].
    pub default_isolation: IsolationLevel,
    /// Locking / conflict-detection granularity.
    pub granularity: LockGranularity,
    /// Write-ahead-log behaviour (simulated flush latency, group commit).
    pub wal: WalConfig,
    /// Serializable-SI-specific options.
    pub ssi: SsiOptions,
    /// Take gap locks on scans/inserts/deletes to detect phantoms
    /// (row-granularity only; page locks subsume this, Sec. 3.5).
    pub detect_phantoms: bool,
    /// Run transactions declared read-only at plain SI even when the
    /// database default is Serializable SI (Sec. 3.8).
    pub read_only_queries_at_si: bool,
    /// Record per-transaction read/write sets so the multiversion
    /// serialization graph can be checked after a run (used by tests; adds
    /// overhead, off by default).
    pub record_history: bool,
    /// Lock manager configuration.
    pub lock: LockConfig,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            default_isolation: IsolationLevel::SerializableSnapshotIsolation,
            granularity: LockGranularity::Row,
            wal: WalConfig::default(),
            ssi: SsiOptions::default(),
            detect_phantoms: true,
            read_only_queries_at_si: false,
            record_history: false,
            lock: LockConfig::default(),
        }
    }
}

impl Options {
    /// Options resembling the InnoDB prototype: row-level locks, gap locks,
    /// enhanced conflict tracking. This is the default.
    pub fn innodb_like() -> Self {
        Options::default()
    }

    /// Options resembling the Berkeley DB prototype: page-level locks and
    /// the basic (boolean-flag) conflict representation (Sec. 4.3).
    pub fn berkeley_like(pages: u64) -> Self {
        Options {
            granularity: LockGranularity::Page { pages },
            ssi: SsiOptions {
                variant: SsiVariant::Basic,
                ..SsiOptions::default()
            },
            detect_phantoms: false,
            ..Options::default()
        }
    }

    /// Enables a simulated commit flush of the given latency.
    pub fn with_commit_flush(mut self, latency: Duration) -> Self {
        self.wal = WalConfig {
            flush_latency: Some(latency),
        };
        self
    }

    /// Sets the default isolation level.
    pub fn with_isolation(mut self, level: IsolationLevel) -> Self {
        self.default_isolation = level;
        self
    }

    /// Enables history recording for the serializability verifier.
    pub fn with_history(mut self) -> Self {
        self.record_history = true;
        self
    }

    /// Enables the lock-step (global-mutex) commit baseline; see
    /// [`SsiOptions::lockstep_commit`].
    pub fn with_lockstep_commit(mut self) -> Self {
        self.ssi.lockstep_commit = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_innodb_prototype() {
        let o = Options::default();
        assert_eq!(
            o.default_isolation,
            IsolationLevel::SerializableSnapshotIsolation
        );
        assert_eq!(o.granularity, LockGranularity::Row);
        assert_eq!(o.ssi.variant, SsiVariant::Enhanced);
        assert!(o.ssi.upgrade_siread);
        assert!(o.detect_phantoms);
        assert!(!o.record_history);
    }

    #[test]
    fn berkeley_profile_uses_pages_and_basic_flags() {
        let o = Options::berkeley_like(100);
        assert_eq!(o.granularity, LockGranularity::Page { pages: 100 });
        assert!(o.granularity.is_page());
        assert_eq!(o.ssi.variant, SsiVariant::Basic);
        assert!(!o.detect_phantoms);
    }

    #[test]
    fn builder_helpers() {
        let o = Options::default()
            .with_commit_flush(Duration::from_millis(5))
            .with_isolation(IsolationLevel::SnapshotIsolation)
            .with_history();
        assert_eq!(o.wal.flush_latency, Some(Duration::from_millis(5)));
        assert_eq!(o.default_isolation, IsolationLevel::SnapshotIsolation);
        assert!(o.record_history);
    }
}
