//! A walkthrough of the engine's observability surface:
//!
//! 1. open a database with event tracing enabled;
//! 2. induce a *pivot* abort — the dangerous rw-antidependency structure
//!    of the paper (T_in --rw--> pivot --rw--> T_out) — with the classic
//!    write-skew schedule;
//! 3. read the abort's typed [`AbortReason`] straight off the returned
//!    error (no log scraping);
//! 4. take a [`MetricsSnapshot`] and render it as Prometheus text and
//!    JSON;
//! 5. drain the event trace and print the conflict edges and the pivot
//!    detection leading up to the abort.
//!
//! ```bash
//! cargo run --release --example observability
//! ```

use serializable_si::{AbortReason, Database, EventKind, Options};

fn main() {
    // Tracing is off by default (zero cost); opt in with a bounded ring.
    let db = Database::open(Options::default().with_tracing(1024));
    let t = db.create_table("duty").unwrap();

    // Two doctors are on call.
    let mut setup = db.begin();
    setup.put(&t, b"alice", b"on").unwrap();
    setup.put(&t, b"bob", b"on").unwrap();
    setup.commit().unwrap();

    // The write-skew schedule: each transaction reads the *other* doctor's
    // row and then takes its own doctor off call. Each commit creates one
    // rw-antidependency; whichever transaction ends up with both an
    // incoming and an outgoing edge is the pivot and must abort.
    let mut t1 = db.begin();
    let mut t2 = db.begin();
    assert_eq!(
        t1.get(&t, b"bob").unwrap().as_deref(),
        Some(b"on".as_slice())
    );
    assert_eq!(
        t2.get(&t, b"alice").unwrap().as_deref(),
        Some(b"on".as_slice())
    );
    let r1 = t1.put(&t, b"alice", b"off").and_then(|_| t1.commit());
    let r2 = t2.put(&t, b"bob", b"off").and_then(|_| t2.commit());

    // Exactly one of the two aborted, and the error says why: provenance
    // is attached to the error itself, not just counted.
    let err = [r1, r2]
        .into_iter()
        .find_map(Result::err)
        .expect("one of the write-skew transactions must abort");
    let reason = err.abort_reason().expect("every abort carries a reason");
    println!("the losing transaction aborted with: {err}");
    println!("typed reason: {reason} (kind {:?})", reason.kind());
    assert!(
        matches!(
            reason,
            AbortReason::PivotIn | AbortReason::PivotOut | AbortReason::UnsafeAtCommit
        ),
        "write skew must be killed by dangerous-structure detection, got {reason}"
    );

    // The same provenance is aggregated in the unified snapshot: the
    // per-reason counters sum to the abort counter, always.
    let snap = db.metrics();
    println!(
        "\nsnapshot: {} started, {} committed, {} aborted",
        snap.txn.started, snap.txn.committed, snap.txn.aborted
    );
    for reason in AbortReason::ALL {
        let n = snap.txn.abort_reasons[reason.index()];
        if n > 0 {
            println!("  aborts[{reason}] = {n}");
        }
    }
    let by_reason: u64 = snap.txn.abort_reasons.iter().sum();
    assert_eq!(by_reason, snap.txn.aborted);

    // Prometheus text exposition — ready for a /metrics endpoint.
    let text = snap.render_text();
    let aborts_by_reason: Vec<&str> = text
        .lines()
        .filter(|l| l.starts_with("ssi_txn_aborts_by_reason_total{") && !l.ends_with(" 0"))
        .collect();
    println!(
        "\nrender_text() excerpt:\n  {}",
        aborts_by_reason.join("\n  ")
    );
    println!(
        "full exposition: {} lines; to_json(): {} bytes",
        text.lines().count(),
        snap.to_json().len()
    );

    // Drain the trace: every event since open, in timestamp order. The
    // rw-antidependency edges and the pivot detection that doomed the
    // loser are all there.
    let batch = db.drain_trace().expect("tracing was enabled");
    println!(
        "\ntrace: {} events captured, {} dropped",
        batch.events.len(),
        batch.dropped
    );
    for event in &batch.events {
        let interesting = matches!(
            event.kind,
            EventKind::ConflictEdge | EventKind::PivotDetected | EventKind::TxnAbort
        );
        if interesting {
            println!("  {}", event.to_json());
        }
    }
    assert!(
        batch.events.iter().any(|e| e.kind == EventKind::TxnAbort),
        "the abort must appear in the trace"
    );
}
