//! Ordered multi-version tables.
//!
//! A table maps byte-string keys to *version chains* (newest first). The
//! table itself performs no concurrency control beyond keeping its own data
//! structures consistent: deciding who may write, when a write must abort and
//! what a reader is allowed to see is the job of `ssi-core`. The table does
//! provide the visibility primitives that the paper's algorithm needs:
//!
//! * reading returns not only the visible version but also the creators of
//!   any *newer* versions (the "version that it reads … is not the most
//!   recent version" signal of Fig. 3.4);
//! * the newest committed timestamp of a key, which implements the
//!   first-committer-wins check;
//! * ordered key access (`next_key_at_or_after`) used for next-key / gap
//!   locking against phantoms (Sec. 3.5).

use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::Arc;

use parking_lot::RwLock;

use ssi_common::{TableId, Timestamp, TxnId};

use crate::version::{Version, VersionState};

/// Result of a snapshot read of one key.
#[derive(Clone, Debug, Default)]
pub struct VisibleRead {
    /// The visible value, if any (and not a tombstone).
    pub value: Option<Vec<u8>>,
    /// Creators of versions newer than the version that was read (both
    /// uncommitted ones and ones committed after the reader's snapshot).
    /// Each is a potential rw-antidependency for Serializable SI.
    pub newer_creators: Vec<TxnId>,
    /// Commit timestamp of the newest committed version of the key,
    /// regardless of snapshot; used for the first-committer-wins check.
    pub newest_committed_ts: Option<Timestamp>,
    /// True if the key has at least one (non-aborted) version at all.
    pub key_exists: bool,
    /// Commit timestamp of the version that was read (`None` when nothing
    /// was visible or when the reader saw its own uncommitted write). Used
    /// by the history recorder / serializability verifier.
    pub read_version_ts: Option<Timestamp>,
    /// True if the read was satisfied by the reader's own uncommitted write;
    /// such reads impose no inter-transaction ordering constraints.
    pub read_own_write: bool,
}

/// One row produced by a snapshot range scan.
#[derive(Clone, Debug)]
pub struct ScanEntry {
    /// The row key.
    pub key: Vec<u8>,
    /// Visible value (`None` when the visible version is a tombstone or no
    /// version is visible to the snapshot). Entries with `None` are still
    /// reported so the caller can register conflicts for them.
    pub value: Option<Vec<u8>>,
    /// Creators of versions newer than the visible one (see
    /// [`VisibleRead::newer_creators`]).
    pub newer_creators: Vec<TxnId>,
    /// Commit timestamp of the version that was read (see
    /// [`VisibleRead::read_version_ts`]).
    pub read_version_ts: Option<Timestamp>,
    /// True if the visible version was the reader's own uncommitted write
    /// (see [`VisibleRead::read_own_write`]).
    pub read_own_write: bool,
}

/// An ordered multi-version table.
pub struct Table {
    id: TableId,
    name: String,
    rows: RwLock<BTreeMap<Vec<u8>, Vec<Arc<Version>>>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: TableId, name: impl Into<String>) -> Self {
        Table {
            id,
            name: name.into(),
            rows: RwLock::new(BTreeMap::new()),
        }
    }

    /// Table identifier.
    pub fn id(&self) -> TableId {
        self.id
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of keys with at least one version (including tombstoned keys).
    pub fn key_count(&self) -> usize {
        self.rows.read().len()
    }

    fn read_chain(
        chain: &[Arc<Version>],
        reader: TxnId,
        snapshot_ts: Timestamp,
    ) -> (Option<Vec<u8>>, Vec<TxnId>, Option<Timestamp>, bool) {
        let mut newer = Vec::new();
        for v in chain.iter() {
            if v.state() == VersionState::Aborted {
                continue;
            }
            if v.visible_to(reader, snapshot_ts) {
                let value = v.value().map(|b| b.to_vec());
                return (value, newer, v.commit_ts(), v.creator() == reader);
            }
            // Not visible: it is newer than whatever we will end up reading.
            newer.push(v.creator());
        }
        (None, newer, None, false)
    }

    /// Snapshot read of `key` as of `snapshot_ts` on behalf of `reader`.
    pub fn read(&self, key: &[u8], reader: TxnId, snapshot_ts: Timestamp) -> VisibleRead {
        let rows = self.rows.read();
        match rows.get(key) {
            None => VisibleRead::default(),
            Some(chain) => {
                let (value, newer_creators, read_version_ts, read_own_write) =
                    Self::read_chain(chain, reader, snapshot_ts);
                VisibleRead {
                    value,
                    newer_creators,
                    newest_committed_ts: Self::newest_committed_in(chain),
                    key_exists: chain.iter().any(|v| v.state() != VersionState::Aborted),
                    read_version_ts,
                    read_own_write,
                }
            }
        }
    }

    /// Read-committed read: latest committed value (or the reader's own
    /// uncommitted write).
    pub fn read_latest_committed(&self, key: &[u8], reader: TxnId) -> Option<Vec<u8>> {
        let rows = self.rows.read();
        let chain = rows.get(key)?;
        for v in chain.iter() {
            if v.visible_to_read_committed(reader) {
                return v.value().map(|b| b.to_vec());
            }
        }
        None
    }

    fn newest_committed_in(chain: &[Arc<Version>]) -> Option<Timestamp> {
        chain.iter().filter_map(|v| v.commit_ts()).max()
    }

    /// Commit timestamp of the newest committed version of `key`, if any.
    pub fn newest_committed_ts(&self, key: &[u8]) -> Option<Timestamp> {
        let rows = self.rows.read();
        rows.get(key).and_then(|c| Self::newest_committed_in(c))
    }

    /// True if the key has any non-aborted version (committed or not,
    /// tombstone or not). Used to distinguish inserts from updates when
    /// deciding whether gap locks are needed.
    pub fn contains_key(&self, key: &[u8]) -> bool {
        let rows = self.rows.read();
        rows.get(key)
            .map(|c| c.iter().any(|v| v.state() != VersionState::Aborted))
            .unwrap_or(false)
    }

    /// Installs a new uncommitted version of `key` (a value or, when `value`
    /// is `None`, a deletion tombstone) created by `creator`, and returns a
    /// handle the caller keeps in its write set for later commit stamping or
    /// rollback.
    pub fn install_version(
        &self,
        key: &[u8],
        creator: TxnId,
        value: Option<Vec<u8>>,
    ) -> Arc<Version> {
        let version = Arc::new(Version::new(creator, value));
        let mut rows = self.rows.write();
        rows.entry(key.to_vec())
            .or_default()
            .insert(0, version.clone());
        version
    }

    /// Unlinks a version previously installed with [`Table::install_version`]
    /// (rollback path). The version should already be marked aborted.
    pub fn unlink_version(&self, key: &[u8], version: &Arc<Version>) {
        let mut rows = self.rows.write();
        if let Some(chain) = rows.get_mut(key) {
            chain.retain(|v| !Arc::ptr_eq(v, version));
            if chain.is_empty() {
                rows.remove(key);
            }
        }
    }

    /// Snapshot range scan. Returns one [`ScanEntry`] per key in the range
    /// that has any non-aborted version, *including* keys whose visible
    /// version is a tombstone or that have no visible version at all —
    /// Serializable SI needs those entries to register rw-conflicts with the
    /// concurrent writers that created the newer versions.
    pub fn scan(
        &self,
        lower: Bound<&[u8]>,
        upper: Bound<&[u8]>,
        reader: TxnId,
        snapshot_ts: Timestamp,
    ) -> Vec<ScanEntry> {
        let rows = self.rows.read();
        let mut out = Vec::new();
        for (key, chain) in rows.range::<[u8], _>((lower, upper)) {
            if chain.iter().all(|v| v.state() == VersionState::Aborted) {
                continue;
            }
            let (value, newer_creators, read_version_ts, read_own_write) =
                Self::read_chain(chain, reader, snapshot_ts);
            out.push(ScanEntry {
                key: key.clone(),
                value,
                newer_creators,
                read_version_ts,
                read_own_write,
            });
        }
        out
    }

    /// Smallest key `>= key` present in the table (used by insert/delete gap
    /// locking: the lock target is the key *after* the one being modified).
    pub fn next_key_at_or_after(&self, key: &[u8]) -> Option<Vec<u8>> {
        let rows = self.rows.read();
        rows.range::<[u8], _>((Bound::Included(key), Bound::Unbounded))
            .next()
            .map(|(k, _)| k.clone())
    }

    /// Smallest key strictly greater than `key`.
    pub fn next_key_after(&self, key: &[u8]) -> Option<Vec<u8>> {
        let rows = self.rows.read();
        rows.range::<[u8], _>((Bound::Excluded(key), Bound::Unbounded))
            .next()
            .map(|(k, _)| k.clone())
    }

    /// All keys in the given range (used by tests and the verifier).
    pub fn keys_in_range(&self, lower: Bound<&[u8]>, upper: Bound<&[u8]>) -> Vec<Vec<u8>> {
        let rows = self.rows.read();
        rows.range::<[u8], _>((lower, upper))
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// Garbage-collects versions that can no longer be seen by any snapshot
    /// at or after `oldest_active_snapshot`: for each key the newest version
    /// committed at or before the horizon is kept, everything older is
    /// dropped, and fully dead keys (only an old tombstone left) are removed.
    /// Returns the number of versions reclaimed.
    pub fn purge_versions(&self, oldest_active_snapshot: Timestamp) -> usize {
        let mut rows = self.rows.write();
        let mut reclaimed = 0;
        let mut dead_keys = Vec::new();
        for (key, chain) in rows.iter_mut() {
            // Position of the newest version committed at or before the
            // horizon; everything after it (older) is unreachable.
            let mut keep_upto = None;
            for (i, v) in chain.iter().enumerate() {
                match v.state() {
                    VersionState::Committed(ts) if ts <= oldest_active_snapshot => {
                        keep_upto = Some(i);
                        break;
                    }
                    _ => {}
                }
            }
            if let Some(idx) = keep_upto {
                reclaimed += chain.len() - (idx + 1);
                chain.truncate(idx + 1);
                // If the only remaining reachable version is a tombstone and
                // nothing newer exists, the key is gone for good.
                if chain.len() == 1 && chain[0].is_tombstone() {
                    if let VersionState::Committed(ts) = chain[0].state() {
                        if ts <= oldest_active_snapshot {
                            reclaimed += 1;
                            dead_keys.push(key.clone());
                        }
                    }
                }
            }
            // Also drop aborted leftovers.
            let before = chain.len();
            chain.retain(|v| v.state() != VersionState::Aborted);
            reclaimed += before - chain.len();
        }
        for key in dead_keys {
            rows.remove(&key);
        }
        reclaimed
    }

    /// Total number of versions stored (all chains), for tests and stats.
    pub fn version_count(&self) -> usize {
        self.rows.read().values().map(|c| c.len()).sum()
    }
}

impl std::fmt::Debug for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Table")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("keys", &self.key_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(id: u64) -> TxnId {
        TxnId(id)
    }

    fn table() -> Table {
        Table::new(TableId(1), "test")
    }

    #[test]
    fn empty_read() {
        let tbl = table();
        let r = tbl.read(b"a", t(1), 10);
        assert!(r.value.is_none());
        assert!(!r.key_exists);
        assert!(r.newer_creators.is_empty());
        assert_eq!(r.newest_committed_ts, None);
    }

    #[test]
    fn own_uncommitted_write_is_visible_to_creator_only() {
        let tbl = table();
        tbl.install_version(b"a", t(1), Some(vec![1]));
        let mine = tbl.read(b"a", t(1), 5);
        assert_eq!(mine.value, Some(vec![1]));
        let theirs = tbl.read(b"a", t(2), 5);
        assert_eq!(theirs.value, None);
        assert_eq!(theirs.newer_creators, vec![t(1)]);
        assert!(theirs.key_exists);
    }

    #[test]
    fn committed_version_respects_snapshot() {
        let tbl = table();
        let v = tbl.install_version(b"a", t(1), Some(vec![1]));
        v.mark_committed(10);
        assert_eq!(tbl.read(b"a", t(2), 10).value, Some(vec![1]));
        assert_eq!(tbl.read(b"a", t(2), 9).value, None);
        assert_eq!(tbl.read(b"a", t(2), 9).newer_creators, vec![t(1)]);
        assert_eq!(tbl.newest_committed_ts(b"a"), Some(10));
    }

    #[test]
    fn snapshot_reads_older_version_and_reports_newer_creator() {
        let tbl = table();
        let v1 = tbl.install_version(b"a", t(1), Some(vec![1]));
        v1.mark_committed(10);
        let v2 = tbl.install_version(b"a", t(2), Some(vec![2]));
        v2.mark_committed(20);
        // A reader with snapshot 15 sees version 1 and learns that T2 wrote a
        // newer version — exactly the rw-dependency signal of Fig. 3.4.
        let r = tbl.read(b"a", t(3), 15);
        assert_eq!(r.value, Some(vec![1]));
        assert_eq!(r.newer_creators, vec![t(2)]);
        assert_eq!(r.newest_committed_ts, Some(20));
        // A reader with snapshot 25 sees version 2 with no newer versions.
        let r2 = tbl.read(b"a", t(3), 25);
        assert_eq!(r2.value, Some(vec![2]));
        assert!(r2.newer_creators.is_empty());
    }

    #[test]
    fn tombstone_hides_row_from_new_snapshots() {
        let tbl = table();
        let v1 = tbl.install_version(b"a", t(1), Some(vec![1]));
        v1.mark_committed(10);
        let del = tbl.install_version(b"a", t(2), None);
        del.mark_committed(20);
        assert_eq!(tbl.read(b"a", t(3), 15).value, Some(vec![1]));
        assert_eq!(tbl.read(b"a", t(3), 25).value, None);
        // The key still exists (with a tombstone) so scans can detect the
        // conflict for old snapshots.
        assert!(tbl.read(b"a", t(3), 25).key_exists);
    }

    #[test]
    fn abort_unlinks_version() {
        let tbl = table();
        let v = tbl.install_version(b"a", t(1), Some(vec![1]));
        v.mark_aborted();
        tbl.unlink_version(b"a", &v);
        let r = tbl.read(b"a", t(1), 100);
        assert!(r.value.is_none());
        assert!(!r.key_exists);
        assert_eq!(tbl.key_count(), 0);
    }

    #[test]
    fn read_latest_committed_ignores_snapshot() {
        let tbl = table();
        let v1 = tbl.install_version(b"a", t(1), Some(vec![1]));
        v1.mark_committed(10);
        let v2 = tbl.install_version(b"a", t(2), Some(vec![2]));
        v2.mark_committed(20);
        assert_eq!(tbl.read_latest_committed(b"a", t(9)), Some(vec![2]));
        // Own uncommitted write wins.
        tbl.install_version(b"a", t(9), Some(vec![9]));
        assert_eq!(tbl.read_latest_committed(b"a", t(9)), Some(vec![9]));
    }

    #[test]
    fn scan_returns_rows_in_key_order_with_conflict_info() {
        let tbl = table();
        for (k, ts) in [(b"a", 10u64), (b"c", 10), (b"e", 10)] {
            let v = tbl.install_version(k, t(1), Some(k.to_vec()));
            v.mark_committed(ts);
        }
        // A concurrent insert not visible to snapshot 10.
        let v = tbl.install_version(b"b", t(5), Some(vec![0xb]));
        v.mark_committed(20);

        let entries = tbl.scan(Bound::Unbounded, Bound::Unbounded, t(3), 10);
        let keys: Vec<&[u8]> = entries.iter().map(|e| e.key.as_slice()).collect();
        assert_eq!(keys, vec![b"a" as &[u8], b"b", b"c", b"e"]);
        // "b" has no visible value but reports its creator as a conflict.
        let b_entry = &entries[1];
        assert!(b_entry.value.is_none());
        assert_eq!(b_entry.newer_creators, vec![t(5)]);
    }

    #[test]
    fn scan_bounds_are_respected() {
        let tbl = table();
        for k in [b"a", b"b", b"c", b"d"] {
            let v = tbl.install_version(k, t(1), Some(vec![1]));
            v.mark_committed(5);
        }
        let entries = tbl.scan(
            Bound::Included(b"b".as_slice()),
            Bound::Excluded(b"d".as_slice()),
            t(2),
            10,
        );
        let keys: Vec<&[u8]> = entries.iter().map(|e| e.key.as_slice()).collect();
        assert_eq!(keys, vec![b"b" as &[u8], b"c"]);
    }

    #[test]
    fn next_key_queries() {
        let tbl = table();
        for k in [b"b", b"d", b"f"] {
            let v = tbl.install_version(k, t(1), Some(vec![1]));
            v.mark_committed(5);
        }
        assert_eq!(tbl.next_key_at_or_after(b"d"), Some(b"d".to_vec()));
        assert_eq!(tbl.next_key_after(b"d"), Some(b"f".to_vec()));
        assert_eq!(tbl.next_key_at_or_after(b"c"), Some(b"d".to_vec()));
        assert_eq!(tbl.next_key_after(b"f"), None);
        assert_eq!(tbl.next_key_at_or_after(b"g"), None);
    }

    #[test]
    fn purge_reclaims_old_versions_and_dead_tombstones() {
        let tbl = table();
        let v1 = tbl.install_version(b"a", t(1), Some(vec![1]));
        v1.mark_committed(10);
        let v2 = tbl.install_version(b"a", t(2), Some(vec![2]));
        v2.mark_committed(20);
        let v3 = tbl.install_version(b"a", t(3), Some(vec![3]));
        v3.mark_committed(30);
        let d = tbl.install_version(b"b", t(4), None);
        d.mark_committed(15);

        // Oldest active snapshot is 25: version 1 is unreachable, the "b"
        // tombstone is dead.
        let reclaimed = tbl.purge_versions(25);
        assert!(reclaimed >= 2, "reclaimed {reclaimed}");
        assert_eq!(tbl.read(b"a", t(9), 25).value, Some(vec![2]));
        assert_eq!(tbl.read(b"a", t(9), 35).value, Some(vec![3]));
        assert_eq!(tbl.key_count(), 1);
    }

    #[test]
    fn version_count_tracks_installs() {
        let tbl = table();
        assert_eq!(tbl.version_count(), 0);
        tbl.install_version(b"a", t(1), Some(vec![1]));
        tbl.install_version(b"a", t(2), Some(vec![2]));
        tbl.install_version(b"b", t(1), Some(vec![3]));
        assert_eq!(tbl.version_count(), 3);
        assert_eq!(tbl.key_count(), 2);
    }
}
