//! Hand-rolled log-bucketed latency histogram (no external dependencies).
//!
//! Buckets are logarithmic in nanoseconds with 16 linear sub-buckets per
//! power of two (HdrHistogram-style, 4 significant bits): any recorded
//! value lands in a bucket whose lower bound is within 1/16 (6.25%) of the
//! true value, which is plenty for p50/p99/p999 reporting, while the whole
//! histogram stays a fixed 976-slot array that records in O(1) without
//! allocation and merges with a single pass. That makes it cheap enough to
//! keep one per worker thread on the commit hot path and fold them together
//! at the end of a run.

use std::time::Duration;

/// Sub-bucket resolution: 2^4 linear sub-buckets per octave.
const SUB_BITS: u32 = 4;
const SUBS: usize = 1 << SUB_BITS;
/// Values below 16 ns get exact buckets; every octave above contributes 16.
const BUCKETS: usize = SUBS + (64 - SUB_BITS as usize) * SUBS;

/// Bucket holding `ns`. Monotone in `ns`; exact below 16 ns.
fn bucket_index(ns: u64) -> usize {
    if ns < SUBS as u64 {
        ns as usize
    } else {
        let octave = 63 - ns.leading_zeros();
        let sub = (ns >> (octave - SUB_BITS)) & (SUBS as u64 - 1);
        (octave - SUB_BITS + 1) as usize * SUBS + sub as usize
    }
}

/// Smallest nanosecond value mapping to `index` (inverse of
/// [`bucket_index`] up to sub-bucket granularity).
fn bucket_floor(index: usize) -> u64 {
    if index < SUBS {
        index as u64
    } else {
        let group = (index / SUBS) as u32;
        let sub = (index % SUBS) as u64;
        (SUBS as u64 + sub) << (group - 1)
    }
}

/// Fixed-size logarithmic latency histogram with ~6% value resolution.
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    buckets: Box<[u64; BUCKETS]>,
    count: u64,
    total_ns: u128,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: Box::new([0; BUCKETS]),
            count: 0,
            total_ns: 0,
            max_ns: 0,
        }
    }
}

impl LatencyHistogram {
    /// Records one latency sample.
    pub fn record(&mut self, latency: Duration) {
        let ns = latency.as_nanos().min(u64::MAX as u128) as u64;
        self.buckets[bucket_index(ns)] += 1;
        self.count += 1;
        self.total_ns += ns as u128;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Folds another histogram (e.g. a worker thread's) into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded sample (exact, not bucketed).
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns)
    }

    /// Mean of all recorded samples (exact, from the running sum).
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos((self.total_ns / self.count as u128) as u64)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the lower bound of the bucket
    /// holding the sample of that rank — an underestimate by at most one
    /// sub-bucket width (~6%). Returns zero on an empty histogram.
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &hits) in self.buckets.iter().enumerate() {
            seen += hits;
            if seen >= rank {
                return Duration::from_nanos(bucket_floor(index));
            }
        }
        Duration::from_nanos(self.max_ns)
    }

    /// Median.
    pub fn p50(&self) -> Duration {
        self.quantile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Duration {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> Duration {
        self.quantile(0.999)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_tight() {
        let mut values: Vec<u64> = Vec::new();
        for exp in 0..63u32 {
            for off in [0u64, 1, 3, 7] {
                values.push((1u64 << exp) + off * ((1u64 << exp) / 8).max(1));
            }
        }
        values.sort_unstable();
        let mut last = 0usize;
        for ns in values {
            let index = bucket_index(ns);
            assert!(index >= last, "bucket order broke at {ns}");
            last = index;
            let floor = bucket_floor(index);
            assert!(floor <= ns, "floor {floor} above value {ns}");
            assert!(
                ns - floor <= ns / SUBS as u64 + 1,
                "bucket too coarse: {ns} -> floor {floor}"
            );
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn exact_below_sixteen_nanos() {
        for ns in 0..16u64 {
            assert_eq!(bucket_index(ns), ns as usize);
            assert_eq!(bucket_floor(ns as usize), ns);
        }
    }

    #[test]
    fn quantiles_of_a_uniform_ramp() {
        let mut h = LatencyHistogram::default();
        for us in 1..=1000u64 {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.p50().as_nanos() as f64;
        let p99 = h.p99().as_nanos() as f64;
        let p999 = h.p999().as_nanos() as f64;
        assert!((p50 - 500_000.0).abs() / 500_000.0 < 0.07, "p50 {p50}");
        assert!((p99 - 990_000.0).abs() / 990_000.0 < 0.07, "p99 {p99}");
        assert!((p999 - 999_000.0).abs() / 999_000.0 < 0.07, "p999 {p999}");
        assert_eq!(h.max(), Duration::from_millis(1));
        // Mean of 1..=1000 us is 500.5 us, tracked exactly.
        assert_eq!(h.mean(), Duration::from_nanos(500_500));
    }

    #[test]
    fn merge_matches_recording_everything_in_one() {
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        let mut whole = LatencyHistogram::default();
        for i in 0..500u64 {
            let d = Duration::from_nanos(i * i + 17);
            if i % 2 == 0 {
                a.record(d);
            } else {
                b.record(d);
            }
            whole.record(d);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.max(), whole.max());
        assert_eq!(a.mean(), whole.mean());
        for q in [0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile(q), whole.quantile(q), "q={q}");
        }
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p99(), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.max(), Duration::ZERO);
    }
}
