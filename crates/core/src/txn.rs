//! Transaction handles: lifecycle, commit and rollback.
//!
//! The data-access operations (`get`, `put`, `delete`, `scan`, …) live in
//! [`crate::access`]; this module owns the bookkeeping every operation needs
//! (held locks, write set, recorded reads) and the commit/rollback protocol
//! of Figs. 3.1 and 3.2.

use std::collections::HashMap;
use std::sync::Arc;

use ssi_common::{Error, IsolationLevel, Result, Timestamp, TxnId};
use ssi_lock::{LockKey, LockMode, LockOutcome, ModeSet};
use ssi_storage::{Table, Version};

use crate::db::DbInner;
use crate::ssi;
use crate::txn_shared::TxnShared;
use crate::verify::{CommittedTxn, ReadRecord, WriteRecordEntry};

/// Local (handle-side) transaction state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum LocalState {
    Active,
    Committed,
    Aborted,
}

/// A version installed by this transaction, remembered for commit stamping
/// or rollback.
pub(crate) struct WriteRecord {
    pub(crate) table: Arc<Table>,
    pub(crate) key: Vec<u8>,
    pub(crate) version: Arc<Version>,
}

/// A transaction handle.
///
/// A handle is owned by a single thread; all shared state lives in the
/// [`TxnShared`] record so that concurrent transactions (and the Serializable
/// SI machinery) can inspect it. Dropping an active handle rolls the
/// transaction back.
pub struct Transaction {
    pub(crate) db: Arc<DbInner>,
    pub(crate) shared: Arc<TxnShared>,
    state: LocalState,
    /// Locks held, by key, with the set of modes acquired.
    pub(crate) locks: HashMap<LockKey, ModeSet>,
    /// Versions installed by this transaction.
    pub(crate) writes: Vec<WriteRecord>,
    /// Reads recorded for the serializability verifier (only when the
    /// database was opened with history recording).
    pub(crate) reads: Vec<ReadRecord>,
    /// Whether the application declared the transaction read-only.
    read_only: bool,
}

impl Transaction {
    pub(crate) fn new(db: Arc<DbInner>, isolation: IsolationLevel, read_only: bool) -> Self {
        let shared = db.txns.begin(isolation);
        Transaction {
            db,
            shared,
            state: LocalState::Active,
            locks: HashMap::new(),
            writes: Vec::new(),
            reads: Vec::new(),
            read_only,
        }
    }

    /// The transaction's id.
    pub fn id(&self) -> TxnId {
        self.shared.id()
    }

    /// The isolation level this transaction runs at.
    pub fn isolation(&self) -> IsolationLevel {
        self.shared.isolation()
    }

    /// True while the transaction can still execute operations.
    pub fn is_active(&self) -> bool {
        self.state == LocalState::Active
    }

    /// True if the application declared this transaction read-only when
    /// beginning it.
    pub fn is_declared_read_only(&self) -> bool {
        self.read_only
    }

    /// The snapshot timestamp, if one has been assigned yet. Snapshot
    /// assignment is deferred until the first operation that needs it
    /// (Sec. 4.5).
    pub fn snapshot_ts(&self) -> Option<Timestamp> {
        self.shared.begin_ts()
    }

    /// Ensures the transaction is still usable, aborting it if it has been
    /// selected as a victim by another transaction.
    pub(crate) fn check_active(&mut self) -> Result<()> {
        match self.state {
            LocalState::Active => {}
            _ => return Err(Error::TransactionClosed),
        }
        if self.shared.is_doomed() {
            self.abort_internal();
            return Err(Error::unsafe_abort(self.shared.id()));
        }
        Ok(())
    }

    /// Acquires a lock and records it in the transaction's lock set.
    pub(crate) fn acquire(&mut self, key: LockKey, mode: LockMode) -> Result<LockOutcome> {
        let outcome = self.db.locks.lock(self.shared.id(), &key, mode)?;
        if outcome.newly_acquired {
            self.locks.entry(key).or_insert(ModeSet::EMPTY).insert(mode);
        }
        Ok(outcome)
    }

    /// Runs an operation body, aborting the transaction if it fails with a
    /// retryable concurrency-control error.
    pub(crate) fn run_op<T>(&mut self, body: impl FnOnce(&mut Self) -> Result<T>) -> Result<T> {
        self.check_active()?;
        match body(self) {
            Ok(v) => Ok(v),
            Err(e) => {
                self.abort_internal();
                Err(e)
            }
        }
    }

    /// Commits the transaction.
    ///
    /// For Serializable SI transactions this is where the commit-time unsafe
    /// check of Fig. 3.2 runs; on failure the transaction is rolled back and
    /// an [`Error::Aborted`] of kind `Unsafe` is returned. After a
    /// successful check, all versions written become visible atomically, the
    /// commit record is appended to the WAL (waiting for the simulated flush
    /// if one is configured), locks are released — except SIREAD locks,
    /// which stay registered while the transaction is suspended (Sec. 3.3) —
    /// and eligible suspended transactions are cleaned up (Sec. 4.6.1).
    ///
    /// The commit pipeline (see [`crate::manager`]) runs in three phases
    /// with no global lock: the unsafe check is fused with the
    /// commit-timestamp assignment into one atomic step on the transaction's
    /// state word, the write set is stamped, and finally the timestamp is
    /// published to the snapshot clock in allocation order — so new
    /// snapshots never observe a half-stamped commit even though concurrent
    /// commits overlap freely.
    pub fn commit(mut self) -> Result<()> {
        if self.state != LocalState::Active {
            return Err(Error::TransactionClosed);
        }
        if self.shared.is_doomed() {
            self.abort_internal();
            return Err(Error::unsafe_abort(self.shared.id()));
        }
        let is_ssi = self.shared.isolation() == IsolationLevel::SerializableSnapshotIsolation;
        let has_writes = !self.writes.is_empty();

        // Encode the redo record *ahead of* the commit point: the write-set
        // deep copies and buffer growth happen here, outside the ordered-
        // publication window, so a large write set never stalls the
        // publication of successor timestamps. Only the timestamp patch and
        // one CRC pass remain inside the window (submit below). Dropped
        // unused if the commit check fails.
        let mut prepared = match &self.db.durable {
            Some(_) if has_writes => Some(ssi_wal::PreparedCommit::from_parts(
                self.shared.id(),
                self.writes
                    .iter()
                    .map(|w| (w.table.id(), w.key.as_slice(), w.version.value())),
            )),
            _ => None,
        };

        // --- commit point: unsafe check fused with timestamp assignment ----
        // (`_gate` reproduces the old global-mutex serialization when the
        // lock-step baseline mode is on; it is never taken otherwise. The
        // guard borrows from a clone of the `Arc` so `self` stays free for
        // the abort path.)
        let db = self.db.clone();
        let _gate = db
            .options
            .ssi
            .lockstep_commit
            .then(|| db.txns.commit_gate());
        let commit_ts = if is_ssi {
            match ssi::commit_transaction(
                &self.db.txns,
                &self.db.options.ssi,
                &self.shared,
                has_writes,
            ) {
                Ok(ts) => ts,
                Err(e) => {
                    self.abort_internal();
                    return Err(e);
                }
            }
        } else {
            // Non-SSI levels have no commit-time check; read-only
            // transactions do not advance the clock — their "commit time"
            // is the current instant, which is all the overlap bookkeeping
            // needs.
            let ts = if has_writes {
                self.db.txns.allocate_commit_ts()
            } else {
                self.db.txns.current_ts()
            };
            self.shared.mark_committed(ts);
            ts
        };
        if has_writes {
            // Redo logging, step 1 of the protocol in `ssi-wal`: park the
            // pre-encoded write set in the log's pending buffer *before*
            // the timestamp is deposited for publication, so whoever
            // advances the clock past `commit_ts` can rely on the record
            // being present and the log file staying timestamp-ordered.
            if let Some(durable) = &self.db.durable {
                durable
                    .wal
                    .submit_prepared(commit_ts, prepared.take().expect("prepared above"));
            }
            for w in &self.writes {
                w.version.mark_committed(commit_ts);
            }
            self.db.txns.publish_commit_ts(commit_ts);
        }
        drop(_gate);

        // --- durability (real log: seal + group-commit fsync) ---------------
        // The clock now covers `commit_ts`, so sealing appends the ordered
        // prefix; `wait_durable` then blocks (in GroupCommit mode) until an
        // fsync — ours or a neighbour's — covers our timestamp. An I/O
        // failure here is remembered and returned after the in-memory
        // bookkeeping completes: the transaction *is* committed in memory,
        // only its persistence is uncertain (see `Error::Durability`).
        let mut durability_error = None;
        if has_writes {
            if let Some(durable) = &self.db.durable {
                let result = durable
                    .wal
                    .seal_upto(commit_ts)
                    .and_then(|()| durable.wal.wait_durable(commit_ts));
                if let Err(e) = result {
                    durability_error = Some(Error::Durability(format!("commit {commit_ts}: {e}")));
                }
            }
        }

        // --- simulated flush latency (paper figure reproduction) ------------
        if !self.writes.is_empty() {
            let bytes: usize = self
                .writes
                .iter()
                .map(|w| w.key.len() + w.version.value().map_or(0, |v| v.len()))
                .sum();
            self.db
                .wal
                .commit_record(self.shared.id(), commit_ts, bytes);
        }

        // --- history recording (verifier) -----------------------------------
        if let Some(history) = &self.db.history {
            history.record(CommittedTxn {
                id: self.shared.id(),
                begin_ts: self.shared.begin_ts().unwrap_or(commit_ts),
                commit_ts,
                reads: std::mem::take(&mut self.reads),
                writes: self
                    .writes
                    .iter()
                    .map(|w| WriteRecordEntry {
                        table: w.table.id(),
                        key: w.key.clone(),
                        tombstone: w.version.is_tombstone(),
                    })
                    .collect(),
            });
        }

        // --- lock release / suspension --------------------------------------
        let siread_keys: Vec<LockKey> = if is_ssi {
            self.locks
                .iter()
                .filter(|(_, modes)| modes.contains(LockMode::SiRead))
                .map(|(k, _)| k.clone())
                .collect()
        } else {
            Vec::new()
        };
        let (_, out_conflict) = self.shared.conflict_flags();
        let suspend = is_ssi && (!siread_keys.is_empty() || out_conflict);

        let locks = std::mem::take(&mut self.locks);
        for (key, modes) in locks {
            for mode in modes.iter() {
                if suspend && mode == LockMode::SiRead {
                    continue; // retained while suspended
                }
                self.db.locks.unlock(self.shared.id(), &key, mode);
            }
        }

        self.db.txns.finish_commit(
            &self.shared,
            if suspend { siread_keys } else { Vec::new() },
            suspend,
        );
        self.maybe_cleanup();

        self.writes.clear();
        self.state = LocalState::Committed;
        if has_writes {
            // Background maintenance piggybacked on write commits, after the
            // commit is fully visible: version GC on its commit cadence and
            // checkpoints on log growth. Both are single-flight try-locks —
            // a committer either runs one pass or skips, never queues.
            self.db.maybe_auto_purge();
            self.db.maybe_auto_checkpoint();
        }
        match durability_error {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Rolls the transaction back, undoing all of its writes.
    pub fn rollback(mut self) {
        self.abort_internal();
    }

    /// Internal rollback shared by [`Transaction::rollback`], failed
    /// operations and the `Drop` implementation.
    pub(crate) fn abort_internal(&mut self) {
        if self.state != LocalState::Active {
            return;
        }
        for w in &self.writes {
            w.version.mark_aborted();
            w.table.unlink_version(&w.key, &w.version);
        }
        self.writes.clear();

        let locks = std::mem::take(&mut self.locks);
        for (key, modes) in locks {
            for mode in modes.iter() {
                self.db.locks.unlock(self.shared.id(), &key, mode);
            }
        }

        self.shared.mark_aborted();
        self.db.txns.finish_abort(&self.shared);
        self.maybe_cleanup();
        self.state = LocalState::Aborted;
    }

    /// Reclaims suspended committed transactions eagerly (Sec. 4.6.1: "this
    /// eager cleanup … maintains a tight window of active transactions and
    /// minimizes the number of additional locks in the lock manager").
    fn maybe_cleanup(&self) {
        if self.db.txns.suspended_len() > 0 {
            self.db.txns.cleanup_suspended(&self.db.locks);
        }
    }
}

impl Drop for Transaction {
    fn drop(&mut self) {
        if self.state == LocalState::Active {
            self.abort_internal();
        }
    }
}

impl std::fmt::Debug for Transaction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Transaction")
            .field("id", &self.shared.id())
            .field("isolation", &self.shared.isolation())
            .field("state", &self.state)
            .field("locks", &self.locks.len())
            .field("writes", &self.writes.len())
            .finish()
    }
}
