//! # Serializable Snapshot Isolation
//!
//! A from-scratch Rust implementation of the concurrency-control algorithm
//! from *"Serializable Isolation for Snapshot Databases"* (Cahill, Röhm,
//! Fekete — SIGMOD 2008; extended in Cahill's 2009 PhD thesis), together
//! with the classic algorithms it is evaluated against.
//!
//! The crate exposes an embedded, in-memory multi-version database:
//!
//! * [`Database`] owns the catalog, lock manager, transaction manager and
//!   write-ahead log;
//! * [`Transaction`] is the client handle with `get` / `get_for_update` /
//!   `put` / `delete` / `scan` operations and `commit` / `rollback`, plus
//!   `index_scan` / `index_lookup` over secondary indexes declared with
//!   [`Database::create_index`] — index predicates get the same SSI
//!   phantom protection as primary-key scans, and unique indexes abort
//!   duplicate claims with a typed violation at every isolation level
//!   (protocol in the `access` module docs);
//! * [`Options`] selects the isolation level and the experimental knobs the
//!   paper studies: row- vs page-granularity locking, basic vs enhanced
//!   conflict tracking, SIREAD-lock upgrades, victim selection, simulated
//!   commit flushes and the SI-queries/SSI-updates mixed mode.
//!
//! Three isolation levels matter for the paper's evaluation (a fourth,
//! read-committed, exists for completeness):
//!
//! | level | reads | writes | serializable? |
//! |---|---|---|---|
//! | `SnapshotIsolation` | snapshot, no locks | exclusive locks + first-committer-wins | no (write skew) |
//! | `SerializableSnapshotIsolation` | snapshot + SIREAD locks | as SI + rw-antidependency tracking | **yes** |
//! | `StrictTwoPhaseLocking` | shared locks held to commit | exclusive locks held to commit | yes |
//!
//! ## Example: write skew is prevented
//!
//! ```
//! use ssi_core::{Database, Options};
//! use ssi_common::{AbortKind, Error};
//!
//! let db = Database::open(Options::default());
//! let t = db.create_table("duty").unwrap();
//!
//! // Two doctors are on call.
//! let mut setup = db.begin();
//! setup.put(&t, b"alice", b"on").unwrap();
//! setup.put(&t, b"bob", b"on").unwrap();
//! setup.commit().unwrap();
//!
//! // Each transaction checks that the *other* doctor is still on call and
//! // then takes its own doctor off call — the classic write-skew pattern.
//! let mut t1 = db.begin();
//! let mut t2 = db.begin();
//! assert_eq!(t1.get(&t, b"bob").unwrap().as_deref(), Some(b"on".as_slice()));
//! assert_eq!(t2.get(&t, b"alice").unwrap().as_deref(), Some(b"on".as_slice()));
//!
//! // Under Serializable SI one of the two must abort with the "unsafe"
//! // error (possibly as early as the write); under plain SI both would
//! // commit and the invariant would break.
//! let r1 = t1.put(&t, b"alice", b"off").and_then(|_| t1.commit());
//! let r2 = t2.put(&t, b"bob", b"off").and_then(|_| t2.commit());
//! let unsafe_aborts = [&r1, &r2]
//!     .iter()
//!     .filter(|r| matches!(r, Err(Error::Aborted { kind: AbortKind::Unsafe, .. })))
//!     .count();
//! assert_eq!(unsafe_aborts, 1);
//! assert!(r1.is_ok() || r2.is_ok());
//! ```

pub mod db;
pub mod health;
pub mod maintenance;
pub mod manager;
pub mod options;
pub mod ssi;
pub mod txn;
pub mod txn_shared;
pub mod verify;

mod access;

#[cfg(test)]
mod engine_tests;

pub use db::{Database, IndexRef, TableRef};
pub use health::DbHealth;
pub use maintenance::{MaintenanceEvent, MaintenanceHook};
pub use manager::{CommitPauseHook, CommitPhase, GcPin, ManagerStats, TransactionManager};
pub use options::{
    Durability, DurabilityOptions, LockGranularity, MaintenanceOptions, Options, SsiOptions,
    SsiVariant, VfsHandle, VictimPolicy,
};
pub use ssi::CallerRole;
pub use txn::Transaction;
pub use txn_shared::{TxnShared, TxnStatus};
pub use verify::{
    CommittedTxn, DanglingSpeculativeRead, HistoryRecorder, LostRead, MvsgReport, ReadRecord,
    WriteRecordEntry,
};

pub use ssi_common::{
    AbortKind, AbortReason, DegradedReason, Error, IsolationLevel, Result, TxnId,
};
pub use ssi_obs::{
    EngineMetrics, EventKind, GcMetrics, HistSummary, LatencyMetrics, LockMetrics, MetricsSnapshot,
    TableMetrics, TraceBatch, TraceEvent, TxnMetrics, WalMetrics,
};
pub use ssi_storage::{FieldKind, IndexKeyPart, IndexKeySpec, PurgeStats};
pub use ssi_wal::{
    CheckpointStats, FaultMode, FaultOp, FaultRule, FaultVfs, FlushEvent, FlushReason, Recovered,
    StdVfs, Vfs, WalStats,
};
