//! A small vector that stores its first few elements inline.
//!
//! `VisibleRead::newer_creators` is built on every snapshot read; almost
//! always it holds zero or one transaction ids, so a heap-allocated `Vec`
//! per read is pure overhead. [`InlineVec`] keeps up to `N` elements in the
//! struct itself and only touches the heap on overflow, which removes the
//! last allocation from the uncontended read path.

use std::fmt;
use std::ops::Deref;

/// A vector of `Copy` elements with inline storage for the first `N`.
///
/// Once more than `N` elements are pushed, all elements move to a spilled
/// heap vector and stay there (the inline buffer is not reused), so
/// `as_slice` is always contiguous.
#[derive(Clone)]
pub struct InlineVec<T: Copy + Default, const N: usize> {
    /// Number of elements stored inline; ignored once spilled.
    len: usize,
    inline: [T; N],
    spill: Vec<T>,
}

impl<T: Copy + Default, const N: usize> InlineVec<T, N> {
    pub fn new() -> Self {
        InlineVec {
            len: 0,
            inline: [T::default(); N],
            spill: Vec::new(),
        }
    }

    pub fn push(&mut self, value: T) {
        if self.spill.is_empty() && self.len < N {
            self.inline[self.len] = value;
            self.len += 1;
        } else {
            if self.spill.is_empty() {
                self.spill.reserve(N * 2);
                self.spill.extend_from_slice(&self.inline[..self.len]);
                self.len = 0;
            }
            self.spill.push(value);
        }
    }

    pub fn as_slice(&self) -> &[T] {
        if self.spill.is_empty() {
            &self.inline[..self.len]
        } else {
            &self.spill
        }
    }

    pub fn len(&self) -> usize {
        if self.spill.is_empty() {
            self.len
        } else {
            self.spill.len()
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.as_slice().iter()
    }

    pub fn to_vec(&self) -> Vec<T> {
        self.as_slice().to_vec()
    }
}

impl<T: Copy + Default, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy + Default, const N: usize> Deref for InlineVec<T, N> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl<T: Copy + Default + fmt::Debug, const N: usize> fmt::Debug for InlineVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq<Vec<T>> for InlineVec<T, N> {
    fn eq(&self, other: &Vec<T>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize, const M: usize> PartialEq<[T; M]>
    for InlineVec<T, N>
{
    fn eq(&self, other: &[T; M]) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq<&[T]> for InlineVec<T, N> {
    fn eq(&self, other: &&[T]) -> bool {
        self.as_slice() == *other
    }
}

impl<T: Copy + Default, const N: usize> FromIterator<T> for InlineVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = InlineVec::new();
        for item in iter {
            v.push(item);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inline_up_to_capacity() {
        let mut v: InlineVec<u64, 4> = InlineVec::new();
        for i in 0..4 {
            v.push(i);
        }
        assert_eq!(v.len(), 4);
        assert_eq!(v.as_slice(), &[0, 1, 2, 3]);
        assert!(v.spill.is_empty(), "no heap allocation below capacity");
    }

    #[test]
    fn spills_transparently() {
        let mut v: InlineVec<u64, 2> = InlineVec::new();
        for i in 0..5 {
            v.push(i);
        }
        assert_eq!(v.len(), 5);
        assert_eq!(v.as_slice(), &[0, 1, 2, 3, 4]);
        assert!(!v.spill.is_empty());
    }

    #[test]
    fn equality_with_vec_and_slices() {
        let v: InlineVec<u64, 4> = [7, 8].into_iter().collect();
        assert_eq!(v, vec![7, 8]);
        assert_eq!(v, [7, 8]);
        assert!(v.iter().eq([7, 8].iter()));
    }

    #[test]
    fn empty_behaviour() {
        let v: InlineVec<u64, 4> = InlineVec::new();
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
        assert_eq!(v.as_slice(), &[] as &[u64]);
    }
}
